"""Ablation A1 — rows streamed to the device per chunk.

The paper streams the cube through the 6 GB device a fixed small number of
detector rows at a time (the Fig. 2 example uses 2 rows).  This ablation
sweeps the rows-per-chunk setting on a fixed workload: small chunks pay the
per-transfer latency and kernel-launch overhead many times, very large chunks
are limited by device memory.  The modelled device time exposes the paper's
design trade-off directly; wall-clock follows the same trend more noisily.
"""

import pytest

from _bench_utils import SeriesCollector, run_and_time
from repro.core.backends import get_backend
from repro.core.config import ReconstructionConfig

ROWS_PER_CHUNK = (1, 2, 4, 8, None)  # None = largest chunk that fits device memory

collector = SeriesCollector("Ablation: rows per device chunk (5.2G-scaled workload)", x_label="rows/chunk")


@pytest.mark.parametrize("rows", ROWS_PER_CHUNK, ids=lambda r: "auto" if r is None else str(r))
def test_chunk_rows_sweep(benchmark, workload_cache, rows):
    workload = workload_cache("5.2G")
    label = "auto" if rows is None else str(rows)
    seconds = benchmark.pedantic(
        run_and_time,
        args=(workload, "gpusim"),
        kwargs={"rows_per_chunk": rows},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    collector.add(label, "wall", seconds)

    config = ReconstructionConfig(grid=workload.grid, backend="gpusim", rows_per_chunk=rows)
    _, report = get_backend("gpusim").reconstruct(workload.stack, config)
    collector.add(label, "modelled", report.simulated_device_time)
    collector.add(label, "chunks", float(report.n_chunks))
    benchmark.extra_info["n_chunks"] = report.n_chunks
    benchmark.extra_info["modelled_seconds"] = report.simulated_device_time


def test_chunk_rows_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "1" not in collector.series or "auto" not in collector.series:
        pytest.skip("sweep benchmarks did not run (run the whole file)")
    # one-row chunks must pay more modelled overhead than the auto chunking
    assert collector.series["1"]["modelled"] >= collector.series["auto"]["modelled"]
    print(collector.report([
        "",
        "Smaller chunks repeat the per-transfer latency and kernel-launch overhead;",
        "the auto setting picks the largest chunk that fits the device memory cap.",
    ]))

"""Experiment E3 — Fig. 9: CPU vs GPU total time across pixel percentages.

The paper fixes the largest data set (5.2 GB) and processes 25 %, 50 % and
100 % of the pixels; both versions get slower with more pixels, but the GPU
version's advantage grows with the amount of work.

The pixel percentage maps to the ``pixel_mask`` of the workload (the
``d_cutoff`` mechanism of the original kernel): masked-out pixels cost no
reconstruction work in either backend.
"""

import pytest

from _bench_utils import SeriesCollector, run_and_time
from repro.perf.modelruns import PAPER_FIG9_CPU_SECONDS, PAPER_FIG9_GPU_SECONDS, predict_figure9

FRACTIONS = {0.25: "25%", 0.5: "50%", 1.0: "100%"}
BACKENDS = {"cpu_reference": "CPU", "gpusim": "GPU"}

collector = SeriesCollector(
    "Fig. 9 reproduction: CPU vs GPU across pixel percentages (5.2G-scaled workload)",
    x_label="pixel %",
)


@pytest.mark.parametrize("backend", list(BACKENDS))
@pytest.mark.parametrize("fraction", list(FRACTIONS))
def test_fig9_pixel_percentage_sweep(benchmark, workload_cache, fraction, backend):
    workload = workload_cache("5.2G", pixel_fraction=fraction)
    seconds = benchmark.pedantic(
        run_and_time, args=(workload, backend), rounds=1, iterations=1, warmup_rounds=0
    )
    collector.add(FRACTIONS[fraction], BACKENDS[backend], seconds)
    benchmark.extra_info["pixel_fraction"] = fraction
    benchmark.extra_info["paper_seconds"] = (
        PAPER_FIG9_CPU_SECONDS[FRACTIONS[fraction]]
        if backend == "cpu_reference"
        else PAPER_FIG9_GPU_SECONDS[FRACTIONS[fraction]]
    )


def test_fig9_report_and_shape(benchmark):
    """Assert the figure's qualitative shape and print the series table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    labels = list(FRACTIONS.values())
    cpu_times, gpu_times = [], []
    for label in labels:
        row = collector.series.get(label, {})
        if "CPU" not in row or "GPU" not in row:
            pytest.skip("sweep benchmarks did not run (run the whole file)")
        cpu_times.append(row["CPU"])
        gpu_times.append(row["GPU"])

    # paper shape: GPU faster at every pixel percentage, CPU time grows
    # steeply with the pixel count
    for cpu, gpu in zip(cpu_times, gpu_times):
        assert gpu < cpu
    assert cpu_times[-1] > cpu_times[0]

    model = predict_figure9()
    extra = [
        "",
        "paper-reported totals (s):      " + "  ".join(
            f"{p}: CPU {PAPER_FIG9_CPU_SECONDS[p]:.0f}/GPU {PAPER_FIG9_GPU_SECONDS[p]:.0f}" for p in labels
        ),
        "analytic paper-scale model (s): " + "  ".join(
            f"{p}: CPU {model[p].cpu_seconds:.0f}/GPU {model[p].gpu_seconds:.0f}" for p in labels
        ),
        "paper: the more pixels are handled, the better the GPU does relative to the CPU.",
    ]
    print(collector.report(extra))

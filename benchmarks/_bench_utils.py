"""Shared helpers for the benchmark suite (imported by every bench module)."""

from __future__ import annotations

import os
import time
from collections import defaultdict

from repro.core.backends import get_backend
from repro.core.config import ReconstructionConfig
from repro.synthetic.workloads import DEFAULT_BENCH_SCALE


def bench_scale() -> float:
    """Byte-scale factor used for all generated workloads.

    Override with the ``REPRO_BENCH_SCALE`` environment variable to run the
    sweeps on larger cubes (e.g. ``REPRO_BENCH_SCALE=0.001`` for ~5 MB).
    """
    return float(os.environ.get("REPRO_BENCH_SCALE", DEFAULT_BENCH_SCALE))


class SeriesCollector:
    """Accumulates (x, variant) -> seconds measurements and renders a table."""

    def __init__(self, title: str, x_label: str = "dataset"):
        self.title = title
        self.x_label = x_label
        self.series = defaultdict(dict)

    def add(self, x_value: str, variant: str, seconds: float) -> None:
        """Record one measurement."""
        self.series[str(x_value)][str(variant)] = float(seconds)

    def report(self, extra_lines=()) -> str:
        """Render the paper-style series table plus optional footer lines."""
        from repro.perf.reporting import format_series_table

        lines = ["", "=" * 72, self.title, "=" * 72,
                 format_series_table(dict(self.series), x_label=self.x_label)]
        lines.extend(extra_lines)
        return "\n".join(lines)


def run_and_time(workload, backend_name: str, **config_overrides) -> float:
    """Reconstruct a workload once and return the wall-clock seconds."""
    config = ReconstructionConfig(grid=workload.grid, backend=backend_name, **config_overrides)
    backend = get_backend(backend_name)
    start = time.perf_counter()
    backend.reconstruct(workload.stack, config)
    return time.perf_counter() - start


def run_and_time_stats(
    workload, backend_name: str, repeats: int = 5, warmup: int = 1, **config_overrides
) -> dict:
    """Median + IQR reconstruction statistics over *repeats* runs.

    The robust twin of :func:`run_and_time` for measurements feeding a
    BENCH_* artifact or a gate: a warm-up iteration absorbs first-touch page
    faults and pool spawns (which otherwise pollute the 1-worker baseline),
    and the median/IQR pair over the timed repeats is stable where a mean of
    a few runs is dragged around by one scheduler hiccup.  Returns the
    :func:`repro.perf.timer.time_stats` dict.
    """
    from repro.perf.timer import time_stats

    config = ReconstructionConfig(grid=workload.grid, backend=backend_name, **config_overrides)
    backend = get_backend(backend_name)
    return time_stats(
        lambda: backend.reconstruct(workload.stack, config),
        repeats=repeats,
        warmup=warmup,
    )

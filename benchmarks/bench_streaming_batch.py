"""Experiment E5 — out-of-core streaming and multi-file batch throughput.

The paper streams the image cube through a memory-limited *device*; the
engine extends the same plan → execute → reduce access pattern to *host*
memory (``config.streaming``) and to many files at once
(``reconstruct_many``).  This benchmark measures what those modes cost and
buy:

* streamed reconstruction must be within a modest factor of the in-memory
  path on data that fits in RAM (the streaming tax is windowed file reads);
* a batch scheduled on several workers must beat the same batch on one
  worker (per-file isolation must not serialise the pool).
"""

import pytest

from _bench_utils import SeriesCollector
from repro.core.config import ReconstructionConfig
from repro.core.pipeline import reconstruct_file, reconstruct_many
from repro.io.image_stack import save_wire_scan

N_BATCH_FILES = 4

collector = SeriesCollector("Streaming + batch: wall seconds", x_label="mode")
_times = {}


@pytest.fixture(scope="module")
def scan_files(tmp_path_factory, workload_cache):
    """A handful of wire-scan files sharing one synthetic workload."""
    workload = workload_cache("2.1G")
    root = tmp_path_factory.mktemp("streaming_batch")
    paths = []
    for index in range(N_BATCH_FILES):
        path = root / f"scan_{index}.h5lite"
        save_wire_scan(path, workload.stack)
        paths.append(str(path))
    # one discarded run so first-touch costs (imports, allocator warm-up, file
    # cache) do not land on whichever benchmark happens to run first
    reconstruct_file(paths[0], ReconstructionConfig(grid=workload.grid, backend="vectorized"))
    return workload, paths


def _config(workload, **overrides):
    return ReconstructionConfig(grid=workload.grid, backend="vectorized", **overrides)


def test_in_memory_file(benchmark, scan_files):
    workload, paths = scan_files
    config = _config(workload)
    seconds = benchmark.pedantic(
        lambda: reconstruct_file(paths[0], config), rounds=1, iterations=1, warmup_rounds=0
    )
    _times["in-memory"] = benchmark.stats.stats.mean
    collector.add("file (in-memory)", "vectorized", _times["in-memory"])


def test_streamed_file(benchmark, scan_files):
    workload, paths = scan_files
    config = _config(workload, streaming=True, rows_per_chunk=4)
    benchmark.pedantic(
        lambda: reconstruct_file(paths[0], config), rounds=1, iterations=1, warmup_rounds=0
    )
    _times["streamed"] = benchmark.stats.stats.mean
    collector.add("file (streamed)", "vectorized", _times["streamed"])


@pytest.mark.parametrize("max_workers", [1, N_BATCH_FILES])
def test_batch_throughput(benchmark, scan_files, max_workers):
    workload, paths = scan_files
    config = _config(workload, streaming=True, rows_per_chunk=4)
    batch = benchmark.pedantic(
        lambda: reconstruct_many(paths, config, max_workers=max_workers, keep_results=False),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert batch.n_ok == N_BATCH_FILES and batch.n_failed == 0
    _times[f"batch x{max_workers}"] = batch.wall_time
    collector.add(f"batch of {N_BATCH_FILES} (x{max_workers})", "vectorized", batch.wall_time)
    benchmark.extra_info["throughput_files_per_second"] = batch.throughput_files_per_second


def test_streaming_batch_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "in-memory" not in _times or "streamed" not in _times:
        pytest.skip("file benchmarks did not run (run the whole file)")
    extra = [
        "",
        f"streaming tax: {_times['streamed'] / _times['in-memory']:.2f}x the in-memory wall time",
    ]
    if f"batch x{N_BATCH_FILES}" in _times and "batch x1" in _times:
        extra.append(
            f"batch speed-up (x{N_BATCH_FILES} vs x1 workers): "
            f"{_times['batch x1'] / _times[f'batch x{N_BATCH_FILES}']:.2f}x"
        )
    print(collector.report(extra))

"""Experiment E5 — out-of-core streaming and multi-file batch throughput.

The paper streams the image cube through a memory-limited *device*; the
engine extends the same plan → execute → reduce access pattern to *host*
memory (``Session.stream()``) and to many files at once
(``Session.run_many()``).  This benchmark measures what those modes cost and
buy:

* streamed reconstruction must be within a modest factor of the in-memory
  path on data that fits in RAM (the streaming tax is windowed file reads);
* a batch scheduled on several workers must beat the same batch on one
  worker (per-file isolation must not serialise the pool);
* the fluent ``Session`` front door must add no measurable overhead over
  invoking the engine directly — the API redesign is free.
"""

import time

import pytest

from _bench_utils import SeriesCollector
from repro.core.config import ReconstructionConfig
from repro.core.session import session
from repro.io.image_stack import save_wire_scan

N_BATCH_FILES = 4

collector = SeriesCollector("Streaming + batch: wall seconds", x_label="mode")
_times = {}


@pytest.fixture(scope="module")
def scan_files(tmp_path_factory, workload_cache):
    """A handful of wire-scan files sharing one synthetic workload."""
    workload = workload_cache("2.1G")
    root = tmp_path_factory.mktemp("streaming_batch")
    paths = []
    for index in range(N_BATCH_FILES):
        path = root / f"scan_{index}.h5lite"
        save_wire_scan(path, workload.stack)
        paths.append(str(path))
    # one discarded run so first-touch costs (imports, allocator warm-up, file
    # cache) do not land on whichever benchmark happens to run first
    session(grid=workload.grid, backend="vectorized").run(paths[0])
    return workload, paths


def _config(workload, **overrides):
    return ReconstructionConfig(grid=workload.grid, backend="vectorized", **overrides)


def test_in_memory_file(benchmark, scan_files):
    workload, paths = scan_files
    sess = session(config=_config(workload))
    benchmark.pedantic(
        lambda: sess.run(paths[0]), rounds=1, iterations=1, warmup_rounds=0
    )
    _times["in-memory"] = benchmark.stats.stats.mean
    collector.add("file (in-memory)", "vectorized", _times["in-memory"])


def test_streamed_file(benchmark, scan_files):
    workload, paths = scan_files
    sess = session(config=_config(workload)).stream(rows_per_chunk=4)
    benchmark.pedantic(
        lambda: sess.run(paths[0]), rounds=1, iterations=1, warmup_rounds=0
    )
    _times["streamed"] = benchmark.stats.stats.mean
    collector.add("file (streamed)", "vectorized", _times["streamed"])


def test_save_load_roundtrip_budget(benchmark, scan_files, tmp_path):
    """Persistence must never become the bottleneck.

    ``run.save()`` now embeds the full run record and ``repro.load()``
    rebuilds the complete RunResult; both together must stay within a small
    multiple of the reconstruction itself (plus a fixed I/O allowance) on a
    standard stack.  Best-of-N on both sides discards one-sided scheduler
    stalls.
    """
    import repro

    workload, paths = scan_files
    sess = session(config=_config(workload))
    out_path = str(tmp_path / "depth_roundtrip.h5lite")

    def reconstruct():
        return sess.run(paths[0])

    def roundtrip(run):
        return repro.load(run.save(out_path).output_path)

    run = reconstruct()
    roundtrip(run)  # warm the code path before timing
    recon_times, rt_times = [], []
    for _ in range(3):
        start = time.perf_counter()
        run = reconstruct()
        recon_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        loaded = roundtrip(run)
        rt_times.append(time.perf_counter() - start)
    assert loaded.result.data.tobytes() == run.result.data.tobytes()

    best_recon = min(recon_times)
    best_roundtrip = min(rt_times)
    benchmark.pedantic(lambda: roundtrip(run), rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["reconstruct_best_s"] = best_recon
    benchmark.extra_info["save_load_best_s"] = best_roundtrip
    _times["save+load"] = best_roundtrip
    collector.add("save+load round-trip", "vectorized", best_roundtrip)
    # sane budget: writing + re-reading the (much smaller) depth cube must
    # cost less than reconstructing it, with 250 ms of slack for cold file
    # systems on loaded CI runners
    assert best_roundtrip <= best_recon + 0.250, (
        f"persistence became the bottleneck: save+load {best_roundtrip:.4f}s "
        f"vs reconstruction {best_recon:.4f}s"
    )


@pytest.mark.parametrize("max_workers", [1, N_BATCH_FILES])
def test_batch_throughput(benchmark, scan_files, max_workers):
    workload, paths = scan_files
    sess = session(config=_config(workload)).stream(rows_per_chunk=4)
    batch = benchmark.pedantic(
        lambda: sess.run_many(paths, max_workers=max_workers, keep_results=False),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    assert batch.n_ok == N_BATCH_FILES and batch.n_failed == 0
    _times[f"batch x{max_workers}"] = batch.wall_time
    collector.add(f"batch of {N_BATCH_FILES} (x{max_workers})", "vectorized", batch.wall_time)
    benchmark.extra_info["throughput_files_per_second"] = batch.throughput_files_per_second


def test_fluent_layer_overhead(benchmark, scan_files):
    """The Session front door vs the raw engine on identical streamed runs.

    Both paths resolve the same backend and execute the same plan; the
    session only adds source normalization and RunResult assembly.  Compare
    best-of-N wall times interleaved (so cache/jitter hit both equally) and
    assert the fluent layer costs no measurable extra time.
    """
    from repro.core.engine import execute_backend
    from repro.io.streaming import StreamingWireScanSource

    workload, paths = scan_files
    config = _config(workload, streaming=True, rows_per_chunk=4)
    sess = session(config=config)

    def direct():
        return execute_backend(StreamingWireScanSource(paths[0]), config)

    def fluent():
        return sess.run(paths[0])

    rounds = 5
    direct_times, fluent_times = [], []
    direct()  # warm both code paths before timing
    fluent()
    for _ in range(rounds):
        start = time.perf_counter()
        direct()
        direct_times.append(time.perf_counter() - start)
        start = time.perf_counter()
        fluent()
        fluent_times.append(time.perf_counter() - start)

    best_direct = min(direct_times)
    best_fluent = min(fluent_times)
    overhead = best_fluent - best_direct
    benchmark.pedantic(fluent, rounds=1, iterations=1, warmup_rounds=0)
    benchmark.extra_info["direct_best_s"] = best_direct
    benchmark.extra_info["fluent_best_s"] = best_fluent
    benchmark.extra_info["overhead_s"] = overhead
    collector.add("engine (direct)", "vectorized", best_direct)
    collector.add("engine (via Session)", "vectorized", best_fluent)
    # "no measurable overhead": within timing noise.  Best-of-N discards
    # one-sided scheduler stalls; the slack (25% + 10 ms) keeps the assertion
    # meaningful while tolerating loaded CI runners.
    assert best_fluent <= best_direct * 1.25 + 0.010, (
        f"fluent layer added measurable overhead: {best_fluent:.4f}s vs {best_direct:.4f}s"
    )


def test_streaming_batch_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "in-memory" not in _times or "streamed" not in _times:
        pytest.skip("file benchmarks did not run (run the whole file)")
    extra = [
        "",
        f"streaming tax: {_times['streamed'] / _times['in-memory']:.2f}x the in-memory wall time",
    ]
    if f"batch x{N_BATCH_FILES}" in _times and "batch x1" in _times:
        extra.append(
            f"batch speed-up (x{N_BATCH_FILES} vs x1 workers): "
            f"{_times['batch x1'] / _times[f'batch x{N_BATCH_FILES}']:.2f}x"
        )
    print(collector.report(extra))

"""Ablation A2 — all execution backends on one workload.

Puts the paper's two contenders (scalar CPU program, CUDA-style design) next
to two alternatives a practitioner would consider before porting to a GPU:
host-vectorised NumPy and a multi-process row partitioning.  All four produce
identical results (asserted in the test-suite); only the time differs.
"""

import pytest

from _bench_utils import SeriesCollector, run_and_time

BACKENDS = ("cpu_reference", "vectorized", "gpusim", "multiprocess")

collector = SeriesCollector("Ablation: execution backends (2.7G-scaled workload)", x_label="backend")


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_sweep(benchmark, workload_cache, backend):
    workload = workload_cache("2.7G")
    kwargs = {"n_workers": 2} if backend == "multiprocess" else {}
    seconds = benchmark.pedantic(
        run_and_time, args=(workload, backend), kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
    )
    collector.add(backend, "wall seconds", seconds)
    benchmark.extra_info["n_elements"] = workload.n_elements


def test_backend_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if "cpu_reference" not in collector.series or "gpusim" not in collector.series:
        pytest.skip("sweep benchmarks did not run (run the whole file)")
    cpu = collector.series["cpu_reference"]["wall seconds"]
    gpu = collector.series["gpusim"]["wall seconds"]
    assert gpu < cpu, "the GPU-style design must beat the scalar CPU baseline"
    print(collector.report([
        "",
        "cpu_reference is the paper's baseline; gpusim is the paper's design;",
        "vectorized and multiprocess are host-side alternatives the paper does not evaluate.",
    ]))

"""Experiment E4 — the paper's headline claim.

"The results showed that the test running time would be 25 % to 30 % of the
prior CPU design" (abstract), i.e. a 3-4x speed-up of the GPU design over the
original CPU program.

This benchmark measures the GPU-sim/CPU-reference wall-time ratio over the
Fig. 8 data-set grid and reports the min/mean/max ratio next to the paper's
band.  The measured ratio on scaled workloads is typically *smaller* than the
paper's (the Python scalar baseline is slower relative to vectorised NumPy
than the original C code was relative to CUDA, and the scaled runs exclude
the non-ported host I/O that dominates the paper's totals); the assertion is
therefore only that the GPU design wins by a sizeable factor everywhere.
"""

import pytest

from _bench_utils import SeriesCollector, run_and_time
from repro.perf.metrics import summarize_ratio_range
from repro.perf.modelruns import PAPER_FIG8_CPU_SECONDS, PAPER_FIG8_GPU_SECONDS

DATASETS = ["2.1G", "5.2G"]

collector = SeriesCollector("Headline: GPU time as a fraction of CPU time", x_label="dataset")
_ratios = {}


@pytest.mark.parametrize("dataset", DATASETS)
def test_headline_ratio(benchmark, workload_cache, dataset):
    workload = workload_cache(dataset)
    cpu_seconds = run_and_time(workload, "cpu_reference")
    gpu_seconds = benchmark.pedantic(
        run_and_time, args=(workload, "gpusim"), rounds=1, iterations=1, warmup_rounds=0
    )
    _ratios[dataset] = (gpu_seconds, cpu_seconds)
    collector.add(dataset, "GPU/CPU ratio", gpu_seconds / cpu_seconds)
    benchmark.extra_info["cpu_seconds"] = cpu_seconds
    benchmark.extra_info["ratio"] = gpu_seconds / cpu_seconds


def test_headline_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(_ratios) < len(DATASETS):
        pytest.skip("sweep benchmarks did not run (run the whole file)")
    summary = summarize_ratio_range(list(_ratios.values()))
    assert summary["max"] < 1.0, "the GPU design must beat the CPU baseline"

    paper_pairs = [
        (PAPER_FIG8_GPU_SECONDS[d], PAPER_FIG8_CPU_SECONDS[d]) for d in PAPER_FIG8_CPU_SECONDS
    ]
    paper_summary = summarize_ratio_range(paper_pairs)
    extra = [
        "",
        f"measured GPU/CPU ratio: min {summary['min']:.3f}, mean {summary['mean']:.3f}, max {summary['max']:.3f}",
        f"paper Fig. 8 ratios:    min {paper_summary['min']:.3f}, mean {paper_summary['mean']:.3f}, "
        f"max {paper_summary['max']:.3f} (abstract states 25-30 %)",
    ]
    print(collector.report(extra))

"""Experiment E6 — host-parallel scaling: shm dispatch, pool reuse, worker counts.

The paper's argument is that depth reconstruction is embarrassingly parallel
across detector pixels; the ``multiprocess`` backend is the host-parallel
ablation point for that claim.  This suite measures the two costs that used
to undersell it and gates against their regression:

* **dispatch** — zero-copy shared-memory slabs must beat the legacy
  deep-copy-and-pickle path wherever real dispatch happens (≥ 2 workers);
* **pool lifecycle** — a pooled ``run_many`` over several files must beat
  per-file cold-start pools (the old create/tear-down-per-run lifecycle).

The run emits the repository's perf-trajectory artifact
(``BENCH_4.json`` by default; override the path with ``REPRO_BENCH_OUT``
and the workload with ``REPRO_PARALLEL_BENCH_SIZE``).  CI runs this on a
tiny workload and uploads the artifact; ``repro-bench`` is the CLI twin.
"""

import os

import numpy as np
import pytest

from _bench_utils import SeriesCollector
from repro.core.config import ReconstructionConfig
from repro.core.workerpool import shutdown_shared_pool
from repro.perf.parallel import (
    format_parallel_report,
    run_parallel_scaling,
    write_bench_record,
)

collector = SeriesCollector("Parallel scaling: wall seconds", x_label="workers")


def _bench_size_label() -> str:
    """Workload label: REPRO_PARALLEL_BENCH_SIZE overrides the medium default."""
    return os.environ.get("REPRO_PARALLEL_BENCH_SIZE", "24MB")


@pytest.fixture(scope="module")
def scaling_record(tmp_path_factory):
    """One full harness run shared by the assertions below."""
    record = run_parallel_scaling(
        size_label=_bench_size_label(),
        workers=(1, 2, 4),
        # 6 interleaved repeats per dispatch mode: the shm-vs-pickle gate is
        # a hard CI failure, so its minima must sit well above runner noise
        repeats=6,
        n_files=3,
        work_dir=str(tmp_path_factory.mktemp("parallel_scaling")),
    )
    for row in record["scaling"]:
        collector.add(str(row["n_workers"]), "shm", row["shm_s"])
        collector.add(str(row["n_workers"]), "pickle", row["pickle_s"])
    reuse = record["pool_reuse"]
    collector.add("batch", "cold-start", reuse["cold_start_s"])
    collector.add("batch", "pooled", reuse["pooled_s"])
    path = write_bench_record(record, os.environ.get("REPRO_BENCH_OUT"))
    print(format_parallel_report(record))
    print(f"wrote {path}")
    return record


def test_shm_dispatch_beats_pickle_dispatch(scaling_record):
    """Zero-copy slabs must beat cube pickling wherever dispatch happens.

    Gated on the aggregate across the ≥ 2-worker points (every timed sample
    pooled) so single-point scheduler noise cannot flip the verdict; the
    per-point curve stays in the record for inspection.
    """
    multi = [row for row in scaling_record["scaling"] if row["n_workers"] >= 2]
    assert multi, "no multi-worker scaling points measured"
    shm_total = sum(row["shm_s"] for row in multi)
    pickle_total = sum(row["pickle_s"] for row in multi)
    assert shm_total < pickle_total, (
        f"shm dispatch regressed: {shm_total:.4f}s vs pickle {pickle_total:.4f}s "
        f"aggregated over {len(multi)} multi-worker point(s)"
    )
    assert scaling_record["checks"]["shm_beats_pickle_multiworker"]


def test_pooled_run_many_beats_cold_start_pools(scaling_record):
    """One persistent pool across a batch must beat a fresh pool per file."""
    reuse = scaling_record["pool_reuse"]
    assert reuse["pooled_s"] < reuse["cold_start_s"], (
        f"pool reuse regressed: pooled {reuse['pooled_s']:.4f}s vs "
        f"cold-start {reuse['cold_start_s']:.4f}s over {reuse['n_files']} files"
    )
    assert reuse["pooled_pool_spawns"] == 1  # the whole batch shares one pool
    assert scaling_record["checks"]["pooled_run_many_beats_cold_start"]


def test_dispatch_modes_identical_results(scaling_record):
    """The dispatch modes trade speed only: results stay bitwise identical."""
    from repro.synthetic.workloads import make_benchmark_workload

    workload = make_benchmark_workload("0.5MB", seed=3)
    config = ReconstructionConfig(
        grid=workload.grid, backend="multiprocess", n_workers=2
    )
    from repro.core.backends.multiprocess import MultiprocessExecutor
    from repro.core.engine import StackChunkSource, execute

    shm_result, _ = execute(
        StackChunkSource(workload.stack), config, MultiprocessExecutor(dispatch="shm")
    )
    pickle_result, _ = execute(
        StackChunkSource(workload.stack), config, MultiprocessExecutor(dispatch="pickle")
    )
    assert np.array_equal(shm_result.data, pickle_result.data)
    shutdown_shared_pool()


def test_parallel_scaling_report(scaling_record):
    print(collector.report([
        "",
        "shm/pickle compare dispatch cost on a warm pool (1 worker runs in-process);",
        "batch compares one persistent pool against a cold pool per file.",
    ]))

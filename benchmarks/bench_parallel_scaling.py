"""Experiment E6 — host-parallel scaling: dispatch, executors, fused kernels.

The paper's argument is that depth reconstruction is embarrassingly parallel
across detector pixels; the ``multiprocess`` and ``threaded`` backends are
the host-parallel ablation points for that claim.  Two suites:

* **dispatch (BENCH_4)** — zero-copy shared-memory slabs must beat the
  legacy deep-copy-and-pickle path wherever real dispatch happens
  (≥ 2 workers), and a pooled ``run_many`` over several files must beat
  per-file cold-start pools;
* **executors (BENCH_6)** — the fused single-pass kernel against the
  two-pass baseline, and a serial / threads / processes × worker-count
  matrix (median + IQR, BLAS pinned) with the honesty gate: a parallel
  executor may become the recommended default only with ≥ 2× speedup over
  serial at 4 workers — otherwise the default stays serial and the
  artifact must record why.

The runs emit the repository's perf-trajectory artifacts (``BENCH_4.json``
and ``BENCH_6.json`` by default; override with ``REPRO_BENCH_OUT`` /
``REPRO_BENCH6_OUT`` and the workload with ``REPRO_PARALLEL_BENCH_SIZE``).
CI runs both on a tiny workload and uploads the artifacts; ``repro-bench``
is the CLI twin (``--suite dispatch|executors|all``).
"""

import os

import numpy as np
import pytest

from _bench_utils import SeriesCollector
from repro.core.config import ReconstructionConfig
from repro.core.workerpool import shutdown_shared_pool
from repro.perf.parallel import (
    SCALING_GATE_SPEEDUP,
    format_executor_report,
    format_parallel_report,
    run_executor_scaling,
    run_parallel_scaling,
    write_bench_record,
)

collector = SeriesCollector("Parallel scaling: wall seconds", x_label="workers")
executor_collector = SeriesCollector("Executor scaling: wall seconds", x_label="workers")


def _bench_size_label() -> str:
    """Workload label: REPRO_PARALLEL_BENCH_SIZE overrides the medium default."""
    return os.environ.get("REPRO_PARALLEL_BENCH_SIZE", "24MB")


@pytest.fixture(scope="module")
def scaling_record(tmp_path_factory):
    """One full harness run shared by the assertions below."""
    record = run_parallel_scaling(
        size_label=_bench_size_label(),
        workers=(1, 2, 4),
        # 6 interleaved repeats per dispatch mode: the shm-vs-pickle gate is
        # a hard CI failure, so its minima must sit well above runner noise
        repeats=6,
        n_files=3,
        work_dir=str(tmp_path_factory.mktemp("parallel_scaling")),
    )
    for row in record["scaling"]:
        collector.add(str(row["n_workers"]), "shm", row["shm_s"])
        collector.add(str(row["n_workers"]), "pickle", row["pickle_s"])
    reuse = record["pool_reuse"]
    collector.add("batch", "cold-start", reuse["cold_start_s"])
    collector.add("batch", "pooled", reuse["pooled_s"])
    path = write_bench_record(record, os.environ.get("REPRO_BENCH_OUT"))
    print(format_parallel_report(record))
    print(f"wrote {path}")
    return record


def test_shm_dispatch_beats_pickle_dispatch(scaling_record):
    """Zero-copy slabs must beat cube pickling wherever dispatch happens.

    Gated on the aggregate across the ≥ 2-worker points (every timed sample
    pooled) so single-point scheduler noise cannot flip the verdict; the
    per-point curve stays in the record for inspection.
    """
    multi = [row for row in scaling_record["scaling"] if row["n_workers"] >= 2]
    assert multi, "no multi-worker scaling points measured"
    shm_total = sum(row["shm_s"] for row in multi)
    pickle_total = sum(row["pickle_s"] for row in multi)
    assert shm_total < pickle_total, (
        f"shm dispatch regressed: {shm_total:.4f}s vs pickle {pickle_total:.4f}s "
        f"aggregated over {len(multi)} multi-worker point(s)"
    )
    assert scaling_record["checks"]["shm_beats_pickle_multiworker"]


def test_pooled_run_many_beats_cold_start_pools(scaling_record):
    """One persistent pool across a batch must beat a fresh pool per file."""
    reuse = scaling_record["pool_reuse"]
    assert reuse["pooled_s"] < reuse["cold_start_s"], (
        f"pool reuse regressed: pooled {reuse['pooled_s']:.4f}s vs "
        f"cold-start {reuse['cold_start_s']:.4f}s over {reuse['n_files']} files"
    )
    assert reuse["pooled_pool_spawns"] == 1  # the whole batch shares one pool
    assert scaling_record["checks"]["pooled_run_many_beats_cold_start"]


def test_dispatch_modes_identical_results(scaling_record):
    """The dispatch modes trade speed only: results stay bitwise identical."""
    from repro.synthetic.workloads import make_benchmark_workload

    workload = make_benchmark_workload("0.5MB", seed=3)
    config = ReconstructionConfig(
        grid=workload.grid, backend="multiprocess", n_workers=2
    )
    from repro.core.backends.multiprocess import MultiprocessExecutor
    from repro.core.engine import StackChunkSource, execute

    shm_result, _ = execute(
        StackChunkSource(workload.stack), config, MultiprocessExecutor(dispatch="shm")
    )
    pickle_result, _ = execute(
        StackChunkSource(workload.stack), config, MultiprocessExecutor(dispatch="pickle")
    )
    assert np.array_equal(shm_result.data, pickle_result.data)
    shutdown_shared_pool()


def test_parallel_scaling_report(scaling_record):
    print(collector.report([
        "",
        "shm/pickle compare dispatch cost on a warm pool (1 worker runs in-process);",
        "batch compares one persistent pool against a cold pool per file.",
    ]))


# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def executor_record():
    """One BENCH_6 executor-scaling run shared by the assertions below."""
    record = run_executor_scaling(
        size_label=_bench_size_label(),
        workers=(1, 2, 4),
        repeats=5,
    )
    for row in record["matrix"]:
        executor_collector.add(str(row["n_workers"]), row["executor"], row["median_s"])
    path = write_bench_record(record, os.environ.get("REPRO_BENCH6_OUT"))
    print(format_executor_report(record))
    print(f"wrote {path}")
    return record


def test_executor_gate_honest(executor_record):
    """The 2×-at-4-workers gate passes OR the serial fallback is recorded.

    The gate is a measurement, not a defect: a machine that cannot show the
    speedup keeps the serial default, but then the artifact must say so —
    a failed gate with no recorded reason fails CI.
    """
    gate = executor_record["gate"]
    if executor_record["checks"]["two_x_at_4_workers"]:
        assert gate["speedup"] >= SCALING_GATE_SPEEDUP
        assert executor_record["default_executor"] in ("threads", "processes")
    else:
        assert executor_record["default_executor"] == "serial"
        reason = executor_record["serial_fallback_reason"]
        assert reason, "gate failed but no serial_fallback_reason recorded"
        assert f"{gate['speedup']:.2f}x" in reason  # the measured curve is in the reason
    assert executor_record["checks"]["fallback_reason_recorded"]


def test_fused_kernel_not_slower(executor_record):
    """Fusing the signed-difference pass must never lose to the 2-pass path."""
    kernel = executor_record["kernel"]
    assert kernel["fused_speedup"] >= 0.95, (
        f"fused kernel regressed: {kernel['fused']['median_s']:.4f}s vs "
        f"unfused {kernel['unfused']['median_s']:.4f}s"
    )


def test_matrix_covers_all_executors(executor_record):
    """The record carries the full strategy × worker matrix with IQR stats."""
    cells = {(row["executor"], row["n_workers"]) for row in executor_record["matrix"]}
    assert ("serial", 1) in cells
    for n in (1, 2, 4):
        assert ("threads", n) in cells
        assert ("processes", n) in cells
    for row in executor_record["matrix"]:
        assert row["iqr_s"] >= 0.0
        assert len(row["samples_s"]) == executor_record["repeats"]


def test_threaded_executor_smoke(executor_record):
    """Threaded-executor smoke: chunked run, bitwise-identical to serial."""
    from repro.core.engine import StackChunkSource, execute, make_strategy_executor
    from repro.synthetic.workloads import make_benchmark_workload

    workload = make_benchmark_workload("0.5MB", seed=7)
    serial = ReconstructionConfig(grid=workload.grid, backend="vectorized")
    threaded = ReconstructionConfig(
        grid=workload.grid, backend="vectorized", executor="threads", n_workers=2
    )
    ref, _ = execute(
        StackChunkSource(workload.stack), serial, make_strategy_executor(serial)
    )
    got, report = execute(
        StackChunkSource(workload.stack), threaded, make_strategy_executor(threaded)
    )
    assert report.backend == "threaded"
    assert np.array_equal(ref.data, got.data)


def test_executor_scaling_report(executor_record):
    print(executor_collector.report([
        "",
        "serial is the 1-worker engine loop; threads/processes run the same",
        "fused kernel behind the executor-strategy dispatch (BLAS pinned to 1).",
    ]))

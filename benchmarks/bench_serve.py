"""Experiment E8 — the serving daemon under load: cold, warm, collapsed.

Boots a real ``repro-serve`` daemon in-process (background thread, free
port) and drives it over HTTP with the bundled client, measuring the three
admission paths end-to-end (submit → poll → fetch result):

* **cold** — distinct files, every job reconstructs on the compute
  executor;
* **warm** — the same files resubmitted, served from the result cache at
  admission without touching the pool;
* **collapsed** — N concurrent identical submissions of a fresh file,
  which must trigger exactly one computation (single-flight).

Gates: warm aggregate latency beats cold aggregate (``warm_beats_cold``,
pooled over every sample, same policy as the cache bench) and the collapse
burst computes once (``collapse_single_computation``).  The run emits the
perf-trajectory artifact ``BENCH_7.json`` (override the path with
``REPRO_BENCH_OUT``, the per-file workload with ``REPRO_SERVE_BENCH_SIZE``).
"""

import concurrent.futures
import json
import os
import time

import pytest

from _bench_utils import SeriesCollector
from repro.io.image_stack import save_wire_scan
from repro.serve import ServeClient, ServeSettings, start_in_thread
from repro.serve.metrics import merge_counter_deltas
from repro.synthetic.workloads import make_benchmark_workload
from repro.utils.version import package_version

collector = SeriesCollector("repro-serve: end-to-end seconds per job", x_label="scenario")

#: Issue number this benchmark's artifact belongs to (BENCH_<issue>.json).
BENCH_ISSUE = 7

#: Per-file workload: reconstruction must clearly dominate HTTP overhead.
DEFAULT_SIZE_LABEL = "6MB"

#: Distinct files in the cold/warm phases.
N_FILES = 3

#: Concurrent identical submissions in the collapse burst.
N_CONCURRENT = 8


def _size_label() -> str:
    return os.environ.get("REPRO_SERVE_BENCH_SIZE", DEFAULT_SIZE_LABEL)


def _submit_and_wait(client, path, workload) -> float:
    start = time.perf_counter()
    accepted = client.submit(path, config=workload.config_dict)
    client.wait(accepted["job"]["id"], timeout_s=300.0)
    return time.perf_counter() - start


class _BenchWorkload:
    """The scan files plus the config dict every submission reuses."""

    def __init__(self, work_dir: str):
        self.workload = make_benchmark_workload(_size_label(), pixel_fraction=0.25, seed=13)
        from repro.core.config import ReconstructionConfig

        self.config_dict = ReconstructionConfig(
            grid=self.workload.grid, backend="vectorized"
        ).to_dict()
        self.paths = []
        for index in range(N_FILES + 1):  # +1: the collapse-burst file
            path = os.path.join(work_dir, f"scan_{index}.h5lite")
            save_wire_scan(path, self.workload.stack)
            stat = os.stat(path)
            # distinct mtimes => distinct fingerprints => distinct cache keys
            os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + index))
            self.paths.append(path)


def run_serve_bench(work_dir: str) -> dict:
    """Drive a live daemon through cold/warm/collapse; return the JSON record."""
    bench = _BenchWorkload(work_dir)
    settings = ServeSettings(
        port=0, workers=2, cache=os.path.join(work_dir, "cache"), queue_depth=64
    )
    with start_in_thread(settings) as handle:
        client = ServeClient(base_url=handle.base_url, client_id="bench")

        # ------------------------------------------------------------ #
        # cold: every file computes
        cold_samples = [
            _submit_and_wait(client, path, bench) for path in bench.paths[:N_FILES]
        ]
        after_cold = client.metrics()["jobs"]

        # warm: identical resubmissions serve from the cache at admission
        warm_samples = [
            _submit_and_wait(client, path, bench) for path in bench.paths[:N_FILES]
        ]
        after_warm = client.metrics()["jobs"]
        warm_deltas = merge_counter_deltas(
            after_cold, after_warm, ("computed", "cache_hits")
        )

        # ------------------------------------------------------------ #
        # collapse burst: N concurrent identical submissions, one computation
        burst_path = bench.paths[N_FILES]
        before_burst = client.metrics()["jobs"]
        start = time.perf_counter()
        with concurrent.futures.ThreadPoolExecutor(N_CONCURRENT) as pool:
            accepted = list(pool.map(
                lambda _: client.submit(burst_path, config=bench.config_dict),
                range(N_CONCURRENT),
            ))
        for payload in accepted:
            client.wait(payload["job"]["id"], timeout_s=300.0)
        burst_s = time.perf_counter() - start
        after_burst = client.metrics()["jobs"]
        burst_deltas = merge_counter_deltas(
            before_burst, after_burst, ("computed", "collapsed", "completed")
        )
        final_metrics = client.metrics()

    cold_total = sum(cold_samples)
    warm_total = sum(warm_samples)
    checks = {
        # pooled aggregate over every sample, not one lucky pair
        "warm_beats_cold": warm_total < cold_total,
        "warm_jobs_skipped_the_pool": (
            warm_deltas["computed"] == 0 and warm_deltas["cache_hits"] == N_FILES
        ),
        "collapse_single_computation": (
            burst_deltas["computed"] == 1
            and burst_deltas["collapsed"] == N_CONCURRENT - 1
            and burst_deltas["completed"] == N_CONCURRENT
        ),
    }
    return {
        "benchmark": "serve",
        "issue": BENCH_ISSUE,
        "repro_version": package_version(),
        "created_unix": time.time(),
        "workload": {
            "size_label": _size_label(),
            "shape": list(bench.workload.stack.shape),
            "nbytes": int(bench.workload.stack.nbytes),
            "n_depth_bins": int(bench.workload.grid.n_bins),
        },
        "settings": {"workers": 2, "queue_depth": 64},
        "cold": {
            "n_files": N_FILES,
            "samples_s": cold_samples,
            "total_s": cold_total,
        },
        "warm": {
            "n_files": N_FILES,
            "samples_s": warm_samples,
            "total_s": warm_total,
            "speedup": cold_total / warm_total if warm_total > 0 else float("inf"),
            "counter_deltas": warm_deltas,
        },
        "collapse": {
            "n_concurrent": N_CONCURRENT,
            "burst_s": burst_s,
            "counter_deltas": burst_deltas,
        },
        "final_latency": final_metrics["latency"],
        "checks": checks,
    }


@pytest.fixture(scope="module")
def serve_record(tmp_path_factory):
    """One full harness run shared by the assertions below."""
    record = run_serve_bench(str(tmp_path_factory.mktemp("serve_bench")))
    for index, (cold, warm) in enumerate(
        zip(record["cold"]["samples_s"], record["warm"]["samples_s"])
    ):
        collector.add(f"file#{index}", "cold", cold)
        collector.add(f"file#{index}", "warm", warm)
    collector.add(
        f"burst x{record['collapse']['n_concurrent']}", "cold",
        record["collapse"]["burst_s"],
    )
    path = os.environ.get("REPRO_BENCH_OUT", f"BENCH_{BENCH_ISSUE}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return record


def test_warm_requests_beat_cold_requests(serve_record):
    """Cache-first admission must beat recomputation end-to-end, in aggregate."""
    warm, cold = serve_record["warm"], serve_record["cold"]
    assert warm["total_s"] < cold["total_s"], (
        f"serving regressed: warm {warm['total_s']:.4f}s vs cold "
        f"{cold['total_s']:.4f}s over {cold['n_files']} file(s)"
    )
    assert serve_record["checks"]["warm_beats_cold"]


def test_warm_requests_never_touch_the_pool(serve_record):
    deltas = serve_record["warm"]["counter_deltas"]
    assert deltas["computed"] == 0
    assert deltas["cache_hits"] == serve_record["warm"]["n_files"]
    assert serve_record["checks"]["warm_jobs_skipped_the_pool"]


def test_concurrent_identical_submissions_compute_once(serve_record):
    deltas = serve_record["collapse"]["counter_deltas"]
    n = serve_record["collapse"]["n_concurrent"]
    assert deltas["computed"] == 1, f"single-flight broke: {deltas}"
    assert deltas["collapsed"] == n - 1
    assert deltas["completed"] == n
    assert serve_record["checks"]["collapse_single_computation"]


def test_serve_bench_report(serve_record):
    print(collector.report([
        "",
        "cold computes on the pool; warm serves the verified cache entry at",
        "admission; the burst row is 8 concurrent identical submissions",
        "sharing one computation (single-flight).",
    ]))

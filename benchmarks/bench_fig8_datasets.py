"""Experiment E2 — Fig. 8: CPU vs GPU total time across data-set sizes.

The paper runs the original CPU program and the CUDA port on four detector
data sets (2.1, 2.7, 3.6 and 5.2 GB) and reports total run time; the GPU
version takes 25-30 % of the CPU time on the larger sets and its time grows
much more slowly with data size.

Here the same sweep runs on proportionally scaled synthetic workloads:
``cpu_reference`` is the paper's CPU baseline (scalar per-element loop) and
``gpusim`` is the paper's CUDA design on the simulated device (chunked
streaming, flat 1-D layout).  The shape to check: the GPU-design time is a
small fraction of the CPU time, and the gap widens as the data grow.
"""

import pytest

from _bench_utils import SeriesCollector, run_and_time
from repro.perf.modelruns import PAPER_FIG8_CPU_SECONDS, PAPER_FIG8_GPU_SECONDS, predict_figure8

DATASETS = ["2.1G", "2.7G", "3.6G", "5.2G"]
BACKENDS = {"cpu_reference": "CPU", "gpusim": "GPU"}

collector = SeriesCollector(
    "Fig. 8 reproduction: CPU vs GPU across data-set sizes (measured, scaled workloads)"
)


@pytest.mark.parametrize("backend", list(BACKENDS))
@pytest.mark.parametrize("dataset", DATASETS)
def test_fig8_dataset_sweep(benchmark, workload_cache, dataset, backend):
    workload = workload_cache(dataset)
    seconds = benchmark.pedantic(
        run_and_time, args=(workload, backend), rounds=1, iterations=1, warmup_rounds=0
    )
    collector.add(dataset, BACKENDS[backend], seconds)
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["cube_bytes"] = workload.actual_bytes
    benchmark.extra_info["paper_seconds"] = (
        PAPER_FIG8_CPU_SECONDS[dataset] if backend == "cpu_reference" else PAPER_FIG8_GPU_SECONDS[dataset]
    )


def test_fig8_report_and_shape(benchmark):
    """Assert the figure's qualitative shape and print the series table."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)  # keep this test in --benchmark-only runs
    ratios = []
    cpu_times = []
    gpu_times = []
    for dataset in DATASETS:
        row = collector.series.get(dataset, {})
        if "CPU" not in row or "GPU" not in row:
            pytest.skip("sweep benchmarks did not run (run the whole file)")
        cpu_times.append(row["CPU"])
        gpu_times.append(row["GPU"])
        ratios.append(row["GPU"] / row["CPU"])

    # paper shape: GPU wins everywhere, and CPU time grows faster with size
    assert all(r < 1.0 for r in ratios), f"GPU slower than CPU somewhere: {ratios}"
    assert cpu_times[-1] > cpu_times[0]
    assert (gpu_times[-1] / gpu_times[0]) < (cpu_times[-1] / cpu_times[0]) * 1.5

    model = predict_figure8()
    extra = [
        "",
        "paper-reported totals (s):      " + "  ".join(
            f"{d}: CPU {PAPER_FIG8_CPU_SECONDS[d]:.0f}/GPU {PAPER_FIG8_GPU_SECONDS[d]:.0f}" for d in DATASETS
        ),
        "analytic paper-scale model (s): " + "  ".join(
            f"{d}: CPU {model[d].cpu_seconds:.0f}/GPU {model[d].gpu_seconds:.0f}" for d in DATASETS
        ),
        "measured GPU/CPU ratios (scaled workloads): "
        + ", ".join(f"{d}={r:.2f}" for d, r in zip(DATASETS, ratios)),
        "paper headline: GPU total time is 25-30 % of the CPU total time.",
    ]
    print(collector.report(extra))

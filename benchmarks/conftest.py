"""Fixtures for the benchmark suite.

The byte-scale of the generated workloads can be raised with the
``REPRO_BENCH_SCALE`` environment variable (default keeps the whole suite
under a couple of minutes on a laptop).
"""

from __future__ import annotations

import pytest

from _bench_utils import bench_scale
from repro.synthetic.workloads import make_benchmark_workload


@pytest.fixture(scope="session")
def scale() -> float:
    """Byte-scale factor for generated workloads."""
    return bench_scale()


@pytest.fixture(scope="session")
def workload_cache():
    """Memoised workload generation shared across benchmark modules."""
    cache = {}

    def get(label: str, pixel_fraction: float = 1.0, seed: int = 0):
        key = (label, pixel_fraction, seed)
        if key not in cache:
            cache[key] = make_benchmark_workload(
                label, pixel_fraction=pixel_fraction, scale=bench_scale(), seed=seed
            )
        return cache[key]

    return get

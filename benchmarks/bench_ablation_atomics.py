"""Ablation A3 — atomic scatter-add vs privatised accumulation.

The CUDA kernel accumulates into the shared depth-resolved cube with
``atomicAdd`` (emulated for doubles on the Fermi-class M2070).  The standard
alternative is privatisation: each worker accumulates into its own partial
histogram and the partials are summed at the end.  This ablation measures the
host-side analogue of both strategies on identical contribution streams and
checks they produce identical results.
"""

import numpy as np
import pytest

from _bench_utils import SeriesCollector
from repro.cudasim.atomic import atomic_add

N_BINS = 64
N_PIXELS = 96 * 96
N_CONTRIBUTIONS = 400_000
N_PRIVATE_PARTITIONS = 8

collector = SeriesCollector("Ablation: histogram accumulation strategy", x_label="strategy")
_results = {}


def _make_stream(seed: int = 0):
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, N_BINS * N_PIXELS, size=N_CONTRIBUTIONS)
    values = rng.random(N_CONTRIBUTIONS)
    return indices, values


def _atomic_strategy(indices, values):
    out = np.zeros(N_BINS * N_PIXELS)
    atomic_add(out, indices, values)
    return out


def _privatized_strategy(indices, values):
    partials = np.zeros((N_PRIVATE_PARTITIONS, N_BINS * N_PIXELS))
    bounds = np.linspace(0, indices.size, N_PRIVATE_PARTITIONS + 1, dtype=int)
    for partition in range(N_PRIVATE_PARTITIONS):
        lo, hi = bounds[partition], bounds[partition + 1]
        atomic_add(partials[partition], indices[lo:hi], values[lo:hi])
    return partials.sum(axis=0)


@pytest.mark.parametrize("strategy", ["atomic", "privatized"])
def test_accumulation_strategy(benchmark, strategy):
    indices, values = _make_stream()
    func = _atomic_strategy if strategy == "atomic" else _privatized_strategy
    result = benchmark.pedantic(func, args=(indices, values), rounds=3, iterations=1, warmup_rounds=1)
    _results[strategy] = result
    collector.add(strategy, "seconds (3-round best)", float(benchmark.stats["min"]))


def test_accumulation_report(benchmark):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if set(_results) != {"atomic", "privatized"}:
        pytest.skip("sweep benchmarks did not run (run the whole file)")
    np.testing.assert_allclose(_results["atomic"], _results["privatized"], rtol=1e-12, atol=1e-12)
    print(collector.report([
        "",
        "Both strategies are numerically identical; on real hardware atomics",
        "contend under collisions while privatisation trades memory for speed.",
    ]))

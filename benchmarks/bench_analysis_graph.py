"""Experiment E8 — the DAG analysis engine: parallel scheduling, dirty subgraphs.

The cross-run engine makes two performance promises:

* **parallel beats linear** — independent nodes of a run-scope graph
  execute concurrently on the shared thread pool, so a wide graph of
  GIL-releasing ops must beat its serial execution;
* **dirty re-analysis is incremental** — node values are memoized per
  ``(run key, node signature)``, so editing one node's parameters (or one
  input file of a batch) must recompute only the dirty subgraph, proven
  with node-level cache counters and wall time far under the cold pass.

The run emits the repository's perf-trajectory artifact (``BENCH_8.json``
by default; override the path with ``REPRO_BENCH_OUT``).
"""

import json
import os
import time

import numpy as np
import pytest

from _bench_utils import SeriesCollector
from repro.analysisgraph import graph as build_graph
from repro.core.cache import ResultCache
from repro.core.ops import register_op
from repro.core.session import session
from repro.io.image_stack import save_wire_scan
from repro.synthetic.workloads import make_point_source_stack
from repro.utils.version import package_version

collector = SeriesCollector("Analysis graphs: wall seconds", x_label="scenario")

#: Issue number this benchmark's artifact belongs to (BENCH_<issue>.json).
BENCH_ISSUE = 8

#: Files in the batch scenarios (one is dirtied).
N_FILES = 4

#: Sleep of the simulated heavyweight per-run op (seconds).
HEAVY_S = 0.05

#: Width and per-node sleep of the run-scope parallel graph.
WIDE_NODES = 4
WIDE_NODE_S = 0.08


@register_op("bench_heavy", description="bench: sleepy per-run op (GIL released)", replace=True)
def bench_heavy(result, nap: float = HEAVY_S):
    time.sleep(float(nap))  # sleep releases the GIL like NumPy kernels do
    return float(np.asarray(result.data).sum())


def _wide_graph():
    """WIDE_NODES independent sleepy nodes — maximal parallel width."""
    return build_graph(*[
        {"name": f"lane_{index}", "op": "bench_heavy", "params": {"nap": WIDE_NODE_S}}
        for index in range(WIDE_NODES)
    ])


def _science_graph(radius_fraction: float = 1.0):
    """The batch-scope shape: two per-run nodes feeding two reduces."""
    return build_graph(
        {"name": "heavy", "op": "bench_heavy"},
        {"name": "tot", "op": "aperture_total",
         "params": {"radius_fraction": radius_fraction}},
        {"name": "est", "op": "integrated_estimate", "inputs": ["heavy"]},
        {"name": "stats", "op": "sample_stats", "inputs": ["tot"]},
    )


def _timed(fn):
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def run_analysis_graph_bench(work_dir: str) -> dict:
    """Measure both promises; return the BENCH_8 JSON record."""
    stack, _source = make_point_source_stack(
        depth=40.0, n_rows=8, n_cols=8, n_positions=61
    )
    cache = ResultCache(os.path.join(work_dir, "cache"))
    from repro.core.depth_grid import DepthGrid

    grid = DepthGrid.from_range(0.0, 100.0, 25)
    sess = session(grid=grid).cached(cache)

    paths = []
    for index in range(N_FILES):
        path = os.path.join(work_dir, f"scan_{index}.h5lite")
        save_wire_scan(path, stack)
        stat = os.stat(path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + index))
        paths.append(path)

    # ---------------------------------------------------------------- #
    # parallel vs linear: a wide run-scope graph on an uncached run
    # (no memoization, so both sides execute every node)
    wide = _wide_graph()
    run = session(grid=grid).run(paths[0])
    _, serial_s = _timed(lambda: wide.apply(run, executor="serial"))
    outcome, threads_s = _timed(lambda: wide.apply(run, executor="threads"))
    assert outcome.execution["executor"] == "threads"

    # ---------------------------------------------------------------- #
    # memoized batch re-analysis (serial executor on every side so the
    # comparison is computation count, not thread-pool luck)
    science = _science_graph()
    batch = sess.run_many(paths)

    cold, cold_s = _timed(lambda: batch.analyze(science, executor="serial"))
    warm, warm_s = _timed(lambda: batch.analyze(science, executor="serial"))

    # dirty parameters: shrink the aperture — 'tot' and its reduce are the
    # dirty subgraph, 'heavy' (the expensive node) and its reduce stay memoized
    dirty_graph = _science_graph(radius_fraction=0.5)
    dirty_param, dirty_param_s = _timed(
        lambda: batch.analyze(dirty_graph, executor="serial")
    )

    # dirty file: touch one input — only that file's per-run nodes (plus the
    # reduces, whose batch key changed) recompute
    changed = paths[-1]
    stat = os.stat(changed)
    os.utime(changed, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))
    rebatch = sess.run_many(paths)
    dirty_file, dirty_file_s = _timed(
        lambda: rebatch.analyze(science, executor="serial")
    )

    n_run_nodes = 2  # heavy + tot
    n_reduces = 2    # est + stats
    checks = {
        "parallel_beats_serial": threads_s < 0.75 * serial_s,
        "warm_is_all_memo_hits": (
            warm.execution["n_computed"] == 0
            and warm.execution["n_memo_hits"] == N_FILES * n_run_nodes + n_reduces
        ),
        # node-level counters: the dirty subgraph and nothing else
        "dirty_param_recomputes_only_subgraph": (
            dirty_param.execution["n_computed"] == N_FILES + 1
            and dirty_param.execution["n_memo_hits"] == N_FILES + 1
        ),
        "dirty_file_recomputes_only_that_file": (
            dirty_file.execution["n_computed"] == n_run_nodes + n_reduces
            and dirty_file.execution["n_memo_hits"] == (N_FILES - 1) * n_run_nodes
        ),
        "dirty_param_much_less_than_cold": dirty_param_s < 0.6 * cold_s,
        "dirty_file_much_less_than_cold": dirty_file_s < 0.6 * cold_s,
    }
    return {
        "benchmark": "analysis_graph",
        "issue": BENCH_ISSUE,
        "repro_version": package_version(),
        "created_unix": time.time(),
        "workload": {
            "n_files": N_FILES,
            "stack_shape": list(stack.images.shape),
            "heavy_op_s": HEAVY_S,
            "wide_nodes": WIDE_NODES,
            "wide_node_s": WIDE_NODE_S,
        },
        "run_scope": {
            "serial_s": serial_s,
            "threads_s": threads_s,
            "speedup": serial_s / threads_s if threads_s > 0 else float("inf"),
            "n_workers": outcome.execution["n_workers"],
        },
        "batch_scope": {
            "cold_s": cold_s,
            "warm_s": warm_s,
            "dirty_param_s": dirty_param_s,
            "dirty_file_s": dirty_file_s,
            "cold": dict(cold.execution),
            "warm": dict(warm.execution),
            "dirty_param": dict(dirty_param.execution),
            "dirty_file": dict(dirty_file.execution),
        },
        "checks": checks,
    }


@pytest.fixture(scope="module")
def graph_record(tmp_path_factory):
    """One full harness run shared by the assertions below."""
    record = run_analysis_graph_bench(str(tmp_path_factory.mktemp("graph_bench")))
    run_scope = record["run_scope"]
    collector.add("wide graph", "serial", run_scope["serial_s"])
    collector.add("wide graph", "threads", run_scope["threads_s"])
    batch = record["batch_scope"]
    collector.add("batch analyze", "cold", batch["cold_s"])
    collector.add("batch analyze", "warm", batch["warm_s"])
    collector.add("batch analyze", "dirty-param", batch["dirty_param_s"])
    collector.add("batch analyze", "dirty-file", batch["dirty_file_s"])
    path = os.environ.get("REPRO_BENCH_OUT", f"BENCH_{BENCH_ISSUE}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return record


def test_parallel_execution_beats_serial(graph_record):
    """Independent nodes must genuinely overlap on the thread pool."""
    run_scope = graph_record["run_scope"]
    assert run_scope["threads_s"] < 0.75 * run_scope["serial_s"], (
        f"parallel scheduling regressed: threads {run_scope['threads_s']:.4f}s vs "
        f"serial {run_scope['serial_s']:.4f}s over {WIDE_NODES} independent nodes"
    )
    assert graph_record["checks"]["parallel_beats_serial"]


def test_warm_reanalysis_is_fully_memoized(graph_record):
    warm = graph_record["batch_scope"]["warm"]
    assert warm["n_computed"] == 0
    assert graph_record["checks"]["warm_is_all_memo_hits"]


def test_dirty_param_recomputes_only_the_subgraph(graph_record):
    """The node-level counters must show exactly the dirty subgraph."""
    dirty = graph_record["batch_scope"]["dirty_param"]
    assert dirty["n_computed"] == N_FILES + 1, dirty
    assert dirty["n_memo_hits"] == N_FILES + 1, dirty
    assert graph_record["checks"]["dirty_param_recomputes_only_subgraph"]


def test_dirty_file_recomputes_only_that_file(graph_record):
    dirty = graph_record["batch_scope"]["dirty_file"]
    assert dirty["n_computed"] == 4, dirty  # 2 run nodes + 2 reduces
    assert dirty["n_memo_hits"] == (N_FILES - 1) * 2, dirty
    assert graph_record["checks"]["dirty_file_recomputes_only_that_file"]


def test_dirty_reanalysis_much_cheaper_than_cold(graph_record):
    batch = graph_record["batch_scope"]
    assert batch["dirty_param_s"] < 0.6 * batch["cold_s"], batch
    assert batch["dirty_file_s"] < 0.6 * batch["cold_s"], batch
    assert graph_record["checks"]["dirty_param_much_less_than_cold"]
    assert graph_record["checks"]["dirty_file_much_less_than_cold"]


def test_analysis_graph_report(graph_record):
    print(collector.report([
        "",
        "wide graph: 4 independent 0.08s nodes, serial vs shared thread pool;",
        "batch analyze: cold computes every node, warm is all memo hits,",
        "dirty-param re-runs one node per file + one reduce, dirty-file",
        "re-runs one file's subgraph + the reduces.",
    ]))

"""Experiment E1 — Fig. 4: flat 1-D array layout vs pointer-based 3-D layout.

The paper's design discussion weighs two ways of holding the image cube on
the device: a pointer-based 3-D layout (direct indexing, but extra pointer
tables and one transfer per slab) and a flattened 1-D layout (index
arithmetic per access, one transfer per chunk).  Fig. 4 shows the 1-D layout
winning at every pixel percentage on a 5 GB data set.

Both layouts run on the GPU-sim backend here; wall-clock and the modelled
device time (which is where the pointer-table transfer overhead shows up
directly) are reported.
"""

import pytest

from _bench_utils import SeriesCollector, run_and_time
from repro.core.backends import get_backend
from repro.core.config import ReconstructionConfig

FRACTIONS = {0.25: "25%", 0.5: "50%", 1.0: "100%"}
LAYOUTS = ("pointer3d", "flat1d")

#: Fig. 4 values read off the paper (seconds, GPU implementation).
PAPER_FIG4_3D_ARRAY = {"25%": 560.0, "50%": 830.0, "100%": 1300.0}
PAPER_FIG4_1D_ARRAY = {"25%": 500.0, "50%": 700.0, "100%": 1170.0}

collector = SeriesCollector(
    "Fig. 4 reproduction: 1-D vs 3-D device array layout (GPU-sim, wall seconds)",
    x_label="pixel %",
)
model_collector = SeriesCollector(
    "Fig. 4 reproduction: modelled device time (transfers + kernels, seconds)",
    x_label="pixel %",
)


@pytest.mark.parametrize("layout", LAYOUTS)
@pytest.mark.parametrize("fraction", list(FRACTIONS))
def test_fig4_layout_sweep(benchmark, workload_cache, fraction, layout):
    workload = workload_cache("5.2G", pixel_fraction=fraction)
    seconds = benchmark.pedantic(
        run_and_time,
        args=(workload, "gpusim"),
        kwargs={"layout": layout},
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )
    collector.add(FRACTIONS[fraction], layout, seconds)

    # also record the modelled device time, where the extra transfers of the
    # pointer layout are directly visible
    config = ReconstructionConfig(grid=workload.grid, backend="gpusim", layout=layout)
    _, report = get_backend("gpusim").reconstruct(workload.stack, config)
    model_collector.add(FRACTIONS[fraction], layout, report.simulated_device_time)
    benchmark.extra_info["layout"] = layout
    benchmark.extra_info["simulated_device_seconds"] = report.simulated_device_time
    benchmark.extra_info["transfer_fraction"] = report.transfer_fraction


def test_fig4_report_and_shape(benchmark):
    """The flat 1-D layout must beat the pointer 3-D layout on modelled device time."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    labels = list(FRACTIONS.values())
    for label in labels:
        row = model_collector.series.get(label, {})
        if set(row) != {"flat1d", "pointer3d"}:
            pytest.skip("sweep benchmarks did not run (run the whole file)")
        assert row["flat1d"] < row["pointer3d"], (
            f"flat 1-D layout should be faster than pointer 3-D at {label}: {row}"
        )

    extra = [
        "",
        "paper Fig. 4 (s): " + "  ".join(
            f"{p}: 3D {PAPER_FIG4_3D_ARRAY[p]:.0f}/1D {PAPER_FIG4_1D_ARRAY[p]:.0f}" for p in labels
        ),
        "paper conclusion: the 1-D array design saves time at every pixel percentage,",
        "because the 3-D design ships extra pointer tables (and per-slab copies) over PCIe.",
    ]
    print(collector.report())
    print(model_collector.report(extra))

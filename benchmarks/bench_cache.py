"""Experiment E7 — the content-addressed result cache: warm vs cold, incremental batches.

The cache exists to make the *second* request fast: a fingerprint-identical
``(source, config)`` pair must be served from disk (load + digest verify)
far faster than any backend can recompute it, and a batch where one of N
files changed must pay for one reconstruction, not N.  This suite measures
both and gates against their regression:

* **warm vs cold** — repeated single-file runs, cache hits against genuine
  recomputes, gated on the aggregate over every timed sample
  (``warm_beats_cold``);
* **incremental run_many** — 1-of-N files changed: the cached batch must
  recompute exactly the changed file and beat the full uncached recompute.

The run emits the repository's perf-trajectory artifact (``BENCH_5.json``
by default; override the path with ``REPRO_BENCH_OUT`` and the per-file
workload with ``REPRO_CACHE_BENCH_SIZE``).
"""

import json
import os
import time

import pytest

from _bench_utils import SeriesCollector
from repro.core.cache import ResultCache
from repro.core.session import session
from repro.io.image_stack import save_wire_scan
from repro.synthetic.workloads import make_benchmark_workload
from repro.utils.version import package_version

collector = SeriesCollector("Result cache: wall seconds", x_label="scenario")

#: Issue number this benchmark's artifact belongs to (BENCH_<issue>.json).
BENCH_ISSUE = 5

#: Per-file workload: big enough that reconstruction clearly dominates a
#: cache load, small enough for CI.
DEFAULT_SIZE_LABEL = "6MB"

#: Files in the incremental-batch measurement (1 of N is changed).
N_FILES = 4

#: Timed samples per scenario; the gates pool all of them.
REPEATS = 3


def _size_label() -> str:
    return os.environ.get("REPRO_CACHE_BENCH_SIZE", DEFAULT_SIZE_LABEL)


def run_cache_bench(work_dir: str) -> dict:
    """Measure warm-vs-cold and incremental batches; return the JSON record."""
    workload = make_benchmark_workload(_size_label(), pixel_fraction=0.25, seed=11)
    cache = ResultCache(os.path.join(work_dir, "cache"))
    sess = session(grid=workload.grid, backend="vectorized").cached(cache)

    paths = []
    for index in range(N_FILES):
        path = os.path.join(work_dir, f"scan_{index}.h5lite")
        save_wire_scan(path, workload.stack)
        # re-stamp a distinct mtime per file so every fingerprint is unique
        stat = os.stat(path)
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + index))
        paths.append(path)
    single = paths[0]

    # ---------------------------------------------------------------- #
    # warm vs cold single runs
    sess.run(single)  # populate the entry (store cost excluded from both sides)
    cold_samples, warm_samples = [], []
    for _ in range(REPEATS):
        start = time.perf_counter()
        run = sess.run(single, cache=False)  # genuine recompute
        cold_samples.append(time.perf_counter() - start)
        assert run.cache_stats is None
        start = time.perf_counter()
        run = sess.run(single)
        warm_samples.append(time.perf_counter() - start)
        assert run.cache_stats.hit, "expected a cache hit on the warm side"

    # ---------------------------------------------------------------- #
    # incremental run_many: 1 of N files changed
    sess.run_many(paths)  # populate every entry
    changed = paths[-1]
    stat = os.stat(changed)
    os.utime(changed, ns=(stat.st_atime_ns, stat.st_mtime_ns + 1_000_000))

    start = time.perf_counter()
    full = sess.run_many(paths, cache=False)
    full_s = time.perf_counter() - start

    start = time.perf_counter()
    incremental = sess.run_many(paths)
    incremental_s = time.perf_counter() - start

    cold_total = sum(cold_samples)
    warm_total = sum(warm_samples)
    checks = {
        # gated on the aggregate over every timed sample, not one lucky pair
        "warm_beats_cold": warm_total < cold_total,
        "incremental_recomputes_only_changed": (
            incremental.n_cached == N_FILES - 1 and incremental.n_computed == 1
        ),
        "incremental_beats_full_recompute": incremental_s < full_s,
    }
    return {
        "benchmark": "cache",
        "issue": BENCH_ISSUE,
        "repro_version": package_version(),
        "created_unix": time.time(),
        "workload": {
            "size_label": _size_label(),
            "shape": list(workload.stack.shape),
            "nbytes": int(workload.stack.nbytes),
            "n_depth_bins": int(workload.grid.n_bins),
        },
        "repeats": REPEATS,
        "single": {
            "cold_s": cold_samples,
            "warm_s": warm_samples,
            "cold_total_s": cold_total,
            "warm_total_s": warm_total,
            "warm_speedup": cold_total / warm_total if warm_total > 0 else float("inf"),
        },
        "incremental": {
            "n_files": N_FILES,
            "n_changed": 1,
            "full_recompute_s": full_s,
            "incremental_s": incremental_s,
            "n_cached": incremental.n_cached,
            "n_computed": incremental.n_computed,
            "full_n_cached": full.n_cached,
        },
        "checks": checks,
    }


@pytest.fixture(scope="module")
def cache_record(tmp_path_factory):
    """One full harness run shared by the assertions below."""
    record = run_cache_bench(str(tmp_path_factory.mktemp("cache_bench")))
    single = record["single"]
    for index, (cold, warm) in enumerate(zip(single["cold_s"], single["warm_s"])):
        collector.add(f"run#{index}", "cold", cold)
        collector.add(f"run#{index}", "warm", warm)
    incremental = record["incremental"]
    collector.add("batch 1-of-4", "full", incremental["full_recompute_s"])
    collector.add("batch 1-of-4", "incremental", incremental["incremental_s"])
    path = os.environ.get("REPRO_BENCH_OUT", f"BENCH_{BENCH_ISSUE}.json")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(record, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(f"wrote {path}")
    return record


def test_warm_hits_beat_cold_recomputes(cache_record):
    """A cache hit (load + digest verify) must beat recomputing, in aggregate."""
    single = cache_record["single"]
    assert single["warm_total_s"] < single["cold_total_s"], (
        f"cache hits regressed: warm {single['warm_total_s']:.4f}s vs "
        f"cold {single['cold_total_s']:.4f}s over {cache_record['repeats']} sample(s)"
    )
    assert cache_record["checks"]["warm_beats_cold"]


def test_incremental_batch_recomputes_only_the_changed_file(cache_record):
    incremental = cache_record["incremental"]
    assert incremental["n_cached"] == incremental["n_files"] - 1
    assert incremental["n_computed"] == 1
    assert cache_record["checks"]["incremental_recomputes_only_changed"]


def test_incremental_batch_beats_full_recompute(cache_record):
    incremental = cache_record["incremental"]
    assert incremental["incremental_s"] < incremental["full_recompute_s"], (
        f"incremental batch regressed: {incremental['incremental_s']:.4f}s vs "
        f"full recompute {incremental['full_recompute_s']:.4f}s"
    )
    assert cache_record["checks"]["incremental_beats_full_recompute"]


def test_cache_bench_report(cache_record):
    print(collector.report([
        "",
        "cold recomputes every time; warm serves the verified cache entry;",
        "the batch row compares a full 4-file recompute against 3 hits + 1 rebuild.",
    ]))

"""The analysis-ops registry and the composable analysis pipeline.

The results-side counterpart of the backend registry: post-reconstruction
analyses register as named **ops** and chain into immutable, reusable
pipelines (kedro's named-node shape) instead of living as orphaned free
functions::

    import repro

    pipeline = repro.analysis("peaks", "fwhm")          # immutable, reusable
    outcome = pipeline.apply(run)                       # a RunResult ...
    outcome = pipeline.apply(run.result)                # ... a bare stack ...
    outcome = pipeline.apply("depth.h5lite")            # ... or a saved file
    batch_outcome = pipeline.apply(batch)               # fan-out, per-item errors
    print(outcome["fwhm"], outcome.to_json())

An op is a function taking a
:class:`~repro.core.result.DepthResolvedStack` first and keyword parameters
after, returning a JSON-serialisable value.  Out-of-tree ops register
exactly like backends::

    from repro.core.ops import register_op

    @register_op("layer_count", description="number of resolved layers")
    def layer_count(result, min_relative_height=0.1):
        ...

and resolve everywhere built-ins do: ``repro.analysis()``,
``RunResult.analyze()``, ``Session.run(analyze=...)`` and the
``repro-analyze`` CLI.  Every outcome is an :class:`AnalysisResult` whose
provenance chains the run's provenance with the applied op sequence, so a
figure traced back from a JSON document names both the reconstruction and
the analysis that produced it.
"""

from __future__ import annotations

import dataclasses
import difflib
import inspect
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.analysis import (
    depth_resolution_estimate,
    detect_grain_boundaries,
    find_profile_peaks,
    profile_fwhm,
)
from repro.core.result import DepthResolvedStack
from repro.io.h5lite import H5LiteError, json_normalize
from repro.utils.validation import ValidationError
from repro.utils.version import package_version

__all__ = [
    "OpInfo",
    "register_op",
    "register_reduce_op",
    "register_op_info",
    "unregister_op",
    "op_info",
    "available_ops",
    "ops",
    "AnalysisStep",
    "AnalysisPipeline",
    "AnalysisResult",
    "BatchAnalysisItem",
    "BatchAnalysisResult",
    "analysis",
    "as_pipeline",
]

_OPS: Dict[str, "OpInfo"] = {}


# --------------------------------------------------------------------------- #
# registry (mirrors repro.core.registry for backends)
@dataclass(frozen=True)
class OpInfo:
    """Registry entry: an analysis op plus its description.

    Parameters
    ----------
    name:
        Registry name the op resolves under (pipeline step names).
    func:
        ``func(result: DepthResolvedStack, **params) -> JSON-safe value`` for
        per-run ops; reduce ops take collected batch-level inputs instead
        (see :func:`register_reduce_op`).
    description:
        One-line human description for the ``repro-analyze --list`` CLI.
    kind:
        ``"run"`` for per-run ops (one depth-resolved stack in), ``"reduce"``
        for ops consuming a whole batch or the collected outputs of a
        per-run node across a batch.  Reduce ops only resolve inside DAG
        analysis graphs (:func:`repro.graph`), never in linear pipelines.
    """

    name: str
    func: Callable
    description: str = ""
    kind: str = "run"

    @property
    def module(self) -> str:
        """Module the op is defined in (provenance/CLI)."""
        return getattr(self.func, "__module__", "?")

    @property
    def n_inputs(self) -> int:
        """Positional data inputs the op consumes (DAG arity validation).

        Per-run ops take one (the stack); a reduce op may take several
        collected sequences (``scaling_fit(x_values, y_values)`` takes two).
        Counted as the function's parameters without a default that can be
        filled positionally.
        """
        count = 0
        for parameter in inspect.signature(self.func).parameters.values():
            if parameter.kind in (
                inspect.Parameter.POSITIONAL_ONLY, inspect.Parameter.POSITIONAL_OR_KEYWORD
            ) and parameter.default is inspect.Parameter.empty:
                count += 1
        return count

    def parameters(self) -> Dict[str, object]:
        """The op's keyword parameters and their defaults.

        The data inputs (the leading parameters without defaults — the stack
        for per-run ops, the collected sequences for reduce ops) are omitted;
        remaining parameters without a default are reported as the string
        ``"<required>"`` (distinct from a genuine ``None`` default);
        ``*args``/``**kwargs`` catch-alls are omitted.
        """
        params = {}
        items = list(inspect.signature(self.func).parameters.items())[self.n_inputs:]
        for name, parameter in items:
            if parameter.kind in (
                inspect.Parameter.VAR_POSITIONAL, inspect.Parameter.VAR_KEYWORD
            ):
                continue
            if parameter.default is inspect.Parameter.empty:
                params[name] = "<required>"
            else:
                params[name] = parameter.default
        return params

    def to_dict(self) -> Dict:
        """JSON-safe summary (the ``repro-analyze --list --json`` payload)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "module": self.module,
            "description": self.description,
            "parameters": self.parameters(),
        }


def register_op_info(info: OpInfo, replace: bool = False) -> OpInfo:
    """Add a fully-built :class:`OpInfo` to the registry.

    Duplicate names are rejected unless ``replace=True`` — silently
    shadowing an existing op would quietly change every pipeline using it.
    """
    if not info.name:
        raise ValidationError("op registration requires a non-empty name")
    if not callable(info.func):
        raise ValidationError(f"op {info.name!r} must be callable")
    if not replace and info.name in _OPS:
        raise ValidationError(
            f"op {info.name!r} is already registered (by {_OPS[info.name].module}); "
            "pass replace=True to override"
        )
    _OPS[info.name] = info
    return info


def register_op(name=None, *, description: str = "", replace: bool = False):
    """Function decorator registering an analysis op under *name*.

    Two forms are accepted::

        @register_op("myop", description="...")
        def myop(result, threshold=0.5): ...

        @register_op            # the function's own name is used
        def myop(result): ...
    """

    def decorate(func, op_name):
        about = description
        if not about and func.__doc__:
            about = func.__doc__.strip().splitlines()[0]
        register_op_info(
            OpInfo(name=op_name, func=func, description=about), replace=replace
        )
        return func

    if callable(name):  # bare @register_op on a function
        func = name
        return decorate(func, func.__name__)
    return lambda func: decorate(func, name or func.__name__)


def register_reduce_op(name=None, *, description: str = "", replace: bool = False):
    """Function decorator registering a batch-level **reduce** op under *name*.

    Where a per-run op takes one depth-resolved stack, a reduce op consumes
    batch-level inputs: each required positional parameter is fed either the
    whole :class:`~repro.core.session.BatchRunResult` (graph input
    ``"batch"``) or the collected outputs of a per-run node across the batch
    (graph input naming that node).  Keyword parameters bind from the node
    spec exactly like per-run ops::

        from repro.core.ops import register_reduce_op

        @register_reduce_op("mean_of", description="sample mean of a derived quantity")
        def mean_of(values):
            return sum(values) / len(values)

    Reduce ops only resolve inside DAG analysis graphs (``repro.graph``);
    linear :func:`analysis` pipelines reject them at build time because a
    chain has no batch scope to collect over.
    """

    def decorate(func, op_name):
        about = description
        if not about and func.__doc__:
            about = func.__doc__.strip().splitlines()[0]
        register_op_info(
            OpInfo(name=op_name, func=func, description=about, kind="reduce"),
            replace=replace,
        )
        return func

    if callable(name):  # bare @register_reduce_op on a function
        func = name
        return decorate(func, func.__name__)
    return lambda func: decorate(func, name or func.__name__)


def unregister_op(name: str) -> OpInfo:
    """Remove an op from the registry, returning its entry.

    Intended for plugin teardown and tests; re-register the returned info
    with :func:`register_op_info` to restore it.
    """
    info = _OPS.pop(name, None)
    if info is None:
        raise ValidationError(f"cannot unregister unknown op {name!r}")
    return info


def op_info(name: str) -> OpInfo:
    """Look up an op's registry entry, failing fast with a suggestion."""
    try:
        return _OPS[str(name)]
    except KeyError:
        known = sorted(_OPS)
        message = f"unknown analysis op {name!r}; available: {known}"
        close = difflib.get_close_matches(str(name), known, n=1)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise ValidationError(message) from None


def available_ops() -> List[str]:
    """Names of all registered ops, sorted."""
    return sorted(_OPS)


def ops(name: Optional[str] = None):
    """Introspect the op registry.

    With no argument, return every :class:`OpInfo` sorted by name (the
    ``repro.ops()`` public API); with a name, return that single entry.
    """
    if name is not None:
        return op_info(name)
    return [_OPS[key] for key in sorted(_OPS)]


# --------------------------------------------------------------------------- #
# analysis outcomes
def _json_value(value):
    """Normalize an op's return value into strict JSON types, fail-fast."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        value = dataclasses.asdict(value)
    elif isinstance(value, (list, tuple)):
        value = [
            dataclasses.asdict(item) if dataclasses.is_dataclass(item) and not isinstance(item, type) else item
            for item in value
        ]
    return json_normalize(value)


@dataclass
class AnalysisResult:
    """The outcome of one pipeline applied to one depth-resolved result.

    ``results`` holds one record per pipeline step —
    ``{"op", "params", "value"}`` in application order — and ``run`` is the
    provenance of the reconstruction the stack came from (``None`` for bare
    stacks).  The whole object is JSON-serialisable via :meth:`to_json`;
    ``outcome["peaks"]`` returns the value of the first step with that op
    name.
    """

    results: List[Dict] = field(default_factory=list)
    run: Optional[Dict] = None

    # ------------------------------------------------------------------ #
    def op_names(self) -> List[str]:
        """Applied op names, in order."""
        return [record["op"] for record in self.results]

    @property
    def values(self) -> Dict[str, object]:
        """Mapping of op name to value (first occurrence wins on repeats)."""
        out: Dict[str, object] = {}
        for record in self.results:
            out.setdefault(record["op"], record["value"])
        return out

    def __getitem__(self, op_name: str):
        for record in self.results:
            if record["op"] == op_name:
                return record["value"]
        raise KeyError(f"op {op_name!r} is not part of this analysis; ran {self.op_names()}")

    def __contains__(self, op_name: str) -> bool:
        return any(record["op"] == op_name for record in self.results)

    # ------------------------------------------------------------------ #
    def provenance(self) -> Dict:
        """Chained provenance: the run's record plus the applied op sequence."""
        return {
            "repro_version": package_version(),
            "ops": [
                {"op": record["op"], "params": record["params"]} for record in self.results
            ],
            "run": self.run,
        }

    def to_dict(self) -> Dict:
        """JSON-safe record of the analysis (provenance plus every value)."""
        return {"provenance": self.provenance(), "results": list(self.results)}

    def to_json(self, indent: int = 2) -> str:
        """The analysis record as a JSON document (deterministic key order)."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Human-readable one-line-per-op summary."""
        lines = []
        for record in self.results:
            value = record["value"]
            shown = f"{len(value)} item(s)" if isinstance(value, list) else value
            lines.append(f"{record['op']}: {shown}")
        return "\n".join(lines)


@dataclass
class BatchAnalysisItem:
    """Outcome of one batch item's analysis."""

    input_path: str
    ok: bool
    analysis: Optional[AnalysisResult] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict:
        """JSON-safe record of this item."""
        return {
            "input_path": self.input_path,
            "ok": self.ok,
            "analysis": None if self.analysis is None else self.analysis.to_dict(),
            "error": self.error,
        }


@dataclass
class BatchAnalysisResult:
    """A pipeline fanned out over a batch, with per-item error capture."""

    items: List[BatchAnalysisItem] = field(default_factory=list)
    pipeline: List[Dict] = field(default_factory=list)

    @property
    def n_ok(self) -> int:
        """Items analysed successfully."""
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        """Items whose run or analysis failed."""
        return len(self.items) - self.n_ok

    @property
    def succeeded(self) -> List[BatchAnalysisItem]:
        """The successful items, in input order."""
        return [item for item in self.items if item.ok]

    @property
    def failed(self) -> List[BatchAnalysisItem]:
        """The failed items, in input order."""
        return [item for item in self.items if not item.ok]

    def to_dict(self) -> Dict:
        """JSON-safe record of the whole batch analysis."""
        return {
            "provenance": {"repro_version": package_version(), "ops": list(self.pipeline)},
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "items": [item.to_dict() for item in self.items],
        }

    def to_json(self, indent: int = 2) -> str:
        """The batch analysis record as a JSON document."""
        import json

        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# --------------------------------------------------------------------------- #
# the pipeline
@dataclass(frozen=True)
class AnalysisStep:
    """One named op plus its bound parameters (immutable)."""

    op: str
    params: Tuple[Tuple[str, object], ...] = ()

    @property
    def params_dict(self) -> Dict[str, object]:
        """The bound parameters as a plain dict."""
        return dict(self.params)

    def to_dict(self) -> Dict:
        """JSON-safe record of this step."""
        return {"op": self.op, "params": self.params_dict}

    def describe(self) -> str:
        """Short ``op(param=value, ...)`` rendering."""
        if not self.params:
            return self.op
        rendered = ", ".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.op}({rendered})"


class AnalysisPipeline:
    """An immutable chain of named analysis ops.

    Build with :func:`repro.analysis` (or :meth:`then`, which returns a
    **new** pipeline — pipelines fork and reuse freely, like sessions) and
    apply to a :class:`~repro.core.session.RunResult`, a bare
    :class:`~repro.core.result.DepthResolvedStack`, a
    :class:`~repro.core.session.BatchRunResult` (fan-out with per-item error
    capture) or a saved ``.h5lite`` run file.

    Every step is validated at construction time: unknown op names fail
    with a did-you-mean suggestion and unknown parameters fail against the
    op's signature — long before any data is touched.
    """

    __slots__ = ("_steps",)

    def __init__(self, steps: Tuple[AnalysisStep, ...] = ()):
        steps = tuple(steps)
        for step in steps:
            info = op_info(step.op)
            if info.kind != "run":
                raise ValidationError(
                    f"op {step.op!r} is a {info.kind} op (it consumes batch-level "
                    "inputs, not a single stack); linear pipelines chain per-run "
                    "ops only — build a DAG with repro.graph(...) and give it a "
                    f"node like {{'name': ..., 'op': {step.op!r}, 'inputs': [...]}}"
                )
            try:
                inspect.signature(info.func).bind(None, **step.params_dict)
            except TypeError as exc:
                raise ValidationError(
                    f"op {step.op!r} rejects parameters {sorted(step.params_dict)}: {exc}"
                ) from None
        self._steps = steps

    # ------------------------------------------------------------------ #
    @property
    def steps(self) -> Tuple[AnalysisStep, ...]:
        """The pipeline's steps, in application order."""
        return self._steps

    def then(self, op: str, **params) -> "AnalysisPipeline":
        """A new pipeline with *op* (and its parameters) appended.

        Parameters are normalized to plain JSON types immediately (NumPy
        scalars become Python numbers), so the recorded provenance and
        :meth:`AnalysisResult.to_json` can never trip over a parameter
        after the analysis already ran.
        """
        try:
            params = json_normalize(params)
        except H5LiteError as exc:
            raise ValidationError(f"op {op!r} parameters must be JSON-serialisable: {exc}") from None
        step = AnalysisStep(op=str(op), params=tuple(sorted(params.items())))
        return AnalysisPipeline(self._steps + (step,))

    def op_sequence(self) -> List[Dict]:
        """JSON-safe op sequence (the pipeline's provenance contribution)."""
        return [step.to_dict() for step in self._steps]

    def signature(self) -> str:
        """Stable SHA-256 of the op sequence (ops, order and parameters).

        Two pipelines share a signature exactly when they would produce the
        same analysis on the same stack; the result cache combines it with
        the run key to memoize :class:`AnalysisResult` records.  Parameters
        were JSON-normalized at :meth:`then` time, so the canonical dump
        below is deterministic.
        """
        import hashlib
        import json

        canonical = json.dumps(
            self.op_sequence(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(canonical).hexdigest()

    def describe(self) -> str:
        """Human-readable ``op → op → op`` chain."""
        return " → ".join(step.describe() for step in self._steps) or "<empty>"

    def __len__(self) -> int:
        return len(self._steps)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AnalysisPipeline({self.describe()})"

    # ------------------------------------------------------------------ #
    def apply(self, target):
        """Apply the pipeline to *target* and return the outcome.

        *target* may be a :class:`~repro.core.session.RunResult`, a
        :class:`~repro.core.result.DepthResolvedStack`, a
        :class:`~repro.core.session.BatchRunResult` or the path of a saved
        run file.  Batches return a :class:`BatchAnalysisResult` (per-item
        error capture); everything else returns an :class:`AnalysisResult`
        whose provenance chains the run's record with the op sequence.
        """
        from repro.core.session import BatchRunResult, RunResult

        if isinstance(target, BatchRunResult):
            return self._apply_batch(target)
        if isinstance(target, RunResult):
            return self._apply_stack(target.result, run=target.provenance())
        if isinstance(target, DepthResolvedStack):
            return self._apply_stack(target, run=None)
        if isinstance(target, (str, os.PathLike)):
            from repro.io.image_stack import load_run_payload

            stack, record = load_run_payload(target)
            if record is not None:
                # same shape as RunResult.provenance(): the full report stays
                # in the file, the provenance chain carries the summary
                record = {key: value for key, value in record.items() if key != "report"}
            return self._apply_stack(stack, run=record)
        raise ValidationError(
            "analysis pipelines apply to a RunResult, a DepthResolvedStack, a "
            f"BatchRunResult or a saved run file path, got {type(target).__name__}"
        )

    def _apply_stack(self, stack: DepthResolvedStack, run: Optional[Dict]) -> AnalysisResult:
        if not self._steps:
            raise ValidationError(
                "empty analysis pipeline; add ops with repro.analysis('peaks', ...) "
                "or .then('peaks')"
            )
        # Linear chains compile to a serial DAG: same ops, same order, raw
        # error propagation, and the record shape below is assembled here so
        # the AnalysisResult JSON (and therefore memo-cache signatures) are
        # byte-identical to the pre-DAG implementation.
        from repro.analysisgraph import compile_linear

        values = compile_linear(self).execute_chain(stack)
        results: List[Dict] = [
            {"op": step.op, "params": step.params_dict, "value": value}
            for step, value in zip(self._steps, values)
        ]
        return AnalysisResult(results=results, run=run)

    def _apply_batch(self, batch) -> BatchAnalysisResult:
        items: List[BatchAnalysisItem] = []
        for item in batch.items:
            if not item.ok:
                items.append(BatchAnalysisItem(
                    input_path=item.input_path, ok=False,
                    error=f"reconstruction failed: {item.error}",
                ))
                continue
            if item.run is not None:
                target = item.run
            elif item.result is not None:
                target = item.result
            elif item.output_path is not None:
                target = item.output_path
            else:
                items.append(BatchAnalysisItem(
                    input_path=item.input_path, ok=False,
                    error="no result available (batch ran with keep_results=False "
                          "and no output_dir)",
                ))
                continue
            try:
                outcome = self.apply(target)
            except Exception as exc:  # per-item isolation: record, don't abort
                items.append(BatchAnalysisItem(
                    input_path=item.input_path, ok=False,
                    error=f"{type(exc).__name__}: {exc}",
                ))
                continue
            items.append(BatchAnalysisItem(
                input_path=item.input_path, ok=True, analysis=outcome,
            ))
        return BatchAnalysisResult(items=items, pipeline=self.op_sequence())


def analysis(*specs) -> AnalysisPipeline:
    """Build an :class:`AnalysisPipeline` from op specs.

    Each spec is an op name, an ``(op_name, params_dict)`` pair or a
    ``{"op": ..., "params": {...}}`` dict::

        repro.analysis("peaks", "fwhm")
        repro.analysis(("peaks", {"min_relative_height": 0.2}), "depth_resolution")
        repro.analysis().then("peaks", min_separation_bins=4)
    """
    pipeline = AnalysisPipeline()
    for spec in specs:
        if isinstance(spec, str):
            pipeline = pipeline.then(spec)
        elif isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[1], dict):
            pipeline = pipeline.then(str(spec[0]), **spec[1])
        elif isinstance(spec, dict) and "op" in spec:
            pipeline = pipeline.then(str(spec["op"]), **(spec.get("params") or {}))
        else:
            raise ValidationError(
                f"invalid op spec {spec!r}; expected a name, (name, params) or "
                "{'op': name, 'params': {...}}"
            )
    return pipeline


def as_pipeline(value) -> AnalysisPipeline:
    """Coerce *value* into an :class:`AnalysisPipeline`.

    Accepts a prebuilt pipeline, a single op spec or a sequence of op specs
    (the ``Session.run(analyze=...)`` argument).
    """
    if isinstance(value, AnalysisPipeline):
        return value
    if isinstance(value, str) or (
        isinstance(value, tuple) and len(value) == 2 and isinstance(value[1], dict)
    ) or (isinstance(value, dict) and "op" in value):
        return analysis(value)
    if isinstance(value, (list, tuple)):
        return analysis(*value)
    raise ValidationError(
        f"cannot build an analysis pipeline from {type(value).__name__}; "
        "pass op names, (name, params) specs or an AnalysisPipeline"
    )


# --------------------------------------------------------------------------- #
# built-in ops (the former orphaned free functions, now first-class)
@register_op("peaks", description="local maxima of the integrated depth profile")
def _op_peaks(result: DepthResolvedStack, min_relative_height: float = 0.1,
              min_separation_bins: int = 2) -> List[Dict]:
    peaks = find_profile_peaks(
        result.integrated_profile(), result.grid,
        min_relative_height=min_relative_height,
        min_separation_bins=min_separation_bins,
    )
    return [dataclasses.asdict(peak) for peak in peaks]


@register_op("fwhm", description="FWHM of the brightest integrated-profile peak")
def _op_fwhm(result: DepthResolvedStack) -> Optional[float]:
    profile = result.integrated_profile()
    if profile.size == 0 or profile.max() <= 0:
        return None
    return profile_fwhm(profile, result.grid, int(np.argmax(profile)))


@register_op("grain_boundaries", description="grain-boundary depths from the integrated profile")
def _op_grain_boundaries(result: DepthResolvedStack, min_relative_change: float = 0.2,
                         smooth_bins: int = 3) -> List[float]:
    return detect_grain_boundaries(
        result, min_relative_change=min_relative_change, smooth_bins=smooth_bins
    ).tolist()


@register_op("depth_resolution", description="median per-pixel FWHM (resolution figure of merit)")
def _op_depth_resolution(result: DepthResolvedStack, min_signal_fraction: float = 0.1) -> float:
    return float(depth_resolution_estimate(result, min_signal_fraction=min_signal_fraction))


@register_op("total_intensity", description="sum of all depth-resolved intensity")
def _op_total_intensity(result: DepthResolvedStack) -> float:
    return float(result.total_intensity())


@register_op("integrated_profile", description="depth-bin centres and detector-integrated intensity")
def _op_integrated_profile(result: DepthResolvedStack) -> Dict[str, List[float]]:
    return {
        "depth_um": result.grid.centers.tolist(),
        "intensity": result.integrated_profile().tolist(),
    }

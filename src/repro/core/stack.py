"""The input data model: a stack of wire-scan detector images.

``WireScanStack`` bundles the intensity cube with the geometry needed to
reconstruct it (wire scan trajectory, detector, beam).  It mirrors what the
original pipeline reads from an HDF5 file: one detector image per wire
position plus positioner metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.scan import WireScan
from repro.utils.validation import ValidationError

__all__ = ["WireScanStack"]


@dataclass
class WireScanStack:
    """A wire-scan measurement: one detector image per wire position.

    Parameters
    ----------
    images:
        Intensity cube of shape ``(n_positions, n_rows, n_cols)``; the first
        axis follows the wire-scan order.
    scan:
        The wire scan trajectory (``scan.n_points`` must equal the first
        image axis).
    detector:
        Detector geometry (``detector.shape`` must match the image shape).
    beam:
        Incident beam; defines the depth axis.
    pixel_mask:
        Optional boolean mask of shape ``(n_rows, n_cols)``; ``False`` pixels
        are skipped by the reconstruction.  This is how the paper's
        "pixel percentage" experiments (Figs. 4 and 9) restrict the workload.
    metadata:
        Free-form metadata dictionary carried through the pipeline.
    """

    images: np.ndarray
    scan: WireScan
    detector: Detector
    beam: Beam = field(default_factory=Beam)
    pixel_mask: Optional[np.ndarray] = None
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self):
        self._diff_cache: Optional[np.ndarray] = None
        self.images = np.asarray(self.images, dtype=np.float64)
        if self.images.ndim != 3:
            raise ValidationError(
                f"images must have shape (n_positions, n_rows, n_cols), got {self.images.shape}"
            )
        n_pos, n_rows, n_cols = self.images.shape
        if n_pos != self.scan.n_points:
            raise ValidationError(
                f"images first axis ({n_pos}) must equal the number of wire positions "
                f"({self.scan.n_points})"
            )
        if (n_rows, n_cols) != self.detector.shape:
            raise ValidationError(
                f"image shape {(n_rows, n_cols)} does not match detector shape {self.detector.shape}"
            )
        if self.pixel_mask is not None:
            self.pixel_mask = np.asarray(self.pixel_mask, dtype=bool)
            if self.pixel_mask.shape != (n_rows, n_cols):
                raise ValidationError(
                    f"pixel_mask shape {self.pixel_mask.shape} does not match detector shape "
                    f"{self.detector.shape}"
                )

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int, int]:
        """``(n_positions, n_rows, n_cols)``."""
        return tuple(self.images.shape)

    @property
    def n_positions(self) -> int:
        """Number of wire positions (images)."""
        return self.images.shape[0]

    @property
    def n_steps(self) -> int:
        """Number of adjacent-image differences available."""
        return self.images.shape[0] - 1

    @property
    def n_rows(self) -> int:
        """Detector rows."""
        return self.images.shape[1]

    @property
    def n_cols(self) -> int:
        """Detector columns."""
        return self.images.shape[2]

    @property
    def nbytes(self) -> int:
        """Size of the intensity cube in bytes."""
        return int(self.images.nbytes)

    @property
    def active_pixel_fraction(self) -> float:
        """Fraction of pixels enabled by the mask (1.0 when no mask is set)."""
        if self.pixel_mask is None:
            return 1.0
        return float(np.count_nonzero(self.pixel_mask)) / self.pixel_mask.size

    # ------------------------------------------------------------------ #
    def effective_mask(self) -> np.ndarray:
        """Boolean mask of processed pixels (all-true when no mask is set)."""
        if self.pixel_mask is None:
            return np.ones((self.n_rows, self.n_cols), dtype=bool)
        return self.pixel_mask.copy()

    def differences(self, cached: bool = False) -> np.ndarray:
        """Adjacent-position intensity differences ``I[i] - I[i+1]``.

        Shape ``(n_steps, n_rows, n_cols)``.  This is the signal the depth
        reconstruction distributes into the depth histogram.

        With ``cached=True`` the cube is computed once and a read-only view
        of the memoised copy is returned — callers that only inspect it
        (active-element accounting, repeated backend comparisons) avoid
        recomputing the full cube, at the price of keeping it alive.
        """
        if not cached:
            return self.images[:-1] - self.images[1:]
        if self._diff_cache is None:
            diff = self.images[:-1] - self.images[1:]
            diff.setflags(write=False)
            self._diff_cache = diff
        return self._diff_cache

    def with_pixel_mask(self, mask: Optional[np.ndarray]) -> "WireScanStack":
        """Return a copy of this stack with a different pixel mask."""
        return WireScanStack(
            images=self.images,
            scan=self.scan,
            detector=self.detector,
            beam=self.beam,
            pixel_mask=mask,
            metadata=dict(self.metadata),
        )

    def row_slice(self, start: int, stop: int) -> "WireScanStack":
        """Return a stack restricted to detector rows ``start:stop``.

        Used by the row-chunk streaming backends and by the multiprocessing
        backend to partition work.
        """
        if not (0 <= start < stop <= self.n_rows):
            raise ValidationError(f"invalid row slice [{start}, {stop}) for {self.n_rows} rows")
        sub_detector = self.detector.row_window(start, stop)
        return WireScanStack(
            images=self.images[:, start:stop, :],
            scan=self.scan,
            detector=sub_detector,
            beam=self.beam,
            pixel_mask=None if self.pixel_mask is None else self.pixel_mask[start:stop, :],
            metadata=dict(self.metadata),
        )

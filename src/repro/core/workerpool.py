"""Persistent worker-pool lifecycle and the shared-memory slab arena.

Host parallelism used to pay two taxes the paper's "embarrassingly parallel
across pixels" argument says it should not:

* every run created (and tore down) its own ``ProcessPoolExecutor``, so a
  multi-file batch paid pool start-up once **per file**;
* every row band was deep-copied and pickled into the pool and the partial
  cube pickled back, so dispatch cost scaled with the cube size.

This module owns the fixes for both:

:class:`WorkerPool`
    A lazily created, fork-safe, reusable wrapper around
    ``ProcessPoolExecutor``.  The pool object survives across runs; the
    underlying executor is (re)spawned on first use, after a ``fork()`` (a
    pool inherited from a parent process must never be reused — its worker
    processes belong to the parent), and after a worker crash marks it
    broken.

:func:`shared_pool` / :func:`shutdown_shared_pool`
    The session-wide pool every multiprocess run reuses.  Requesting a
    different worker count respawns it unless :func:`pool` has pinned it.

:func:`pool`
    The public context manager (``repro.pool``): pre-spawns the workers,
    pins the pool for the duration of the block (so runs with differing
    ``n_workers`` keep sharing it), and tears it down deterministically on
    exit of the outermost block.

:class:`SlabArena`
    A pool of reusable ``multiprocessing.shared_memory`` segments.  The
    multiprocess executor leases one input and one output slab per in-flight
    chunk, workers map them by name (zero pickling of image or output
    cubes), and the arena recycles segments across chunks so a long streamed
    run allocates only ``O(max_inflight)`` segments.  ``close()`` unlinks
    everything — leased or free — so a run that dies mid-flight leaks
    nothing.
"""

from __future__ import annotations

import atexit
import os
import threading
import weakref
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor, ThreadPoolExecutor
from contextlib import contextmanager
from multiprocessing import shared_memory
from typing import Dict, List, Optional

from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = [
    "BLAS_ENV_VARS",
    "WorkerPool",
    "ThreadPool",
    "SlabArena",
    "attach_slab",
    "pin_blas_threads",
    "pool",
    "shared_pool",
    "shutdown_shared_pool",
    "shared_thread_pool",
    "shutdown_shared_thread_pool",
    "pools_snapshot",
    "shutdown_all",
    "default_worker_count",
]

_LOG = get_logger(__name__)

#: Environment knobs the common BLAS/OpenMP runtimes read for their internal
#: thread counts.  Worker processes and benchmark harnesses pin these to 1:
#: the parallelism budget belongs to *our* workers, and a BLAS that silently
#: spawns its own threads per worker oversubscribes the host and corrupts
#: every scaling measurement.
BLAS_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
)


def pin_blas_threads(n_threads: int = 1) -> Dict[str, Optional[str]]:
    """Pin the BLAS/OpenMP thread-count environment knobs to *n_threads*.

    Returns the previous values (``None`` for variables that were unset) so a
    caller can restore them.  Environment variables are read by most BLAS
    runtimes at library-load time, so the pin is authoritative in processes
    that set it before importing numpy — which is exactly what the worker
    initializer does (workers fork/spawn before their first kernel import
    path runs) — and best-effort in an already-running parent; for the
    latter, :mod:`threadpoolctl` is applied on top when it is installed.
    """
    if int(n_threads) < 1:
        raise ValidationError("n_threads must be >= 1")
    previous: Dict[str, Optional[str]] = {}
    for name in BLAS_ENV_VARS:
        previous[name] = os.environ.get(name)
        os.environ[name] = str(int(n_threads))
    try:  # pragma: no cover - optional dependency
        import threadpoolctl

        threadpoolctl.threadpool_limits(limits=int(n_threads))
    except Exception:
        pass
    return previous


def _pin_worker_blas(n_threads: int) -> None:
    """Process-pool initializer: pin BLAS threading inside each worker."""
    pin_blas_threads(n_threads)


def default_worker_count() -> int:
    """Worker count used by ``repro.pool()`` when none is given.

    One process per CPU, floored at two so the pooled path is exercised even
    on single-core machines (where the win is pool reuse and zero-copy
    dispatch, not concurrency).
    """
    return max(2, os.cpu_count() or 1)


def _noop() -> None:
    """Warm-up task: forces the executor to actually fork its workers."""


class WorkerPool:
    """A lazily created, fork-safe, reusable process pool.

    The wrapper object is cheap and long-lived; the expensive
    ``ProcessPoolExecutor`` underneath is created on first :meth:`submit`
    and transparently respawned when it cannot be reused:

    * after ``os.fork()`` — the executor's processes and queues belong to
      the parent, so the child lazily re-initialises its own;
    * after a worker death (``BrokenProcessPool``) reported via
      :meth:`mark_broken`.

    ``n_spawns`` counts how many executors were ever created — the pool
    reuse benchmarks assert it stays at one across many runs.
    """

    def __init__(self, max_workers: int, blas_threads: Optional[int] = 1):
        if int(max_workers) < 1:
            raise ValidationError("max_workers must be >= 1")
        if blas_threads is not None and int(blas_threads) < 1:
            raise ValidationError("blas_threads must be >= 1 when given")
        self.max_workers = int(max_workers)
        #: BLAS/OpenMP thread count pinned inside each worker process (None
        #: leaves the workers' inherited environment untouched)
        self.blas_threads = None if blas_threads is None else int(blas_threads)
        self._executor: Optional[ProcessPoolExecutor] = None
        self._pid: Optional[int] = None
        self._broken = False
        self._lock = threading.Lock()
        #: number of ProcessPoolExecutor spawns over this pool's lifetime
        self.n_spawns = 0
        #: number of tasks ever submitted (accounting for tests/benchmarks)
        self.n_submitted = 0
        #: tasks submitted but not yet finished (utilization snapshots)
        self._n_active = 0

    # ------------------------------------------------------------------ #
    @property
    def alive(self) -> bool:
        """True when the underlying executor exists and is usable from this process."""
        return (
            self._executor is not None
            and self._pid == os.getpid()
            and not self._broken
        )

    def _ensure(self) -> ProcessPoolExecutor:
        """The usable executor, (re)spawned if absent, forked-over or broken."""
        with self._lock:
            if not self.alive:
                if self._executor is not None and self._pid == os.getpid():
                    # broken executor in this process: reap it.  wait=True is
                    # cheap (its workers are already dead) and deterministic —
                    # queued futures are cancelled before the respawn below
                    self._executor.shutdown(wait=True, cancel_futures=True)
                # after fork() the inherited executor is abandoned, not shut
                # down: its processes belong to the parent
                if self.blas_threads is None:
                    self._executor = ProcessPoolExecutor(max_workers=self.max_workers)
                else:
                    self._executor = ProcessPoolExecutor(
                        max_workers=self.max_workers,
                        initializer=_pin_worker_blas,
                        initargs=(self.blas_threads,),
                    )
                self._pid = os.getpid()
                self._broken = False
                self.n_spawns += 1
                _LOG.debug(
                    "workerpool: spawned executor #%d (%d workers, pid %d)",
                    self.n_spawns, self.max_workers, self._pid,
                )
            return self._executor

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Submit a task, respawning the executor once if it turned out broken."""
        with self._lock:
            self.n_submitted += 1
        try:
            future = self._ensure().submit(fn, *args, **kwargs)
        except (BrokenExecutor, RuntimeError):
            # broken (worker died between runs) or shut down concurrently:
            # one respawn attempt, then let the error surface
            self.mark_broken()
            future = self._ensure().submit(fn, *args, **kwargs)
        self._track(future)
        return future

    def _track(self, future: Future) -> None:
        """Count *future* as active until it resolves (for :meth:`utilization`)."""
        with self._lock:
            self._n_active += 1
        future.add_done_callback(self._untrack)

    def _untrack(self, _future: Future) -> None:
        with self._lock:
            self._n_active -= 1

    @property
    def n_active(self) -> int:
        """Tasks submitted and not yet finished."""
        return self._n_active

    def utilization(self) -> Dict:
        """JSON-safe snapshot of pool state and load.

        The structured attribute-free surface long-lived consumers (the
        ``repro-serve`` ``/metrics`` endpoint) poll: current busy fraction
        next to the lifetime spawn/submit counters.  ``busy`` counts tasks
        in flight (queued or executing), so ``utilization`` can exceed 1.0
        when the submit rate outruns the workers — exactly the saturation
        signal a serving layer wants to expose.
        """
        with self._lock:
            active = self._n_active
        return {
            "kind": "processes",
            "max_workers": self.max_workers,
            "alive": self.alive,
            "busy": active,
            "utilization": active / self.max_workers,
            "n_spawns": self.n_spawns,
            "n_submitted": self.n_submitted,
        }

    def warm(self) -> "WorkerPool":
        """Fork the workers now (instead of on first real task) and return self."""
        executor = self._ensure()
        for future in [executor.submit(_noop) for _ in range(self.max_workers)]:
            future.result()
        return self

    def mark_broken(self) -> None:
        """Record that the executor lost a worker; the next use respawns it."""
        with self._lock:
            self._broken = True

    def shutdown(self, wait: bool = True) -> None:
        """Shut the underlying executor down (the wrapper stays reusable).

        The executor reference is held through the ``shutdown`` call:
        dropping it first would leave the cancel-pending-futures flag to a
        manager thread that only holds a weakref, turning cancellation into
        a garbage-collection accident.
        """
        with self._lock:
            executor = self._executor if self._pid == os.getpid() else None
            self._executor = None
            self._pid = None
            self._broken = False
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "idle"
        return f"WorkerPool(max_workers={self.max_workers}, {state}, spawns={self.n_spawns})"


class ThreadPool:
    """A lazily created, reusable thread pool — the in-process twin of
    :class:`WorkerPool`.

    Backs the ``threads`` executor strategy: the fused numpy kernels spend
    their time inside GIL-releasing ufunc loops, so threads parallelise them
    without process dispatch, pickling or shared-memory round-trips.  Threads
    do not survive ``fork()`` (only the calling thread exists in the child),
    so like :class:`WorkerPool` the executor is respawned when it was created
    in another process.
    """

    def __init__(self, max_workers: int):
        if int(max_workers) < 1:
            raise ValidationError("max_workers must be >= 1")
        self.max_workers = int(max_workers)
        self._executor: Optional[ThreadPoolExecutor] = None
        self._pid: Optional[int] = None
        self._lock = threading.Lock()
        #: number of ThreadPoolExecutor spawns over this pool's lifetime
        self.n_spawns = 0
        #: number of tasks ever submitted
        self.n_submitted = 0
        #: tasks submitted but not yet finished (utilization snapshots)
        self._n_active = 0

    @property
    def alive(self) -> bool:
        """True when the underlying executor exists and belongs to this process."""
        return self._executor is not None and self._pid == os.getpid()

    def _ensure(self) -> ThreadPoolExecutor:
        with self._lock:
            if not self.alive:
                self._executor = ThreadPoolExecutor(
                    max_workers=self.max_workers, thread_name_prefix="repro-worker"
                )
                self._pid = os.getpid()
                self.n_spawns += 1
                _LOG.debug(
                    "workerpool: spawned thread executor #%d (%d threads, pid %d)",
                    self.n_spawns, self.max_workers, self._pid,
                )
            return self._executor

    def submit(self, fn, /, *args, **kwargs) -> Future:
        """Submit a task, respawning the executor if it was shut down."""
        with self._lock:
            self.n_submitted += 1
        try:
            future = self._ensure().submit(fn, *args, **kwargs)
        except RuntimeError:
            # shut down concurrently: one respawn attempt, then surface
            with self._lock:
                self._executor = None
            future = self._ensure().submit(fn, *args, **kwargs)
        with self._lock:
            self._n_active += 1
        future.add_done_callback(self._untrack)
        return future

    def _untrack(self, _future: Future) -> None:
        with self._lock:
            self._n_active -= 1

    @property
    def n_active(self) -> int:
        """Tasks submitted and not yet finished."""
        return self._n_active

    def utilization(self) -> Dict:
        """JSON-safe snapshot of pool state and load (see :meth:`WorkerPool.utilization`)."""
        with self._lock:
            active = self._n_active
        return {
            "kind": "threads",
            "max_workers": self.max_workers,
            "alive": self.alive,
            "busy": active,
            "utilization": active / self.max_workers,
            "n_spawns": self.n_spawns,
            "n_submitted": self.n_submitted,
        }

    def shutdown(self, wait: bool = True) -> None:
        """Shut the underlying executor down (the wrapper stays reusable)."""
        with self._lock:
            executor = self._executor if self._pid == os.getpid() else None
            self._executor = None
            self._pid = None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "alive" if self.alive else "idle"
        return f"ThreadPool(max_workers={self.max_workers}, {state}, spawns={self.n_spawns})"


# --------------------------------------------------------------------------- #
# the session-wide shared pool
_shared: Optional[WorkerPool] = None
_shared_lock = threading.Lock()
_pins = 0
#: separate from _shared_lock: _register_atexit is called from both pool
#: constructors, whose callers may already hold the respective pool lock
_atexit_lock = threading.Lock()
_atexit_registered = False

#: every not-yet-closed SlabArena, swept at interpreter exit so no /dev/shm
#: segment outlives the process even when a run never reached its close()
_open_arenas: "weakref.WeakSet[SlabArena]" = weakref.WeakSet()


def _close_open_arenas() -> None:
    """Unlink every surviving arena's segments (idempotent, exit-safe).

    Runs at interpreter exit *before* :func:`shutdown_shared_pool`
    (atexit is LIFO and both hooks register together): names disappear
    first, then the pool teardown reaps the workers — whose own mappings
    stay valid until they exit, exactly like an unlinked open file.
    """
    for arena in list(_open_arenas):
        arena.close()


def _register_atexit() -> None:
    global _atexit_registered
    with _atexit_lock:
        if not _atexit_registered:
            atexit.register(shutdown_shared_pool)
            atexit.register(shutdown_shared_thread_pool)
            atexit.register(_close_open_arenas)
            _atexit_registered = True


def _shared_pool_locked(n_workers: int, blas_threads: Optional[int] = 1) -> WorkerPool:
    """Body of :func:`shared_pool`; caller must hold ``_shared_lock``."""
    global _shared
    if int(n_workers) < 1:
        raise ValidationError("n_workers must be >= 1")
    _register_atexit()
    blas = None if blas_threads is None else int(blas_threads)
    if _shared is None:
        # process-lifetime pool: released by the atexit hook registered above
        _shared = WorkerPool(int(n_workers), blas_threads=blas)  # repro-lint: ignore[resource-lifecycle]
    elif (
        _shared.max_workers != int(n_workers) or _shared.blas_threads != blas
    ) and _pins == 0:
        # wait=True: the resize must not strand queued work on orphaned
        # workers, nor surface a surprise CancelledError in a run that
        # is still draining its futures
        _shared.shutdown(wait=True)
        # same process-lifetime ownership as the branch above
        _shared = WorkerPool(int(n_workers), blas_threads=blas)  # repro-lint: ignore[resource-lifecycle]
    return _shared


def shared_pool(n_workers: int, blas_threads: Optional[int] = 1) -> WorkerPool:
    """The process pool every multiprocess run reuses.

    Created lazily on first request and kept alive across runs and files; a
    request for a *different* worker count (or BLAS pin) respawns it — unless
    a :func:`pool` context has pinned it, in which case the pinned pool is
    returned as-is (the executor partitions its row bands independently of
    the pool width, so any pool size serves any run).
    """
    with _shared_lock:
        return _shared_pool_locked(n_workers, blas_threads)


def shutdown_shared_pool() -> None:
    """Tear down the shared pool (benchmarks use this to measure cold starts)."""
    global _shared
    with _shared_lock:
        if _shared is not None:
            _shared.shutdown(wait=True)
            _shared = None


# --------------------------------------------------------------------------- #
# the session-wide shared thread pool (the ``threads`` executor strategy)
_shared_threads: Optional[ThreadPool] = None
_shared_threads_lock = threading.Lock()


def shared_thread_pool(n_workers: int) -> ThreadPool:
    """The thread pool every threaded-executor run reuses.

    Mirrors :func:`shared_pool`: created lazily, kept alive across runs, and
    respawned when a different worker count is requested.  Thread start-up is
    microseconds (not a process fork), so there is no pinning mechanism — the
    resize is always cheap.
    """
    global _shared_threads
    if int(n_workers) < 1:
        raise ValidationError("n_workers must be >= 1")
    _register_atexit()
    with _shared_threads_lock:
        if _shared_threads is None:
            _shared_threads = ThreadPool(int(n_workers))
        elif _shared_threads.max_workers != int(n_workers):
            _shared_threads.shutdown(wait=True)
            _shared_threads = ThreadPool(int(n_workers))
        return _shared_threads


def shutdown_shared_thread_pool() -> None:
    """Tear down the shared thread pool."""
    global _shared_threads
    with _shared_threads_lock:
        if _shared_threads is not None:
            _shared_threads.shutdown(wait=True)
            _shared_threads = None


def pools_snapshot() -> Dict:
    """Utilization of the shared pools (``None`` for one never spawned).

    One structured read for monitoring surfaces — the ``repro-serve``
    ``/metrics`` endpoint polls this instead of reaching into module
    globals.
    """
    with _shared_lock:
        process_pool = _shared
    with _shared_threads_lock:
        thread_pool = _shared_threads
    return {
        "process_pool": None if process_pool is None else process_pool.utilization(),
        "thread_pool": None if thread_pool is None else thread_pool.utilization(),
    }


def shutdown_all() -> None:
    """Tear down every shared resource: arenas first, then both pools.

    Idempotent by construction — every step tolerates already-gone state —
    because long-lived processes genuinely run it twice: the ``repro-serve``
    daemon calls it at the end of a SIGTERM drain, and the atexit hooks
    (registered the moment any pool or arena existed) run the same
    teardown again at interpreter exit.  The order mirrors the atexit
    (LIFO) order: segment names disappear first, then the pools reap their
    workers, whose own mappings stay valid until they exit.
    """
    _close_open_arenas()
    shutdown_shared_pool()
    shutdown_shared_thread_pool()


@contextmanager
def pool(workers: Optional[int] = None, blas_threads: Optional[int] = 1):
    """Keep one pre-spawned worker pool alive for a block of runs.

    ::

        with repro.pool(4):
            for path in paths:
                repro.session(grid=grid, backend="multiprocess").run(path)

    Entering spawns (and warms) the shared pool at *workers* processes and
    pins it: every multiprocess run inside the block reuses it regardless of
    its own ``n_workers``.  Exiting the outermost block shuts the pool down
    deterministically.  Outside any ``pool()`` block the engine still reuses
    a lazily created shared pool across runs; it is closed at interpreter
    exit.

    ``blas_threads`` pins the BLAS/OpenMP thread count inside each worker
    process (default 1, so the parallelism budget belongs to the workers);
    pass ``None`` to leave the workers' inherited threading untouched, or a
    larger count to deliberately give each worker a nested thread budget.
    """
    global _pins
    if workers is None:
        workers = default_worker_count()
    # acquire and pin under ONE lock hold: a concurrent resize sneaking in
    # between them would hand this context a just-shut-down pool and let its
    # exit later tear down the replacement out from under other threads
    with _shared_lock:
        active = _shared_pool_locked(int(workers), blas_threads)
        _pins += 1
    try:
        active.warm()
        yield active
    finally:
        with _shared_lock:
            _pins -= 1
            last_out = _pins == 0
        if last_out:
            shutdown_shared_pool()


# --------------------------------------------------------------------------- #
# shared-memory slab arena
class SlabArena:
    """Reusable ``multiprocessing.shared_memory`` segments for zero-copy dispatch.

    ``lease(nbytes)`` hands out a segment (recycling a previously released
    one of the same size when available), ``release(shm)`` returns it to the
    free list, and ``close()`` unlinks every segment this arena ever holds —
    leased or free — so no ``/dev/shm`` entry survives the run, even when a
    chunk raised or a worker was killed mid-flight.  Workers attach by name
    and only ever ``close()`` their mapping; the arena is the sole owner of
    ``unlink()``.
    """

    def __init__(self):
        self._free: Dict[int, List[shared_memory.SharedMemory]] = {}
        self._leased: Dict[str, shared_memory.SharedMemory] = {}
        self._size_of: Dict[str, int] = {}
        self._lock = threading.Lock()
        self._closed = False
        #: names of every segment ever created (leak tests probe these)
        self.created_names: List[str] = []
        #: segments created over the arena lifetime (recycling keeps it small)
        self.n_created = 0
        #: peak number of simultaneously leased segments
        self.peak_leased = 0
        # exit-safety net: arenas that never reach an explicit close() (a run
        # aborted outside the engine's finally, a leaked executor) are swept
        # by the atexit hook, so /dev/shm segments cannot outlive the process
        _register_atexit()
        _open_arenas.add(self)

    # ------------------------------------------------------------------ #
    @property
    def n_leased(self) -> int:
        """Segments currently out on lease."""
        return len(self._leased)

    @property
    def closed(self) -> bool:
        """True once :meth:`close` ran (every segment unlinked)."""
        return self._closed

    def lease(self, nbytes: int) -> shared_memory.SharedMemory:
        """A shared-memory segment of at least *nbytes* (recycled when possible)."""
        if int(nbytes) < 1:
            raise ValidationError("cannot lease an empty shared-memory slab")
        with self._lock:
            if self._closed:
                raise ValidationError("SlabArena is closed")
            bucket = self._free.get(int(nbytes))
            if bucket:
                shm = bucket.pop()
            else:
                # arena-tracked: release()/close() unlink it, and the atexit
                # sweep in _close_open_arenas covers abandoned arenas
                shm = shared_memory.SharedMemory(create=True, size=int(nbytes))  # repro-lint: ignore[resource-lifecycle]
                self.n_created += 1
                self.created_names.append(shm.name)
                self._size_of[shm.name] = int(nbytes)
            self._leased[shm.name] = shm
            self.peak_leased = max(self.peak_leased, len(self._leased))
            return shm

    def release(self, shm: shared_memory.SharedMemory) -> None:
        """Return a leased segment for reuse (unlinked instead if closed)."""
        with self._lock:
            if shm.name not in self._leased:
                return
            del self._leased[shm.name]
            if self._closed:
                destroy = True
            else:
                self._free.setdefault(self._size_of[shm.name], []).append(shm)
                destroy = False
        if destroy:
            _destroy_segment(shm)

    def close(self) -> None:
        """Unlink every segment; idempotent and safe mid-failure.

        Segments still mapped by a straggling (cancelled or crashed) worker
        stay readable through that worker's mapping until it exits — unlink
        only removes the name, exactly like unlinking an open file.
        """
        with self._lock:
            if self._closed:
                segments: List[shared_memory.SharedMemory] = []
            else:
                segments = list(self._leased.values())
                segments.extend(s for bucket in self._free.values() for s in bucket)
                self._leased.clear()
                self._free.clear()
            self._closed = True
        _open_arenas.discard(self)
        for shm in segments:
            _destroy_segment(shm)


def attach_slab(name: str) -> shared_memory.SharedMemory:
    """Attach to an arena segment from a worker process, without tracking it.

    ``SharedMemory(name=...)`` registers the segment with the attaching
    process's resource tracker even though the worker does not own it
    (CPython gh-82300).  Depending on fork timing the worker either shares
    the parent's tracker (a later ``unregister`` would race the arena's own
    book-keeping) or runs its own (which then warns about — and tries to
    unlink — "leaked" segments that are simply the arena's).  Suppressing
    the registration message during the attach sidesteps both: the creating
    arena remains the sole owner of ``unlink()``, workers only map and
    close.  Workers are single-threaded, so the brief patch cannot race.
    """
    from multiprocessing import resource_tracker

    original_register = resource_tracker.register

    def _register_except_shm(res_name, rtype):  # pragma: no cover - trivial shim
        if rtype != "shared_memory":
            original_register(res_name, rtype)

    resource_tracker.register = _register_except_shm
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original_register


def _destroy_segment(shm: shared_memory.SharedMemory) -> None:
    """Close our mapping (tolerating live ndarray views) and unlink the name."""
    try:
        shm.close()
    except BufferError:
        # an ndarray view of the last-yielded partial may still be alive in
        # the engine's loop frame; the mapping dies with the view, and the
        # unlink below is what prevents the leak
        pass
    try:
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass

"""Post-reconstruction analysis of depth-resolved stacks.

The depth-resolved stack is rarely the end product: the 34-ID analyses derive
grain boundaries, layer thicknesses and depth-resolution figures of merit
from the per-pixel depth profiles.  This module provides those small,
well-tested building blocks so that the examples and downstream users do not
have to re-implement them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.depth_grid import DepthGrid
from repro.core.result import DepthResolvedStack
from repro.utils.validation import ValidationError

__all__ = [
    "ProfilePeak",
    "find_profile_peaks",
    "profile_fwhm",
    "detect_grain_boundaries",
    "depth_resolution_estimate",
]


@dataclass(frozen=True)
class ProfilePeak:
    """One peak found in a depth profile."""

    depth: float
    height: float
    bin_index: int
    fwhm: Optional[float] = None


def find_profile_peaks(
    profile: np.ndarray,
    grid: DepthGrid,
    min_relative_height: float = 0.1,
    min_separation_bins: int = 2,
) -> List[ProfilePeak]:
    """Find local maxima of a depth profile.

    Parameters
    ----------
    profile:
        Intensity per depth bin, shape ``(grid.n_bins,)``.
    grid:
        The depth grid the profile is defined on.
    min_relative_height:
        Peaks lower than this fraction of the global maximum are ignored.
    min_separation_bins:
        Smaller peaks closer than this to an accepted peak are suppressed.
    """
    profile = np.asarray(profile, dtype=np.float64)
    if profile.shape != (grid.n_bins,):
        raise ValidationError(f"profile must have shape ({grid.n_bins},), got {profile.shape}")
    if profile.size < 3 or profile.max() <= 0:
        return []
    if profile.max() == profile.min():
        # a perfectly flat profile has no peaks (without this, the open
        # right-boundary condition would nominate the last bin)
        return []
    threshold = min_relative_height * profile.max()

    candidates = []
    for k in range(profile.size):
        left = profile[k - 1] if k > 0 else -np.inf
        right = profile[k + 1] if k < profile.size - 1 else -np.inf
        if profile[k] >= threshold and profile[k] >= left and profile[k] > right:
            candidates.append(k)

    # non-maximum suppression by separation
    accepted: List[int] = []
    for k in sorted(candidates, key=lambda i: -profile[i]):
        if all(abs(k - other) >= min_separation_bins for other in accepted):
            accepted.append(k)

    peaks = [
        ProfilePeak(
            depth=float(grid.index_to_depth(k)),
            height=float(profile[k]),
            bin_index=int(k),
            fwhm=profile_fwhm(profile, grid, k),
        )
        for k in sorted(accepted)
    ]
    return peaks


def profile_fwhm(profile: np.ndarray, grid: DepthGrid, peak_index: int) -> Optional[float]:
    """Full width at half maximum of the peak at *peak_index* (linear interpolation).

    Returns ``None`` when either half-maximum crossing lies outside the grid.
    """
    profile = np.asarray(profile, dtype=np.float64)
    if not (0 <= peak_index < profile.size):
        raise ValidationError("peak_index out of range")
    half = profile[peak_index] / 2.0
    if half <= 0:
        return None

    left = None
    for k in range(peak_index, 0, -1):
        if profile[k - 1] <= half <= profile[k]:
            frac = (profile[k] - half) / max(profile[k] - profile[k - 1], 1e-300)
            left = grid.index_to_depth(k) - frac * grid.step
            break
    right = None
    for k in range(peak_index, profile.size - 1):
        if profile[k + 1] <= half <= profile[k]:
            frac = (profile[k] - half) / max(profile[k] - profile[k + 1], 1e-300)
            right = grid.index_to_depth(k) + frac * grid.step
            break
    if left is None or right is None:
        return None
    return float(right - left)


def detect_grain_boundaries(
    result: DepthResolvedStack,
    min_relative_change: float = 0.2,
    smooth_bins: int = 3,
) -> np.ndarray:
    """Estimate grain-boundary depths from the integrated depth profile.

    A boundary shows up as a local extremum of the derivative of the
    (smoothed) integrated profile — intensity shifts from one grain's spots to
    the next as the depth crosses the boundary.  Returns the estimated
    boundary depths (possibly empty).
    """
    profile = result.integrated_profile()
    grid = result.grid
    if grid.n_bins < 2:
        # a single-voxel grid has no interior bins to host a boundary (and
        # np.gradient needs at least two samples)
        return np.array([])
    if smooth_bins > 1:
        kernel = np.ones(smooth_bins) / smooth_bins
        profile = np.convolve(profile, kernel, mode="same")
    derivative = np.gradient(profile, grid.step)
    if np.all(derivative == 0):
        return np.array([])
    threshold = min_relative_change * np.max(np.abs(derivative))

    boundaries = []
    for k in range(1, grid.n_bins - 1):
        is_extremum = (
            abs(derivative[k]) >= threshold
            and abs(derivative[k]) >= abs(derivative[k - 1])
            and abs(derivative[k]) > abs(derivative[k + 1])
        )
        if is_extremum:
            boundaries.append(float(grid.index_to_depth(k)))
    return np.asarray(boundaries)


def depth_resolution_estimate(result: DepthResolvedStack, min_signal_fraction: float = 0.1) -> float:
    """Median FWHM of the per-pixel depth profiles (a depth-resolution figure of merit).

    Only pixels carrying at least *min_signal_fraction* of the brightest
    pixel's signal are considered (``0.0`` admits every pixel, ``1.0`` only
    the brightest); raises if no pixel qualifies or no FWHM is measurable.
    """
    if not (0.0 <= float(min_signal_fraction) <= 1.0):
        raise ValidationError(
            f"min_signal_fraction must lie in [0, 1], got {min_signal_fraction}"
        )
    totals = result.data.sum(axis=0)
    if totals.max() <= 0:
        raise ValidationError("the depth-resolved stack contains no signal")
    bright_rows, bright_cols = np.nonzero(totals >= min_signal_fraction * totals.max())
    widths = []
    for row, col in zip(bright_rows, bright_cols):
        profile = result.depth_profile(row, col)
        peak = int(np.argmax(profile))
        fwhm = profile_fwhm(profile, result.grid, peak)
        if fwhm is not None:
            widths.append(fwhm)
    if not widths:
        raise ValidationError("no pixel produced a measurable depth-profile width")
    return float(np.median(widths))

"""The depth-reconstruction kernel bodies.

This module is the Python analogue of the paper's ``setTwo`` CUDA kernel and
the device functions it calls.  Two equivalent forms are provided:

``depth_resolve_element``
    The per-thread body: one (column, row, wire-step) triple, written with
    scalar ``math`` operations in the same sequence as the CUDA code
    (compute the four critical depths for the pixel's back/front edges at the
    two wire positions, build the trapezoid, distribute the differential
    intensity into the depth histogram).  The CPU-reference backend loops
    over it; the GPU-sim backend can execute it per simulated thread to prove
    equivalence with the vectorised form.

``depth_resolve_chunk_vectorized``
    The data-parallel form used by the fast backends: the same mathematics
    expressed as NumPy array operations over every active element of a row
    chunk at once.

Both accumulate with atomic-add semantics into the ``(n_bins, rows, cols)``
depth-resolved cube.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.config import DifferenceMode
from repro.core.depth_grid import DepthGrid
from repro.core.depth_mapping import pixel_yz_to_depth, pixel_yz_to_depth_scalar
from repro.core.trapezoid import (
    MIN_TRAPEZOID_AREA,
    distribute_intensity,
    trapezoid_area,
    trapezoid_bin_overlaps,
)
from repro.cudasim.atomic import atomic_add
from repro.geometry.wire import WireEdge

__all__ = [
    "KernelContext",
    "depth_resolve_element",
    "depth_resolve_chunk_scalar",
    "depth_resolve_chunk_vectorized",
    "depth_resolve_chunk_fused",
    "FUSED_ROW_BLOCK_BYTES",
    "set_two_per_thread",
    "set_two_vectorized",
    "make_set_two_kernel",
    "KERNEL_FLOPS_PER_THREAD",
    "KERNEL_BYTES_PER_THREAD",
]

#: Rough per-thread arithmetic cost of the kernel (4 critical-depth solves at
#: ~25 flops each, trapezoid construction and a handful of bins updated) —
#: used only by the analytic performance model.
KERNEL_FLOPS_PER_THREAD = 220.0
#: Rough per-thread global-memory traffic: two image reads, geometry reads
#: and a few histogram read-modify-writes.
KERNEL_BYTES_PER_THREAD = 96.0


class KernelContext:
    """Read-only inputs shared by every thread of a chunk launch.

    Parameters
    ----------
    images:
        Intensity slab of shape ``(n_positions, rows, n_cols)``.
    back_edge_yz, front_edge_yz:
        Per-row pixel-edge coordinates, shape ``(rows, 2)`` — the
        ``firstedge``/``edge`` tables of the original kernel.
    wire_positions_yz:
        Wire-centre positions, shape ``(n_positions, 2)``.
    wire_radius:
        Wire radius.
    grid:
        Depth grid to accumulate onto.
    wire_edge:
        Which wire edge is being analysed.
    difference_mode:
        Signed or rectified differences.
    intensity_cutoff:
        ``d_cutoff``: differences with magnitude at or below this are skipped.
    mask:
        Optional boolean ``(rows, n_cols)`` pixel mask.
    """

    def __init__(
        self,
        images: np.ndarray,
        back_edge_yz: np.ndarray,
        front_edge_yz: np.ndarray,
        wire_positions_yz: np.ndarray,
        wire_radius: float,
        grid: DepthGrid,
        wire_edge: WireEdge = WireEdge.LEADING,
        difference_mode: DifferenceMode = DifferenceMode.SIGNED,
        intensity_cutoff: float = 0.0,
        mask: Optional[np.ndarray] = None,
    ):
        self.images = np.asarray(images, dtype=np.float64)
        self.back_edge_yz = np.asarray(back_edge_yz, dtype=np.float64)
        self.front_edge_yz = np.asarray(front_edge_yz, dtype=np.float64)
        self.wire_positions_yz = np.asarray(wire_positions_yz, dtype=np.float64)
        self.wire_radius = float(wire_radius)
        self.grid = grid
        self.wire_edge = wire_edge
        self.difference_mode = difference_mode
        self.intensity_cutoff = float(intensity_cutoff)
        self.mask = None if mask is None else np.asarray(mask, dtype=bool)

        self.n_positions, self.n_rows, self.n_cols = self.images.shape
        self.n_steps = self.n_positions - 1
        #: sign applied to (I[i] - I[i+1]) so that "signal appears" is positive
        #: for the selected edge
        self.edge_sign = 1.0 if wire_edge == WireEdge.LEADING else -1.0

    # ------------------------------------------------------------------ #
    def signed_difference(self, step: int, row: int, col: int) -> float:
        """Edge-signed intensity difference for one element (scalar path)."""
        diff = self.images[step, row, col] - self.images[step + 1, row, col]
        value = self.edge_sign * diff
        if self.difference_mode is DifferenceMode.RECTIFIED:
            value = max(value, 0.0)
        return value

    def signed_differences(self) -> np.ndarray:
        """Edge-signed differences for the whole slab, shape ``(n_steps, rows, cols)``."""
        diff = self.edge_sign * (self.images[:-1] - self.images[1:])
        if self.difference_mode is DifferenceMode.RECTIFIED:
            diff = np.maximum(diff, 0.0)
        return diff


def _scalar_cumulative_integral(x: float, d1: float, d2: float, d3: float, d4: float) -> float:
    """Scalar twin of :func:`repro.core.trapezoid._cumulative_integral`.

    Implemented with plain Python floats (same operations, same order) so the
    scalar reference path stays bit-compatible with the vectorised path while
    avoiding per-element NumPy call overhead in the innermost loop.
    """
    # rising ramp on [d1, d2]
    xr = min(max(x, d1), d2)
    rise_width = d2 - d1
    rise = 0.5 * (xr - d1) ** 2 / rise_width if rise_width > 0 else 0.0
    # plateau on [d2, d3]
    xp = min(max(x, d2), d3)
    plateau = xp - d2
    # falling ramp on [d3, d4]
    xf = min(max(x, d3), d4)
    fall_width = d4 - d3
    fall = 0.5 * fall_width - 0.5 * (d4 - xf) ** 2 / fall_width if fall_width > 0 else 0.0
    return rise + plateau + fall


def _scalar_trapezoid_overlap(lo: float, hi: float, d1: float, d2: float, d3: float, d4: float) -> float:
    """Exact overlap of the unit trapezoid with ``[lo, hi]`` (scalar fast path)."""
    return _scalar_cumulative_integral(hi, d1, d2, d3, d4) - _scalar_cumulative_integral(
        lo, d1, d2, d3, d4
    )


def depth_resolve_element(
    ctx: KernelContext,
    col: int,
    row: int,
    step: int,
    out: np.ndarray,
) -> float:
    """Process one (column, row, wire-step) element — the ``setTwo`` thread body.

    Adds the element's depth-distributed intensity into *out* (shape
    ``(n_bins, rows, cols)``) and returns the amount of intensity deposited.
    """
    if ctx.mask is not None and not ctx.mask[row, col]:
        return 0.0

    value = ctx.signed_difference(step, row, col)
    if abs(value) <= ctx.intensity_cutoff or value == 0.0:
        return 0.0

    back_y, back_z = ctx.back_edge_yz[row]
    front_y, front_z = ctx.front_edge_yz[row]
    wire_start_y, wire_start_z = ctx.wire_positions_yz[step]
    wire_end_y, wire_end_z = ctx.wire_positions_yz[step + 1]
    edge = int(ctx.wire_edge)

    partial_start = pixel_yz_to_depth_scalar(front_y, front_z, wire_start_y, wire_start_z, ctx.wire_radius, edge)
    partial_end = pixel_yz_to_depth_scalar(back_y, back_z, wire_end_y, wire_end_z, ctx.wire_radius, edge)
    full_start = pixel_yz_to_depth_scalar(back_y, back_z, wire_start_y, wire_start_z, ctx.wire_radius, edge)
    full_end = pixel_yz_to_depth_scalar(front_y, front_z, wire_end_y, wire_end_z, ctx.wire_radius, edge)
    corners = (partial_start, partial_end, full_start, full_end)
    if any(math.isnan(c) for c in corners):
        return 0.0
    d1, d2, d3, d4 = sorted(corners)

    area = ((d4 - d1) + (d3 - d2)) / 2.0
    if area <= MIN_TRAPEZOID_AREA:
        return 0.0

    grid = ctx.grid
    # restrict to the depth bins overlapping the trapezoid support
    first_bin = max(0, int(math.floor((d1 - grid.start) / grid.step)))
    last_bin = min(grid.n_bins - 1, int(math.floor((d4 - grid.start) / grid.step)))
    if last_bin < first_bin:
        return 0.0

    deposited = 0.0
    for bin_index in range(first_bin, last_bin + 1):
        # bin edges written exactly as DepthGrid.edges builds them
        # (start + step * k), so scalar and array kernels integrate over
        # bit-identical bin boundaries
        lo = grid.start + bin_index * grid.step
        hi = grid.start + (bin_index + 1) * grid.step
        overlap = _scalar_trapezoid_overlap(lo, hi, d1, d2, d3, d4)
        if overlap <= 0.0:
            continue
        contribution = value * overlap / area
        # atomicAdd analogue on the flattened output
        flat_index = bin_index * (ctx.n_rows * ctx.n_cols) + row * ctx.n_cols + col
        out.reshape(-1)[flat_index] += contribution
        deposited += contribution
    return deposited


def depth_resolve_chunk_scalar(ctx: KernelContext, out: np.ndarray) -> float:
    """Reference triple loop over every (step, row, column) element.

    This is the "original CPU program" of the paper: one scalar element at a
    time, no vectorisation.  Returns the total deposited intensity.
    """
    total = 0.0
    for step in range(ctx.n_steps):
        for row in range(ctx.n_rows):
            for col in range(ctx.n_cols):
                total += depth_resolve_element(ctx, col, row, step, out)
    return total


def depth_resolve_chunk_vectorized(
    ctx: KernelContext,
    out: np.ndarray,
    element_batch: int = 16384,
) -> float:
    """Vectorised kernel over a whole row chunk.

    Mathematically identical to looping :func:`depth_resolve_element` over
    all elements; expressed as array operations so the only Python-level loop
    is over batches of *active* elements (those passing the mask and cutoff).

    Parameters
    ----------
    ctx:
        Kernel inputs.
    out:
        Accumulation cube ``(n_bins, rows, cols)``; modified in place.
    element_batch:
        Number of active elements processed per internal batch — bounds the
        ``(batch, n_bins)`` temporary exactly like a real kernel bounds its
        shared-memory tile.
    """
    grid = ctx.grid
    diffs = ctx.signed_differences()  # (n_steps, rows, cols)

    # Critical depths depend on (step, row) only — compute them once for the
    # whole chunk: shape (n_steps, rows).
    edge = int(ctx.wire_edge)
    back_y = ctx.back_edge_yz[:, 0][None, :]
    back_z = ctx.back_edge_yz[:, 1][None, :]
    front_y = ctx.front_edge_yz[:, 0][None, :]
    front_z = ctx.front_edge_yz[:, 1][None, :]
    wire_start_y = ctx.wire_positions_yz[:-1, 0][:, None]
    wire_start_z = ctx.wire_positions_yz[:-1, 1][:, None]
    wire_end_y = ctx.wire_positions_yz[1:, 0][:, None]
    wire_end_z = ctx.wire_positions_yz[1:, 1][:, None]

    partial_start = pixel_yz_to_depth(front_y, front_z, wire_start_y, wire_start_z, ctx.wire_radius, edge)
    partial_end = pixel_yz_to_depth(back_y, back_z, wire_end_y, wire_end_z, ctx.wire_radius, edge)
    full_start = pixel_yz_to_depth(back_y, back_z, wire_start_y, wire_start_z, ctx.wire_radius, edge)
    full_end = pixel_yz_to_depth(front_y, front_z, wire_end_y, wire_end_z, ctx.wire_radius, edge)

    corners = np.stack([partial_start, partial_end, full_start, full_end], axis=0)
    corners_valid = np.all(np.isfinite(corners), axis=0)  # (n_steps, rows)
    corners_sorted = np.sort(corners, axis=0)
    d1, d2, d3, d4 = corners_sorted  # each (n_steps, rows)
    area = trapezoid_area(d1, d2, d3, d4)

    # A (step, row) pair can contribute only if its trapezoid overlaps the
    # grid at all; combined with the per-element cutoff this gives the active
    # element set.
    pair_active = corners_valid & (area > MIN_TRAPEZOID_AREA) & (d4 > grid.start) & (d1 < grid.stop)

    active = np.abs(diffs) > ctx.intensity_cutoff
    active &= diffs != 0.0
    if ctx.mask is not None:
        active &= ctx.mask[None, :, :]
    active &= pair_active[:, :, None]

    step_idx, row_idx, col_idx = np.nonzero(active)
    if step_idx.size == 0:
        return 0.0

    values = diffs[step_idx, row_idx, col_idx]
    flat_out = out.reshape(-1)
    plane = ctx.n_rows * ctx.n_cols
    bin_offsets = np.arange(grid.n_bins, dtype=np.int64) * plane
    total = 0.0

    for start in range(0, step_idx.size, element_batch):
        sl = slice(start, start + element_batch)
        s_i, r_i, c_i = step_idx[sl], row_idx[sl], col_idx[sl]
        weights = distribute_intensity(
            grid,
            values[sl],
            d1[s_i, r_i],
            d2[s_i, r_i],
            d3[s_i, r_i],
            d4[s_i, r_i],
        )  # (batch, n_bins)
        pixel_offset = r_i * ctx.n_cols + c_i
        flat_indices = (pixel_offset[:, None] + bin_offsets[None, :]).reshape(-1)
        atomic_add(flat_out, flat_indices, weights.reshape(-1))
        total += float(weights.sum())
    return total


#: Target size of the per-row-block difference temporary of the fused kernel.
#: Blocks are sized so the ``(n_steps, block_rows, n_cols)`` difference slab
#: stays resident in L2 while its elements are distributed — measured on the
#: 24 MB and 96 MB reference workloads, a ~256 KiB block is ~1.4x faster than
#: the old 8 MiB target (and either beats materialising the whole cube).
FUSED_ROW_BLOCK_BYTES = 256 * 1024


def _fused_row_block(n_steps: int, n_cols: int) -> int:
    """Rows per difference block so the block temp stays near the target size."""
    bytes_per_row = 8 * max(1, n_steps) * max(1, n_cols)
    return max(1, FUSED_ROW_BLOCK_BYTES // bytes_per_row)


def depth_resolve_chunk_fused(
    ctx: KernelContext,
    out: np.ndarray,
    element_batch: int = 16384,
    row_block: Optional[int] = None,
) -> float:
    """Fused signed-difference + depth-distribute kernel over a row chunk.

    One pass per chunk: instead of materialising ``ctx.signed_differences()``
    (a full ``(n_steps, rows, cols)`` cube) and re-reading it to find and
    gather the active elements, the kernel walks the chunk in row blocks,
    computes each block's differences on the fly, and distributes them into
    *out* immediately — the difference temporary never exceeds one block.

    Bitwise identical to :func:`depth_resolve_chunk_scalar`: per-bin weights
    are computed in the scalar kernel's operation order
    (``value * overlap / area``) over the exact same bin edges, and
    contributions reach every output slot in the same (ascending wire-step)
    order.  Results do not depend on *row_block* or *element_batch*; both
    only bound temporary sizes.

    Returns the total deposited intensity.
    """
    grid = ctx.grid

    # Critical depths depend on (step, row) only — one cheap whole-chunk
    # pass: shape (n_steps, rows).
    edge = int(ctx.wire_edge)
    back_y = ctx.back_edge_yz[:, 0][None, :]
    back_z = ctx.back_edge_yz[:, 1][None, :]
    front_y = ctx.front_edge_yz[:, 0][None, :]
    front_z = ctx.front_edge_yz[:, 1][None, :]
    wire_start_y = ctx.wire_positions_yz[:-1, 0][:, None]
    wire_start_z = ctx.wire_positions_yz[:-1, 1][:, None]
    wire_end_y = ctx.wire_positions_yz[1:, 0][:, None]
    wire_end_z = ctx.wire_positions_yz[1:, 1][:, None]

    partial_start = pixel_yz_to_depth(front_y, front_z, wire_start_y, wire_start_z, ctx.wire_radius, edge)
    partial_end = pixel_yz_to_depth(back_y, back_z, wire_end_y, wire_end_z, ctx.wire_radius, edge)
    full_start = pixel_yz_to_depth(back_y, back_z, wire_start_y, wire_start_z, ctx.wire_radius, edge)
    full_end = pixel_yz_to_depth(front_y, front_z, wire_end_y, wire_end_z, ctx.wire_radius, edge)

    corners = np.stack([partial_start, partial_end, full_start, full_end], axis=0)
    corners_valid = np.all(np.isfinite(corners), axis=0)  # (n_steps, rows)
    corners_sorted = np.sort(corners, axis=0)
    d1, d2, d3, d4 = corners_sorted  # each (n_steps, rows)
    area = trapezoid_area(d1, d2, d3, d4)
    pair_active = corners_valid & (area > MIN_TRAPEZOID_AREA) & (d4 > grid.start) & (d1 < grid.stop)

    if row_block is None:
        row_block = _fused_row_block(ctx.n_steps, ctx.n_cols)
    row_block = max(1, int(row_block))

    flat_out = out.reshape(-1)
    plane = ctx.n_rows * ctx.n_cols
    bin_offsets = np.arange(grid.n_bins, dtype=np.int64) * plane
    total = 0.0

    for block_start in range(0, ctx.n_rows, row_block):
        block_stop = min(block_start + row_block, ctx.n_rows)
        band = slice(block_start, block_stop)
        # the fused difference pass: this block's slab is read once, here
        diffs = ctx.edge_sign * (ctx.images[:-1, band, :] - ctx.images[1:, band, :])
        if ctx.difference_mode is DifferenceMode.RECTIFIED:
            diffs = np.maximum(diffs, 0.0)

        active = np.abs(diffs) > ctx.intensity_cutoff
        active &= diffs != 0.0
        if ctx.mask is not None:
            active &= ctx.mask[None, band, :]
        active &= pair_active[:, band, None]

        step_idx, row_idx, col_idx = np.nonzero(active)
        if step_idx.size == 0:
            continue
        values = diffs[step_idx, row_idx, col_idx]
        abs_rows = row_idx + block_start

        for start in range(0, step_idx.size, element_batch):
            sl = slice(start, start + element_batch)
            s_i, r_i = step_idx[sl], abs_rows[sl]
            batch_values = values[sl]
            batch_area = area[s_i, r_i]
            overlaps = trapezoid_bin_overlaps(
                grid, d1[s_i, r_i], d2[s_i, r_i], d3[s_i, r_i], d4[s_i, r_i]
            )  # (batch, n_bins)
            # scalar operation order: (value * overlap) / area — this is what
            # keeps the fused kernel bitwise-identical to the reference loop
            weights = (batch_values[:, None] * overlaps) / batch_area[:, None]
            pixel_offset = r_i * ctx.n_cols + col_idx[sl]
            flat_indices = (pixel_offset[:, None] + bin_offsets[None, :]).reshape(-1)
            atomic_add(flat_out, flat_indices, weights.reshape(-1))
            total += float(weights.sum())
    return total


def set_two_per_thread(tx: int, ty: int, tz: int, ctx: KernelContext, out: np.ndarray) -> None:
    """Per-thread ``setTwo`` body for the simulated-CUDA launch path.

    Thread coordinates map to data exactly as in the paper's kernel:
    x → detector column, y → detector row (within the streamed chunk),
    z → wire-scan step.  Threads beyond the data extent (launch overhang)
    return immediately.
    """
    if tx >= ctx.n_cols or ty >= ctx.n_rows or tz >= ctx.n_steps:
        return
    depth_resolve_element(ctx, int(tx), int(ty), int(tz), out)


def set_two_vectorized(
    ix: np.ndarray,
    iy: np.ndarray,
    iz: np.ndarray,
    ctx: KernelContext,
    out: np.ndarray,
    element_batch: int = 16384,
) -> None:
    """Data-parallel ``setTwo`` body over explicit thread-coordinate arrays.

    Used by the GPU-sim backend: the launch hands in the flat coordinate
    arrays of every thread in the grid (including overhang threads), and the
    body processes exactly the in-range, active elements.
    """
    grid = ctx.grid
    valid = (ix < ctx.n_cols) & (iy < ctx.n_rows) & (iz < ctx.n_steps)
    if not np.any(valid):
        return
    col_idx = ix[valid].astype(np.int64)
    row_idx = iy[valid].astype(np.int64)
    step_idx = iz[valid].astype(np.int64)

    diffs = ctx.signed_differences()
    values = diffs[step_idx, row_idx, col_idx]
    active = np.abs(values) > ctx.intensity_cutoff
    active &= values != 0.0
    if ctx.mask is not None:
        active &= ctx.mask[row_idx, col_idx]
    if not np.any(active):
        return
    col_idx, row_idx, step_idx, values = (
        col_idx[active],
        row_idx[active],
        step_idx[active],
        values[active],
    )

    edge = int(ctx.wire_edge)
    back_y = ctx.back_edge_yz[row_idx, 0]
    back_z = ctx.back_edge_yz[row_idx, 1]
    front_y = ctx.front_edge_yz[row_idx, 0]
    front_z = ctx.front_edge_yz[row_idx, 1]
    wire_start_y = ctx.wire_positions_yz[step_idx, 0]
    wire_start_z = ctx.wire_positions_yz[step_idx, 1]
    wire_end_y = ctx.wire_positions_yz[step_idx + 1, 0]
    wire_end_z = ctx.wire_positions_yz[step_idx + 1, 1]

    partial_start = pixel_yz_to_depth(front_y, front_z, wire_start_y, wire_start_z, ctx.wire_radius, edge)
    partial_end = pixel_yz_to_depth(back_y, back_z, wire_end_y, wire_end_z, ctx.wire_radius, edge)
    full_start = pixel_yz_to_depth(back_y, back_z, wire_start_y, wire_start_z, ctx.wire_radius, edge)
    full_end = pixel_yz_to_depth(front_y, front_z, wire_end_y, wire_end_z, ctx.wire_radius, edge)

    corners = np.stack([partial_start, partial_end, full_start, full_end], axis=0)
    finite = np.all(np.isfinite(corners), axis=0)
    corners_sorted = np.sort(corners, axis=0)
    d1, d2, d3, d4 = corners_sorted
    area = trapezoid_area(d1, d2, d3, d4)
    usable = finite & (area > MIN_TRAPEZOID_AREA) & (d4 > grid.start) & (d1 < grid.stop)
    if not np.any(usable):
        return
    col_idx, row_idx, values = col_idx[usable], row_idx[usable], values[usable]
    d1, d2, d3, d4 = d1[usable], d2[usable], d3[usable], d4[usable]

    flat_out = out.reshape(-1)
    plane = ctx.n_rows * ctx.n_cols
    bin_offsets = np.arange(grid.n_bins, dtype=np.int64) * plane
    for start in range(0, values.size, element_batch):
        sl = slice(start, start + element_batch)
        weights = distribute_intensity(grid, values[sl], d1[sl], d2[sl], d3[sl], d4[sl])
        pixel_offset = row_idx[sl] * ctx.n_cols + col_idx[sl]
        flat_indices = (pixel_offset[:, None] + bin_offsets[None, :]).reshape(-1)
        atomic_add(flat_out, flat_indices, weights.reshape(-1))


def make_set_two_kernel(extra_flops_per_thread: float = 0.0):
    """Build the :class:`repro.cudasim.kernel.Kernel` wrapping the two bodies.

    Parameters
    ----------
    extra_flops_per_thread:
        Additional per-thread arithmetic charged by the performance model
        (e.g. the flat-1D index arithmetic of the chosen layout).
    """
    from repro.cudasim.kernel import Kernel

    return Kernel(
        name="setTwo",
        per_thread=set_two_per_thread,
        vectorized=set_two_vectorized,
        flops_per_thread=KERNEL_FLOPS_PER_THREAD + float(extra_flops_per_thread),
        bytes_per_thread=KERNEL_BYTES_PER_THREAD,
    )

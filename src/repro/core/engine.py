"""The shared chunked execution engine.

Every backend used to carry its own copy of the same control flow: slice the
image cube into detector-row chunks, build a kernel context per chunk, run
the per-chunk compute, and stitch the partial depth-resolved cubes back into
the full histogram.  This module extracts that loop into one place:

``ChunkSource``
    Where the image slabs come from.  :class:`StackChunkSource` serves an
    in-memory :class:`~repro.core.stack.WireScanStack`;
    :class:`repro.io.streaming.StreamingWireScanSource` serves row windows
    straight from an h5lite file without ever materialising the cube.

``ExecutionPlan``
    The row-chunk schedule (built from
    :func:`~repro.core.chunking.plan_row_chunks`) plus the per-run shared
    state the chunks must agree on: the per-image background levels (computed
    once over the *whole* stack, so every backend subtracts the same
    background) and the chunking strategy note.

``ChunkExecutor``
    What a backend actually contributes: how to plan its chunks, optional
    per-run setup/teardown, and the per-chunk compute that turns a
    :class:`~repro.core.kernels.KernelContext` into a partial
    ``(n_bins, chunk_rows, n_cols)`` cube.  Executors may complete chunks
    asynchronously (the multiprocess executor keeps a bounded number of
    chunks in flight) by yielding finished partials whenever they are ready
    and draining the rest at the end.

``execute``
    The engine loop: plan → prepare → per chunk (load slab, count active
    elements, build context, execute) → reduce into the histogram → report.

The engine also owns the run accounting that used to be duplicated: the
active-element count is accumulated chunk by chunk from the slabs the run
reads anyway (the full difference cube is never recomputed per backend), and
every report's notes carry the plan summary so cross-backend comparisons are
attributable to identical chunking.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.chunking import ChunkPlan, plan_row_chunks
from repro.core.config import ReconstructionConfig
from repro.core.histogram import DepthHistogram
from repro.core.kernels import KernelContext
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.stack import WireScanStack
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = [
    "ChunkSource",
    "StackChunkSource",
    "ExecutionPlan",
    "ChunkExecutor",
    "HOST_MEMORY_BYTES",
    "STREAMING_CHUNK_BYTES",
    "build_chunk_context",
    "build_execution_plan",
    "streaming_budget_bytes",
    "compute_stack_background",
    "execute",
    "execute_backend",
    "make_strategy_executor",
]

_LOG = get_logger(__name__)

#: Chunk-planning budget for host-resident executors: effectively unbounded,
#: so a host plan without an explicit ``rows_per_chunk`` is a single chunk.
HOST_MEMORY_BYTES = 1 << 62

#: Chunk-planning budget for host executors reading from an *out-of-core*
#: source with no explicit ``rows_per_chunk``: a single chunk would pull the
#: whole cube into RAM, defeating streaming, so slabs are capped at this many
#: bytes (grown as needed so at least one row always fits).
STREAMING_CHUNK_BYTES = 256 * 1024 * 1024


# --------------------------------------------------------------------------- #
# sources
class ChunkSource(abc.ABC):
    """Provider of image slabs and geometry for the engine.

    A source exposes the problem dimensions and geometry up front (cheaply —
    for a file-backed source this is header data only) and serves the
    intensity slab of any detector-row window on demand.
    """

    #: True when slabs are loaded from out-of-core storage, so planners
    #: should bound chunk sizes rather than default to one full-cube chunk
    out_of_core: bool = False

    #: number of wire positions (images)
    n_positions: int
    #: detector rows
    n_rows: int
    #: detector columns
    n_cols: int
    #: wire-centre trajectory, shape ``(n_positions, 2)``
    wire_positions_yz: np.ndarray
    #: wire radius
    wire_radius: float
    #: free-form metadata propagated into the result
    metadata: Dict

    @property
    def n_steps(self) -> int:
        """Number of adjacent-image differences."""
        return self.n_positions - 1

    @abc.abstractmethod
    def row_edges_yz(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Back/front pixel-edge (y, z) tables for absolute detector rows."""

    @abc.abstractmethod
    def load_rows(self, row_start: int, row_stop: int) -> np.ndarray:
        """The intensity slab ``(n_positions, row_stop - row_start, n_cols)``."""

    @abc.abstractmethod
    def mask_rows(self, row_start: int, row_stop: int) -> Optional[np.ndarray]:
        """Pixel-mask window for rows ``row_start:row_stop`` (``None`` if unmasked)."""

    @abc.abstractmethod
    def position_image(self, position: int) -> np.ndarray:
        """One full detector image ``(n_rows, n_cols)`` — used by the
        background pass, which needs every row of an image but only one
        image at a time."""

    def describe(self) -> str:
        """One-line description for logs and report notes."""
        return f"{type(self).__name__}({self.n_positions}x{self.n_rows}x{self.n_cols})"


class StackChunkSource(ChunkSource):
    """Serves chunks from an in-memory :class:`WireScanStack`."""

    def __init__(self, stack: WireScanStack):
        self.stack = stack
        self.n_positions = stack.n_positions
        self.n_rows = stack.n_rows
        self.n_cols = stack.n_cols
        self.wire_positions_yz = stack.scan.positions
        self.wire_radius = stack.scan.wire.radius
        self.metadata = stack.metadata

    def row_edges_yz(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.stack.detector.row_edges_yz(rows)

    def load_rows(self, row_start: int, row_stop: int) -> np.ndarray:
        return self.stack.images[:, row_start:row_stop, :]

    def mask_rows(self, row_start: int, row_stop: int) -> Optional[np.ndarray]:
        if self.stack.pixel_mask is None:
            return None
        return self.stack.pixel_mask[row_start:row_stop, :]

    def position_image(self, position: int) -> np.ndarray:
        return self.stack.images[position]


# --------------------------------------------------------------------------- #
# plans
@dataclass(frozen=True)
class ExecutionPlan:
    """A chunk schedule plus the per-run shared state every chunk agrees on."""

    chunk_plan: ChunkPlan
    #: per-image background levels, shape ``(n_positions, 1, 1)``; ``None``
    #: when ``subtract_background`` is off
    background: Optional[np.ndarray] = None
    #: how the chunk size was chosen (for the report notes)
    strategy: str = "host"

    @property
    def chunks(self) -> Tuple[Tuple[int, int], ...]:
        """``(row_start, row_stop)`` pairs tiling the detector."""
        return self.chunk_plan.chunks

    @property
    def n_chunks(self) -> int:
        """Number of row chunks."""
        return self.chunk_plan.n_chunks

    @property
    def rows_per_chunk(self) -> int:
        """Chunk size (last chunk may be smaller)."""
        return self.chunk_plan.rows_per_chunk

    def summary(self) -> str:
        """One-line plan description shared by every backend's report."""
        return f"plan[{self.strategy}]: {self.chunk_plan.summary()}"


def build_execution_plan(
    source: ChunkSource,
    config: ReconstructionConfig,
    device_memory_bytes: int = HOST_MEMORY_BYTES,
    rows_per_chunk: Optional[int] = None,
    strategy: str = "host",
) -> ExecutionPlan:
    """Build an :class:`ExecutionPlan` for *source* under *config*.

    ``rows_per_chunk`` falls back to ``config.rows_per_chunk``; when both are
    ``None`` the planner picks the largest chunk that fits
    ``device_memory_bytes``.  For host executors that budget is effectively
    unbounded — one full chunk — *except* on an out-of-core source, where the
    slab budget is capped at :data:`STREAMING_CHUNK_BYTES` so streaming never
    pulls the whole cube into RAM.
    """
    if rows_per_chunk is None:
        rows_per_chunk = config.rows_per_chunk
    if rows_per_chunk is None and source.out_of_core and device_memory_bytes >= HOST_MEMORY_BYTES:
        device_memory_bytes = streaming_budget_bytes(source, config)
    chunk_plan = plan_row_chunks(
        n_rows=source.n_rows,
        n_cols=source.n_cols,
        n_positions=source.n_positions,
        n_depth_bins=config.grid.n_bins,
        device_memory_bytes=device_memory_bytes,
        layout=config.layout,
        rows_per_chunk=rows_per_chunk,
    )
    return ExecutionPlan(
        chunk_plan=chunk_plan,
        background=compute_stack_background(source, config),
        strategy=strategy,
    )


def streaming_budget_bytes(source: ChunkSource, config: ReconstructionConfig) -> int:
    """Slab budget for planning chunks over an out-of-core source.

    :data:`STREAMING_CHUNK_BYTES`, grown when a single detector row (plus the
    planner's head-room) would not fit, so a plan always exists.
    """
    from repro.core.chunking import estimate_chunk_device_bytes

    one_row = estimate_chunk_device_bytes(
        1, source.n_cols, source.n_positions, config.grid.n_bins, config.layout
    )
    return max(STREAMING_CHUNK_BYTES, int(one_row / 0.9) + 1)


def compute_stack_background(
    source: ChunkSource, config: ReconstructionConfig
) -> Optional[np.ndarray]:
    """Per-image background levels over the *whole* stack, or ``None``.

    The background of image ``i`` is the median of every pixel of that image
    — not of whichever row chunk happens to be in flight, which is what the
    old per-backend loops computed and why chunked and unchunked runs used to
    subtract different backgrounds.  One image is resident at a time, so the
    pass is safe for out-of-core sources.
    """
    if not config.subtract_background:
        return None
    levels = np.empty((source.n_positions, 1, 1), dtype=np.float64)
    for position in range(source.n_positions):
        levels[position, 0, 0] = np.median(source.position_image(position))
    return levels


# --------------------------------------------------------------------------- #
# executors
class ChunkExecutor(abc.ABC):
    """Per-chunk compute supplied by a backend.

    The engine drives the executor through a fixed sequence::

        plan(source, config)
        prepare(source, config, plan)
        for each chunk:  execute_chunk(ctx, row_start, row_stop)  -> partials
        drain()                                                   -> partials
        report_extras(), notes()

    ``execute_chunk`` and ``drain`` yield ``(row_start, partial_cube)`` pairs;
    a synchronous executor yields its own chunk immediately, an asynchronous
    one may buffer work and yield completed chunks in any order.
    """

    #: report/backend name
    name: str = ""

    def plan(self, source: ChunkSource, config: ReconstructionConfig) -> ExecutionPlan:
        """Chunk schedule for this executor (host single-chunk by default)."""
        return build_execution_plan(source, config)

    def prepare(self, source: ChunkSource, config: ReconstructionConfig, plan: ExecutionPlan) -> None:
        """Per-run setup (device allocation, worker pools, ...)."""

    @abc.abstractmethod
    def execute_chunk(
        self, ctx: KernelContext, row_start: int, row_stop: int
    ) -> Iterable[Tuple[int, np.ndarray]]:
        """Run the per-chunk compute; yield any completed partial cubes."""

    def drain(self) -> Iterable[Tuple[int, np.ndarray]]:
        """Yield partial cubes still in flight after the last chunk."""
        return ()

    def report_extras(self) -> Dict:
        """Extra :class:`ReconstructionReport` field values (timings, bytes, ...)."""
        return {}

    def notes(self) -> List[str]:
        """Executor-specific report notes, appended after the plan summary."""
        return []

    def close(self) -> None:
        """Release per-run resources; called even when a chunk raises."""


def make_strategy_executor(config: ReconstructionConfig) -> "ChunkExecutor":
    """The :class:`ChunkExecutor` implementing ``config.executor``.

    The executor-strategy axis is orthogonal to the backend axis: a backend
    defines *what* the per-chunk compute is, the strategy defines *where* it
    runs — ``serial`` in the calling thread, ``threads`` on the shared
    GIL-releasing thread pool, ``processes`` on the persistent process pool.
    The vectorized backend routes through here so ``config.executor``
    selects among them without changing backends.

    An unresolved ``auto`` falls back to serial: the session resolves
    ``auto`` against the tuner cache *before* execution, so seeing it here
    means the caller bypassed the session — the safe default is the one
    every machine can honour.
    """
    # deferred imports: the backend modules import this engine module
    if config.executor == "threads":
        from repro.core.backends.threaded import ThreadedExecutor

        return ThreadedExecutor()
    if config.executor == "processes":
        from repro.core.backends.multiprocess import MultiprocessExecutor

        return MultiprocessExecutor()
    from repro.core.backends.vectorized import VectorizedExecutor

    return VectorizedExecutor()


# --------------------------------------------------------------------------- #
# the engine loop
def build_chunk_context(
    source: ChunkSource,
    config: ReconstructionConfig,
    row_start: int,
    row_stop: int,
    slab: Optional[np.ndarray] = None,
    background: Optional[np.ndarray] = None,
) -> KernelContext:
    """Kernel inputs for detector rows ``row_start:row_stop`` of *source*.

    *slab* lets the caller pass a window it has already loaded (the engine
    loads each chunk exactly once); otherwise it is read from the source.
    *background* (shape ``(n_positions, 1, 1)``) is subtracted from the slab
    when given — the engine passes its plan's whole-stack levels.
    """
    if not (0 <= row_start < row_stop <= source.n_rows):
        raise ValidationError(f"invalid row range [{row_start}, {row_stop})")
    if slab is None:
        slab = source.load_rows(row_start, row_stop)
    if background is not None:
        slab = slab - background
    rows = np.arange(row_start, row_stop)
    back_edges, front_edges = source.row_edges_yz(rows)
    return KernelContext(
        images=slab,
        back_edge_yz=back_edges,
        front_edge_yz=front_edges,
        wire_positions_yz=source.wire_positions_yz,
        wire_radius=source.wire_radius,
        grid=config.grid,
        wire_edge=config.wire_edge,
        difference_mode=config.difference_mode,
        intensity_cutoff=config.intensity_cutoff,
        mask=source.mask_rows(row_start, row_stop),
    )


def count_active_elements_in_slab(
    slab: np.ndarray, mask: Optional[np.ndarray], intensity_cutoff: float
) -> int:
    """Active ``(pixel, step)`` elements of one raw slab (mask and cutoff applied)."""
    diffs = slab[:-1] - slab[1:]
    active = np.abs(diffs) > intensity_cutoff
    if mask is not None:
        active &= mask[None, :, :]
    return int(np.count_nonzero(active))


def execute(
    source: ChunkSource,
    config: ReconstructionConfig,
    executor: ChunkExecutor,
) -> Tuple[DepthResolvedStack, ReconstructionReport]:
    """Run the full plan → execute → reduce → report sequence.

    Returns the depth-resolved stack and the run report, exactly like the old
    per-backend ``reconstruct`` methods did.
    """
    start = time.perf_counter()
    plan = executor.plan(source, config)
    _LOG.debug("engine: %s via %s, %s", source.describe(), executor.name, plan.summary())

    histogram = DepthHistogram(config.grid, source.n_rows, source.n_cols)
    n_active = 0
    # prepare() acquires per-run resources (worker pools, shared-memory
    # arenas); it sits inside the try so close() runs even when it — or any
    # chunk — raises, and no pool or shm segment outlives a failed run
    try:
        executor.prepare(source, config, plan)
        for row_start, row_stop in plan.chunks:
            slab = source.load_rows(row_start, row_stop)
            n_active += count_active_elements_in_slab(
                slab, source.mask_rows(row_start, row_stop), config.intensity_cutoff
            )
            ctx = build_chunk_context(
                source, config, row_start, row_stop, slab=slab, background=plan.background
            )
            for partial_start, partial in executor.execute_chunk(ctx, row_start, row_stop):
                histogram.merge_partial(partial, partial_start)
        for partial_start, partial in executor.drain():
            histogram.merge_partial(partial, partial_start)
    finally:
        executor.close()

    wall = time.perf_counter() - start
    extras = dict(executor.report_extras())
    extras.setdefault("compute_time", wall)
    report = ReconstructionReport(
        backend=executor.name,
        wall_time=wall,
        n_chunks=plan.n_chunks,
        n_active_pixels=n_active,
        n_steps=source.n_steps,
        notes=[plan.summary()] + executor.notes(),
        **extras,
    )
    result = histogram.to_result(metadata={**source.metadata, "backend": executor.name})
    return result, report


def execute_backend(
    source: ChunkSource, config: ReconstructionConfig
) -> Tuple[DepthResolvedStack, ReconstructionReport]:
    """Run *source* through the backend named by ``config.backend``.

    This is the entry point the streaming pipeline uses: it resolves the
    backend from the registry and hands its executor to :func:`execute`, so
    file-backed and in-memory runs share the identical engine path.
    """
    from repro.core.backends import get_backend  # deferred: backends import engine

    backend = get_backend(config.backend)
    return execute(source, config, backend.make_executor(config))

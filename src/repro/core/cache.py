"""Content-addressed result cache: the cheapest reconstruction is a cache hit.

Identical ``(source, config)`` requests dominate real workloads — parameter
sweeps re-run unchanged files, figures are re-served from the same scans —
yet until this module every request paid the full reconstruction.  The cache
closes that gap the way kedro versions pipeline outputs: results are stored
under a **content-addressed key** and reused only while every input the key
covers is provably unchanged.

Key derivation
--------------
:func:`compute_cache_key` hashes three components into one SHA-256 key:

* the **source fingerprint** (:meth:`repro.core.source.Source.fingerprint`):
  path + size + mtime + h5lite-header digest for files, an ndarray-bytes
  digest for in-memory stacks;
* the canonical :meth:`~repro.core.config.ReconstructionConfig.to_dict`
  snapshot — *every* config field participates, so changing the backend,
  layout, chunking, cutoff, … produces a different key;
* the package version plus :data:`CACHE_FORMAT_VERSION`, so upgrading the
  code (whose numerics a key cannot inspect) invalidates rather than serves
  stale bytes.

Entry storage
-------------
Entries are ordinary :meth:`~repro.core.session.RunResult.save` h5lite
records under ``<root>/runs/<key[:2]>/<key>.h5lite``, loaded back through
the same code path as ``repro.load()`` — a hit is bitwise-identical to the
recompute it replaces.  Every entry embeds a ``cache`` block (key, stored-at
timestamp, content digest of the stack); :meth:`ResultCache.get` re-verifies
the digest on every hit and treats any mismatch, truncation or parse error
as a **miss that repairs itself** (the corrupt entry is deleted, never
served).  Writes go through a temporary file plus :func:`os.replace`, so
concurrent sessions sharing one cache root can only ever observe complete
entries.

Analysis memoization rides on the same root: :meth:`ResultCache.analyze`
keys :class:`~repro.core.ops.AnalysisResult` JSON records by
``(run key, pipeline signature)`` under ``<root>/analysis/``, making
``RunResult.analyze`` chains incremental too.

The cache root resolves, in order: an explicit argument, the
:data:`CACHE_ENV_VAR` (``REPRO_CACHE_DIR``) environment variable, then
``~/.cache/repro``.  The ``repro-cache`` CLI (``stats`` / ``prune`` /
``clear`` / ``verify``) administers it.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.config import ReconstructionConfig
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError
from repro.utils.version import package_version

__all__ = [
    "CACHE_ENV_VAR",
    "CACHE_FORMAT_VERSION",
    "CacheStats",
    "ResultCache",
    "compute_cache_key",
    "default_cache_root",
    "resolve_cache",
]

_LOG = get_logger(__name__)

#: Environment variable naming the cache root (overridden by explicit args).
CACHE_ENV_VAR = "REPRO_CACHE_DIR"

#: Version of the on-disk entry layout and key recipe.  Bumping it orphans
#: (never mis-serves) every existing entry.
CACHE_FORMAT_VERSION = 1

#: Key the cache block is stored under inside an entry's run record.
CACHE_RECORD_KEY = "cache"


def default_cache_root() -> str:
    """The cache root used when neither an argument nor the env var names one."""
    root = os.environ.get(CACHE_ENV_VAR)
    if root:
        return root
    return os.path.join(os.path.expanduser("~"), ".cache", "repro")


def compute_cache_key(fingerprint: Dict, config: ReconstructionConfig) -> str:
    """The content-addressed key for (source fingerprint, config, version).

    Deterministic by construction: the payload is canonical JSON (sorted
    keys, no whitespace) over already-JSON-safe inputs, so the same logical
    request always lands on the same key across processes and sessions.
    """
    if not isinstance(fingerprint, dict) or not fingerprint:
        raise ValidationError("cache keys require a non-empty source fingerprint dict")
    payload = {
        "cache_format": CACHE_FORMAT_VERSION,
        "repro_version": package_version(),
        "source": fingerprint,
        "config": config.to_dict(),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Cache provenance attached to a :class:`~repro.core.session.RunResult`.

    Every run that consulted the cache carries one of these on
    ``run.cache_stats``: hits record where the entry lived, when it was
    stored and the digest that was re-verified before serving; misses record
    the key the fresh result was stored under.
    """

    key: str
    hit: bool
    path: str
    stored_unix: float
    digest: str

    def to_dict(self) -> Dict:
        """JSON-safe record (the ``repro-cache`` CLI and tests consume it)."""
        return {
            "key": self.key,
            "hit": self.hit,
            "path": self.path,
            "stored_unix": self.stored_unix,
            "digest": self.digest,
        }


class ResultCache:
    """A content-addressed store of finished runs (and memoized analyses).

    Safe to share between concurrent sessions: writes are atomic
    (temp file + ``os.replace``), reads verify the stored content digest,
    and anything unverifiable is deleted and recomputed instead of served.
    """

    def __init__(self, root: Optional[str] = None):
        self.root = str(root) if root is not None else default_cache_root()
        #: guards the probe counters — one cache object is probed from the
        #: serve daemon's admission/compute executors and the analysisgraph
        #: pool concurrently, and `+=` is not atomic across threads
        self._lock = threading.Lock()
        #: probe counters for this cache object's lifetime (CLI + tests)
        self.n_hits = 0
        self.n_misses = 0
        self.n_stores = 0
        self.n_repaired = 0

    # ------------------------------------------------------------------ #
    # paths
    def _run_path(self, key: str) -> str:
        return os.path.join(self.root, "runs", key[:2], f"{key}.h5lite")

    def _analysis_path(self, key: str) -> str:
        return os.path.join(self.root, "analysis", key[:2], f"{key}.json")

    def _entry_paths(self, kind: str) -> List[str]:
        """Every entry file of *kind* ("runs" or "analysis"), sorted."""
        suffix = ".h5lite" if kind == "runs" else ".json"
        base = os.path.join(self.root, kind)
        if not os.path.isdir(base):
            return []
        out: List[str] = []
        for shard in sorted(os.listdir(base)):
            shard_dir = os.path.join(base, shard)
            if not os.path.isdir(shard_dir):
                continue
            out.extend(
                os.path.join(shard_dir, name)
                for name in sorted(os.listdir(shard_dir))
                if name.endswith(suffix)
            )
        return out

    def _tmp_paths(self) -> List[str]:
        """Leftover ``.tmp-*`` intermediates (a writer killed mid-store)."""
        out: List[str] = []
        for kind in ("runs", "analysis"):
            base = os.path.join(self.root, kind)
            if not os.path.isdir(base):
                continue
            for shard in sorted(os.listdir(base)):
                shard_dir = os.path.join(base, shard)
                if not os.path.isdir(shard_dir):
                    continue
                out.extend(
                    os.path.join(shard_dir, name)
                    for name in sorted(os.listdir(shard_dir))
                    if ".tmp-" in name
                )
        return out

    def _sweep_tmp(self, min_age_s: float) -> int:
        """Delete orphaned temp files older than *min_age_s*; returns count.

        ``os.replace`` makes completed stores atomic, so a temp file only
        survives when its writer died mid-store (SIGKILL, power loss) — the
        in-process cleanup cannot cover those.  The age gate keeps a
        concurrent session's *live* write safe from a simultaneous prune.
        """
        removed = 0
        cutoff = time.time() - float(min_age_s)
        for path in self._tmp_paths():
            try:
                if os.stat(path).st_mtime <= cutoff:
                    os.remove(path)
                    removed += 1
            except OSError:
                continue  # the writer finished (or another session swept it)
        return removed

    @staticmethod
    def _atomic_write(path: str, writer) -> None:
        """Write via a unique temp file + ``os.replace`` (all-or-nothing).

        The temp name embeds pid and thread id, so concurrent sessions (or
        threads of one ``run_many``) sharing the cache root never collide on
        the intermediate file either.
        """
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = f"{path}.tmp-{os.getpid()}-{threading.get_ident()}"
        try:
            writer(tmp)
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):  # writer raised before the replace
                os.remove(tmp)

    @staticmethod
    def _discard(path: str) -> None:
        """Best-effort delete: another session may have repaired the entry
        first, and an undeletable file (read-only root) must degrade to a
        plain miss rather than turn cache maintenance into a run failure."""
        try:
            os.remove(path)
        except OSError:
            pass

    @staticmethod
    def _discard_if_unchanged(path: str, before: os.stat_result) -> None:
        """Repair-delete *path* unless a concurrent store replaced it.

        The repair path races concurrent writers: between a reader loading
        corrupt bytes and deleting the entry, another session's ``put`` may
        have atomically replaced it with a healthy file — which is then not
        ours to delete.  Re-checking the file identity (inode/mtime/size)
        immediately before the unlink shrinks the deletion window from the
        whole load duration to microseconds; a loss in the residual window
        costs one recompute, never a wrong result.
        """
        try:
            after = os.stat(path)
            if (after.st_ino, after.st_mtime_ns, after.st_size) != (
                before.st_ino, before.st_mtime_ns, before.st_size
            ):
                return  # replaced under us: the new entry is presumed healthy
            os.remove(path)
        except OSError:
            pass  # already repaired by another session, or undeletable root

    # ------------------------------------------------------------------ #
    # run entries
    def get(self, key: str):
        """The cached :class:`~repro.core.session.RunResult` for *key*, or ``None``.

        Loads through the same record path as ``repro.load()`` and then
        re-verifies the stored content digest against the loaded stack.  Any
        failure — missing file, truncated data, malformed record, digest
        mismatch — deletes the entry and reports a miss; a corrupt entry is
        repaired by the recompute that follows, never served.
        """
        from repro.core.session import _run_result_from_record
        from repro.io.image_stack import load_run_payload

        path = self._run_path(key)
        try:
            before = os.stat(path)
        except OSError:
            with self._lock:
                self.n_misses += 1
            return None
        try:
            stack, record = load_run_payload(path)
            if record is None:
                raise ValidationError("cache entry holds no run record")
            cache_block = record.get(CACHE_RECORD_KEY) or {}
            stored_digest = cache_block.get("data_sha256")
            if cache_block.get("key") != key or not stored_digest:
                raise ValidationError("cache entry carries no matching cache block")
            if stack.content_digest() != stored_digest:
                raise ValidationError("cache entry content digest mismatch")
            run = _run_result_from_record(stack, record, path)
        # deliberately broad: *whatever* makes an entry unloadable (H5LiteError,
        # a truncated data section surfacing as ValueError from the reader, a
        # malformed record, an OS error) means the entry cannot be served; the
        # recompute that follows repairs it, so failing to a miss is always safe
        except Exception as exc:
            _LOG.warning(
                "cache: repairing unusable entry %s (%s: %s)", path, type(exc).__name__, exc
            )
            self._discard_if_unchanged(path, before)
            with self._lock:
                self.n_misses += 1
                self.n_repaired += 1
            return None
        # the entry path is cache internals, not a user output; hits look
        # exactly like the cold run they replace (output_path=None until the
        # caller saves somewhere)
        run.output_path = None
        run.cache_stats = CacheStats(
            key=key,
            hit=True,
            path=path,
            stored_unix=float(cache_block.get("stored_unix", 0.0)),
            digest=stored_digest,
        )
        run.bind_cache(self)
        with self._lock:
            self.n_hits += 1
        return run

    def put(self, key: str, run) -> Optional[CacheStats]:
        """Store *run* under *key*; returns (and attaches) its miss stats.

        The embedded record is the run's full provenance with the
        session-specific ``outputs`` block cleared (a cache entry is not a
        user output) plus the ``cache`` block the next :meth:`get` verifies.
        The caller's :class:`~repro.core.session.RunResult` is not mutated
        beyond attaching ``cache_stats``.

        A failing store (read-only root, full disk) must never lose a run
        that already reconstructed successfully: the error is logged, the
        run simply stays uncached, and ``None`` is returned — the exact
        mirror of :meth:`get` failing to a miss.
        """
        from repro.io.image_stack import save_depth_resolved

        path = self._run_path(key)
        digest = run.result.content_digest()
        stored_unix = time.time()
        record = run._run_record()
        record["outputs"] = {"output_path": None, "text_path": None, "profile_pixels": None}
        record[CACHE_RECORD_KEY] = {
            "format": CACHE_FORMAT_VERSION,
            "key": key,
            "stored_unix": stored_unix,
            "data_sha256": digest,
        }
        try:
            self._atomic_write(
                path, lambda tmp: save_depth_resolved(tmp, run.result, run_record=record)
            )
        except Exception as exc:
            _LOG.warning(
                "cache: failed to store %s (%s: %s); serving the run uncached",
                path, type(exc).__name__, exc,
            )
            return None
        with self._lock:
            self.n_stores += 1
        _LOG.debug("cache: stored %s", path)
        stats = CacheStats(
            key=key, hit=False, path=path, stored_unix=stored_unix, digest=digest
        )
        run.cache_stats = stats
        run.bind_cache(self)
        return stats

    # ------------------------------------------------------------------ #
    # analysis memoization
    def analyze(self, run, pipeline):
        """Apply *pipeline* to *run*, memoized per (run key, pipeline signature).

        Only runs that came through this cache (``run.cache_stats`` present)
        can be memoized — the run key is what anchors the analysis to its
        input.  Unverifiable memo entries are repaired exactly like run
        entries: deleted, recomputed, re-stored.
        """
        from repro.core.ops import AnalysisResult

        if getattr(run, "cache_stats", None) is None:
            return pipeline.apply(run)
        memo_key = hashlib.sha256(
            f"{run.cache_stats.key}:{pipeline.signature()}".encode("utf-8")
        ).hexdigest()
        path = self._analysis_path(memo_key)
        if os.path.isfile(path):
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    document = json.load(fh)
                outcome = AnalysisResult(
                    results=list(document["results"]),
                    run=document["provenance"].get("run"),
                )
                with self._lock:
                    self.n_hits += 1
                return outcome
            except (ValueError, KeyError, TypeError, OSError) as exc:
                _LOG.warning("cache: repairing unusable analysis memo %s (%s)", path, exc)
                self._discard(path)
                with self._lock:
                    self.n_repaired += 1
        with self._lock:
            self.n_misses += 1
        outcome = pipeline.apply(run)
        document = json.dumps(outcome.to_dict(), sort_keys=True, indent=2)

        def _write(tmp: str) -> None:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(document)

        try:
            self._atomic_write(path, _write)
        except Exception as exc:  # an unwritable memo must not lose the analysis
            _LOG.warning(
                "cache: failed to store analysis memo %s (%s: %s)",
                path, type(exc).__name__, exc,
            )
            return outcome
        with self._lock:
            self.n_stores += 1
        return outcome

    # ------------------------------------------------------------------ #
    # node-level memoization (the analysisgraph engine)
    def node_memo_key(self, run_key: str, node_signature: str) -> str:
        """The storage key for one graph node's value on one run.

        Prefixed distinctly from whole-pipeline memo keys so a node memo and
        a pipeline memo can never collide on the same document, even when a
        single-node graph and a single-op pipeline share their op sequence.
        """
        return hashlib.sha256(
            f"node:{run_key}:{node_signature}".encode("utf-8")
        ).hexdigest()

    def memo_get(self, memo_key: str) -> Optional[Dict]:
        """Load the node-memo document stored under *memo_key*, or ``None``.

        Node memos live beside the whole-pipeline analysis memos under
        ``<root>/analysis/`` but carry ``{"kind": "node_memo", "value": ...}``
        documents; anything unparsable or of the wrong shape is repaired
        (deleted) exactly like a corrupt run entry and reported as a miss.
        """
        path = self._analysis_path(memo_key)
        if not os.path.isfile(path):
            with self._lock:
                self.n_misses += 1
            return None
        try:
            with open(path, "r", encoding="utf-8") as fh:
                document = json.load(fh)
            if not isinstance(document, dict) or document.get("kind") != "node_memo" \
                    or "value" not in document:
                raise ValueError("not a node-memo document")
            with self._lock:
                self.n_hits += 1
            return document
        except (ValueError, KeyError, TypeError, OSError) as exc:
            _LOG.warning("cache: repairing unusable node memo %s (%s)", path, exc)
            self._discard(path)
            with self._lock:
                self.n_repaired += 1
                self.n_misses += 1
            return None

    def memo_put(self, memo_key: str, document: Dict) -> bool:
        """Store a node-memo *document* under *memo_key*; ``False`` on failure.

        Mirrors :meth:`analyze`'s store semantics: an unwritable memo is
        logged and skipped — it must never fail the analysis that produced
        the value.
        """
        payload = dict(document)
        payload["kind"] = "node_memo"
        path = self._analysis_path(memo_key)
        text = json.dumps(payload, sort_keys=True, indent=2)

        def _write(tmp: str) -> None:
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(text)

        try:
            self._atomic_write(path, _write)
        except Exception as exc:
            _LOG.warning(
                "cache: failed to store node memo %s (%s: %s)",
                path, type(exc).__name__, exc,
            )
            return False
        with self._lock:
            self.n_stores += 1
        return True

    # ------------------------------------------------------------------ #
    # administration (the repro-cache CLI surface)
    def counters(self) -> Dict:
        """This cache object's probe counters as one JSON-safe record.

        The structured twin of the ``n_hits``/``n_misses``/... attributes:
        long-lived consumers (the ``repro-serve`` ``/metrics`` endpoint, the
        CLI ``stats`` block) read one dict instead of reaching into
        attributes one by one.  ``hit_rate`` is derived over every probe this
        object ever made (``None`` before the first probe).
        """
        with self._lock:  # one coherent snapshot, not four racing reads
            hits, misses = self.n_hits, self.n_misses
            stores, repaired = self.n_stores, self.n_repaired
        probes = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "stores": stores,
            "repaired": repaired,
            "probes": probes,
            "hit_rate": (hits / probes) if probes else None,
        }

    def stats(self) -> Dict:
        """JSON-safe snapshot of what the cache root currently holds."""
        runs = self._entry_paths("runs")
        analyses = self._entry_paths("analysis")
        sizes: List[int] = []
        mtimes: List[float] = []
        for path in runs + analyses:
            try:
                stat = os.stat(path)
            except OSError:
                continue  # pruned by a concurrent session mid-listing
            sizes.append(stat.st_size)
            mtimes.append(stat.st_mtime)
        return {
            "root": self.root,
            "n_runs": len(runs),
            "n_analyses": len(analyses),
            "n_orphaned_tmp": len(self._tmp_paths()),
            "total_bytes": int(sum(sizes)),
            "oldest_unix": min(mtimes) if mtimes else None,
            "newest_unix": max(mtimes) if mtimes else None,
            "session": self.counters(),
        }

    def _listed_entries(self) -> List[Tuple[float, int, str]]:
        """Every entry as ``(mtime, size, path)``, oldest first."""
        out: List[Tuple[float, int, str]] = []
        for path in self._entry_paths("runs") + self._entry_paths("analysis"):
            try:
                stat = os.stat(path)
            except OSError:
                continue
            out.append((stat.st_mtime, stat.st_size, path))
        out.sort()
        return out

    def prune(
        self,
        max_bytes: Optional[int] = None,
        older_than_s: Optional[float] = None,
    ) -> Dict:
        """Delete old entries; returns ``{"removed": n, "freed_bytes": b}``.

        ``older_than_s`` removes entries whose mtime is more than that many
        seconds in the past; ``max_bytes`` then evicts oldest-first until the
        remaining total fits.  With neither bound only orphaned temp files
        are swept (any maintenance pass reclaims crashed writers' leftovers,
        age-gated so a live concurrent store is never touched).
        """
        entries = self._listed_entries()
        removed = 0
        freed = 0
        self._sweep_tmp(min_age_s=3600.0)
        now = time.time()
        if older_than_s is not None:
            cutoff = now - float(older_than_s)
            keep: List[Tuple[float, int, str]] = []
            for mtime, size, path in entries:
                if mtime < cutoff:
                    self._discard(path)
                    removed += 1
                    freed += size
                else:
                    keep.append((mtime, size, path))
            entries = keep
        if max_bytes is not None:
            total = sum(size for _mtime, size, _path in entries)
            for _mtime, size, path in entries:  # oldest first
                if total <= int(max_bytes):
                    break
                self._discard(path)
                removed += 1
                freed += size
                total -= size
        if removed:
            _LOG.info("cache: pruned %d entr(ies), freed %d bytes", removed, freed)
        return {"removed": removed, "freed_bytes": freed}

    def clear(self) -> Dict:
        """Delete every entry (runs, analyses and any orphaned temp file)."""
        self._sweep_tmp(min_age_s=0.0)
        return self.prune(max_bytes=0)

    def verify(self) -> Dict:
        """Check every entry end-to-end; delete (repair) the unverifiable.

        Run entries are fully loaded and digest-checked through the same
        path a hit takes; analysis memos are parsed.  Returns counts plus
        the repaired paths, so operators can see *what* was bad.
        """
        checked = 0
        repaired: List[str] = []
        for path in self._entry_paths("runs"):
            checked += 1
            before = self.n_repaired
            key = os.path.splitext(os.path.basename(path))[0]
            self.get(key)
            if self.n_repaired > before:
                repaired.append(path)
        for path in self._entry_paths("analysis"):
            checked += 1
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    document = json.load(fh)
                if isinstance(document, dict) and document.get("kind") == "node_memo":
                    if "value" not in document:
                        raise ValueError("node memo missing value block")
                elif "results" not in document or "provenance" not in document:
                    raise ValueError("missing results/provenance blocks")
            except (ValueError, OSError):
                self._discard(path)
                with self._lock:
                    self.n_repaired += 1
                repaired.append(path)
        return {"checked": checked, "n_repaired": len(repaired), "repaired": repaired}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache(root={self.root!r})"


def resolve_cache(value, session_cache: Optional[ResultCache] = None) -> Optional[ResultCache]:
    """Normalize a ``cache=`` argument into a :class:`ResultCache` or ``None``.

    ``None`` defers to the session-level cache (itself ``None`` for plain
    sessions); ``False`` disables caching even on a cached session; ``True``
    selects the default root; a string/path names a root; a prebuilt
    :class:`ResultCache` is used as-is.
    """
    if value is None:
        return session_cache
    if value is False:
        return None
    if value is True:
        return ResultCache()
    if isinstance(value, ResultCache):
        return value
    if isinstance(value, (str, os.PathLike)):
        return ResultCache(os.fspath(value))
    raise ValidationError(
        f"cache= expects True/False, a cache root path or a ResultCache, "
        f"got {type(value).__name__}"
    )

"""Core depth-reconstruction library (the paper's primary contribution).

The public entry point is the fluent :func:`~repro.core.session.session`
builder (``repro.session(grid=...).on("gpusim").run(repro.open(x))``), which
turns anything :func:`~repro.core.source.open` understands — a
:class:`~repro.core.stack.WireScanStack`, a file, a glob, an
ndarray+geometry — into a :class:`~repro.core.result.DepthResolvedStack`
wrapped in a provenance-carrying :class:`~repro.core.session.RunResult`.
The results side mirrors it: :meth:`RunResult.save` persists the stack with
its full run record, :func:`~repro.core.session.load` reconstructs it
losslessly, and named analysis ops (:mod:`repro.core.ops`) chain into
immutable pipelines via :func:`~repro.core.ops.analysis`.  Backends plug in
through :mod:`repro.core.registry`, analysis ops through
:func:`~repro.core.ops.register_op`.  The lower-level
pieces — depth mapping, trapezoid response, histogram accumulation, array
layouts, row-chunk planning and the execution engine — are exposed for
tests, benchmarks and users who want to compose them differently.
:class:`~repro.core.reconstruction.DepthReconstructor` remains as a
deprecated shim.
"""

from repro.core.depth_grid import DepthGrid
from repro.core.stack import WireScanStack
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.config import ReconstructionConfig, DifferenceMode
from repro.core.depth_mapping import (
    pixel_yz_to_depth,
    pixel_xyz_to_depth,
    index_to_beam_depth,
    depth_to_index,
)
from repro.core.trapezoid import (
    trapezoid_from_depths,
    trapezoid_height,
    trapezoid_area,
    trapezoid_bin_overlaps,
)
from repro.core.layouts import Flat1DLayout, Pointer3DLayout, get_layout
from repro.core.chunking import ChunkPlan, plan_row_chunks
from repro.core.histogram import DepthHistogram
from repro.core.engine import (
    ChunkExecutor,
    ChunkSource,
    ExecutionPlan,
    StackChunkSource,
    build_execution_plan,
    execute,
    execute_backend,
)
from repro.core.registry import (
    BackendInfo,
    available_backends,
    backends,
    get_backend,
    register_backend,
    register_backend_info,
    unregister_backend,
)
from repro.core.cache import (
    CacheStats,
    ResultCache,
    compute_cache_key,
    default_cache_root,
)
from repro.core.source import BatchSource, FileSource, Source, StackSource, open
from repro.core.session import BatchRunResult, RunResult, Session, load, session
from repro.core.workerpool import (
    SlabArena,
    WorkerPool,
    pool,
    shared_pool,
    shutdown_shared_pool,
)
from repro.core.reconstruction import DepthReconstructor
from repro.core.analysis import (
    find_profile_peaks,
    detect_grain_boundaries,
    depth_resolution_estimate,
)
# NOTE: the ops module's `analysis` and `ops` callables are deliberately NOT
# imported here — binding them on this package would shadow the
# repro.core.analysis and repro.core.ops submodules.  They are re-exported at
# the top level as repro.analysis / repro.ops, where no submodule collides.
from repro.core.ops import (
    AnalysisPipeline,
    AnalysisResult,
    BatchAnalysisResult,
    OpInfo,
    available_ops,
    register_op,
    register_op_info,
    register_reduce_op,
    unregister_op,
)

__all__ = [
    "DepthGrid",
    "WireScanStack",
    "DepthResolvedStack",
    "ReconstructionReport",
    "ReconstructionConfig",
    "DifferenceMode",
    "pixel_yz_to_depth",
    "pixel_xyz_to_depth",
    "index_to_beam_depth",
    "depth_to_index",
    "trapezoid_from_depths",
    "trapezoid_height",
    "trapezoid_area",
    "trapezoid_bin_overlaps",
    "Flat1DLayout",
    "Pointer3DLayout",
    "get_layout",
    "ChunkPlan",
    "plan_row_chunks",
    "DepthHistogram",
    "ChunkExecutor",
    "ChunkSource",
    "ExecutionPlan",
    "StackChunkSource",
    "build_execution_plan",
    "execute",
    "execute_backend",
    "DepthReconstructor",
    "BackendInfo",
    "available_backends",
    "backends",
    "get_backend",
    "register_backend",
    "register_backend_info",
    "unregister_backend",
    "Source",
    "StackSource",
    "FileSource",
    "BatchSource",
    "ResultCache",
    "CacheStats",
    "compute_cache_key",
    "default_cache_root",
    # "open" is public API (repro.core.open) but deliberately absent from
    # __all__ so star-imports never shadow the builtin open
    "Session",
    "RunResult",
    "BatchRunResult",
    "session",
    "load",
    "WorkerPool",
    "SlabArena",
    "pool",
    "shared_pool",
    "shutdown_shared_pool",
    "find_profile_peaks",
    "detect_grain_boundaries",
    "depth_resolution_estimate",
    "AnalysisPipeline",
    "AnalysisResult",
    "BatchAnalysisResult",
    "OpInfo",
    "available_ops",
    "register_op",
    "register_op_info",
    "register_reduce_op",
    "unregister_op",
]

"""Core depth-reconstruction library (the paper's primary contribution).

The public entry point is :class:`~repro.core.reconstruction.DepthReconstructor`
(configured by :class:`~repro.core.config.ReconstructionConfig`), which turns a
:class:`~repro.core.stack.WireScanStack` of detector images into a
:class:`~repro.core.result.DepthResolvedStack`.  The lower-level pieces —
depth mapping, trapezoid response, histogram accumulation, array layouts,
row-chunk planning and the execution backends — are exposed for tests,
benchmarks and users who want to compose them differently.
"""

from repro.core.depth_grid import DepthGrid
from repro.core.stack import WireScanStack
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.config import ReconstructionConfig, DifferenceMode
from repro.core.depth_mapping import (
    pixel_yz_to_depth,
    pixel_xyz_to_depth,
    index_to_beam_depth,
    depth_to_index,
)
from repro.core.trapezoid import (
    trapezoid_from_depths,
    trapezoid_height,
    trapezoid_area,
    trapezoid_bin_overlaps,
)
from repro.core.layouts import Flat1DLayout, Pointer3DLayout, get_layout
from repro.core.chunking import ChunkPlan, plan_row_chunks
from repro.core.histogram import DepthHistogram
from repro.core.engine import (
    ChunkExecutor,
    ChunkSource,
    ExecutionPlan,
    StackChunkSource,
    build_execution_plan,
    execute,
    execute_backend,
)
from repro.core.reconstruction import DepthReconstructor
from repro.core.backends import available_backends, get_backend
from repro.core.analysis import (
    find_profile_peaks,
    detect_grain_boundaries,
    depth_resolution_estimate,
)

__all__ = [
    "DepthGrid",
    "WireScanStack",
    "DepthResolvedStack",
    "ReconstructionReport",
    "ReconstructionConfig",
    "DifferenceMode",
    "pixel_yz_to_depth",
    "pixel_xyz_to_depth",
    "index_to_beam_depth",
    "depth_to_index",
    "trapezoid_from_depths",
    "trapezoid_height",
    "trapezoid_area",
    "trapezoid_bin_overlaps",
    "Flat1DLayout",
    "Pointer3DLayout",
    "get_layout",
    "ChunkPlan",
    "plan_row_chunks",
    "DepthHistogram",
    "ChunkExecutor",
    "ChunkSource",
    "ExecutionPlan",
    "StackChunkSource",
    "build_execution_plan",
    "execute",
    "execute_backend",
    "DepthReconstructor",
    "available_backends",
    "get_backend",
    "find_profile_peaks",
    "detect_grain_boundaries",
    "depth_resolution_estimate",
]

"""Backend interface.

Since the engine refactor a backend is a thin shell: it names itself in the
registry (:mod:`repro.core.registry` — the pluggable table shared by built-in
and out-of-tree backends alike) and supplies a
:class:`~repro.core.engine.ChunkExecutor` with the per-chunk compute.  The
plan → execute → reduce → report control flow lives once in
:mod:`repro.core.engine`; ``Backend.reconstruct`` just wraps an in-memory
stack in a :class:`~repro.core.engine.StackChunkSource` and runs the engine.

``register_backend`` / ``get_backend`` / ``available_backends`` are
re-exported from the registry module for backwards compatibility.
"""

from __future__ import annotations

import abc
from typing import Optional, Tuple

import numpy as np

from repro.core.config import ReconstructionConfig
from repro.core.engine import ChunkExecutor, StackChunkSource, execute
from repro.core.kernels import KernelContext
from repro.core.registry import available_backends, get_backend, register_backend
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.stack import WireScanStack

__all__ = ["Backend", "register_backend", "get_backend", "available_backends", "build_kernel_context"]


def build_kernel_context(
    stack: WireScanStack,
    config: ReconstructionConfig,
    row_start: int = 0,
    row_stop: Optional[int] = None,
    background: Optional[np.ndarray] = None,
) -> KernelContext:
    """Assemble the kernel inputs for detector rows ``row_start:row_stop``.

    A convenience wrapper over :func:`repro.core.engine.build_chunk_context`
    for in-memory stacks — the host-side preparation performed before each
    kernel launch: slice the image cube, look up the pixel-edge coordinates
    of the selected rows, and collect the wire positions.

    When ``config.subtract_background`` is set the per-image background is
    the median over the **whole** image, not over the chunk's rows — so every
    chunk (and therefore every backend, however it chunks) subtracts the same
    levels.  Pass *background* (shape ``(n_positions, 1, 1)``) to reuse
    levels computed once per run, e.g. by
    :func:`repro.core.engine.compute_stack_background`.
    """
    from repro.core.engine import build_chunk_context, compute_stack_background

    source = StackChunkSource(stack)
    row_stop = stack.n_rows if row_stop is None else row_stop
    if config.subtract_background and background is None:
        background = compute_stack_background(source, config)
    return build_chunk_context(
        source,
        config,
        row_start,
        row_stop,
        background=background if config.subtract_background else None,
    )


class Backend(abc.ABC):
    """Abstract reconstruction backend (a named executor factory)."""

    #: registry name; subclasses must override
    name: str = ""

    @abc.abstractmethod
    def make_executor(self, config: ReconstructionConfig) -> ChunkExecutor:
        """Build the per-run executor carrying this backend's chunk compute."""

    def reconstruct(
        self, stack: WireScanStack, config: ReconstructionConfig
    ) -> Tuple[DepthResolvedStack, ReconstructionReport]:
        """Reconstruct *stack* according to *config* through the shared engine.

        Returns the depth-resolved stack and a timing/accounting report.
        """
        return execute(StackChunkSource(stack), config, self.make_executor(config))

    # ------------------------------------------------------------------ #
    @staticmethod
    def count_active_elements(stack: WireScanStack, config: ReconstructionConfig) -> int:
        """Number of (pixel, step) elements that pass the mask and cutoff.

        Uses the stack's cached difference cube, so repeated calls (e.g. one
        per backend in a comparison run) do not recompute it.
        """
        diffs = stack.differences(cached=True)
        active = np.abs(diffs) > config.intensity_cutoff
        if stack.pixel_mask is not None:
            active &= stack.pixel_mask[None, :, :]
        return int(np.count_nonzero(active))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

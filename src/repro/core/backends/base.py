"""Backend interface and registry."""

from __future__ import annotations

import abc
from typing import Dict, List, Optional, Tuple, Type

import numpy as np

from repro.core.config import ReconstructionConfig
from repro.core.kernels import KernelContext
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.stack import WireScanStack
from repro.utils.validation import ValidationError

__all__ = ["Backend", "register_backend", "get_backend", "available_backends", "build_kernel_context"]

_REGISTRY: Dict[str, Type["Backend"]] = {}


def register_backend(cls: Type["Backend"]) -> Type["Backend"]:
    """Class decorator adding a backend to the registry under its ``name``."""
    if not getattr(cls, "name", None):
        raise ValidationError("backend classes must define a non-empty 'name'")
    _REGISTRY[cls.name] = cls
    return cls


def get_backend(name: str) -> "Backend":
    """Instantiate a backend by name."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        raise ValidationError(
            f"unknown backend {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def available_backends() -> List[str]:
    """Names of all registered backends."""
    return sorted(_REGISTRY)


def build_kernel_context(
    stack: WireScanStack,
    config: ReconstructionConfig,
    row_start: int = 0,
    row_stop: Optional[int] = None,
) -> KernelContext:
    """Assemble the kernel inputs for detector rows ``row_start:row_stop``.

    This is the host-side preparation the original program performs before
    each kernel launch: slice the image cube, look up the pixel-edge
    coordinates of the selected rows, and collect the wire positions.
    """
    row_stop = stack.n_rows if row_stop is None else row_stop
    if not (0 <= row_start < row_stop <= stack.n_rows):
        raise ValidationError(f"invalid row range [{row_start}, {row_stop})")
    rows = np.arange(row_start, row_stop)
    back_edges, front_edges = stack.detector.row_edges_yz(rows)
    images = stack.images[:, row_start:row_stop, :]
    if config.subtract_background:
        background = np.median(images, axis=(1, 2), keepdims=True)
        images = images - background
    mask = None
    if stack.pixel_mask is not None:
        mask = stack.pixel_mask[row_start:row_stop, :]
    return KernelContext(
        images=images,
        back_edge_yz=back_edges,
        front_edge_yz=front_edges,
        wire_positions_yz=stack.scan.positions,
        wire_radius=stack.scan.wire.radius,
        grid=config.grid,
        wire_edge=config.wire_edge,
        difference_mode=config.difference_mode,
        intensity_cutoff=config.intensity_cutoff,
        mask=mask,
    )


class Backend(abc.ABC):
    """Abstract reconstruction backend."""

    #: registry name; subclasses must override
    name: str = ""

    @abc.abstractmethod
    def reconstruct(
        self, stack: WireScanStack, config: ReconstructionConfig
    ) -> Tuple[DepthResolvedStack, ReconstructionReport]:
        """Reconstruct *stack* according to *config*.

        Returns the depth-resolved stack and a timing/accounting report.
        """

    # ------------------------------------------------------------------ #
    @staticmethod
    def count_active_elements(stack: WireScanStack, config: ReconstructionConfig) -> int:
        """Number of (pixel, step) elements that pass the mask and cutoff."""
        diffs = stack.differences()
        active = np.abs(diffs) > config.intensity_cutoff
        if stack.pixel_mask is not None:
            active &= stack.pixel_mask[None, :, :]
        return int(np.count_nonzero(active))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"

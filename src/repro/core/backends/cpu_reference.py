"""The scalar CPU reference backend (the paper's baseline).

Processes one (column, row, wire-step) element at a time with scalar
arithmetic, exactly as the original single-threaded CPU program does.  It is
deliberately not vectorised: it is the baseline every speed-up in the paper
(and in our benchmarks) is measured against, and it doubles as the ground
truth the faster backends are validated against.

The chunk loop, accounting and reporting live in the shared engine; this
module only supplies the scalar per-chunk compute.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

import numpy as np

from repro.core.backends.base import Backend, register_backend
from repro.core.config import ReconstructionConfig
from repro.core.engine import ChunkExecutor
from repro.core.kernels import KernelContext, depth_resolve_chunk_scalar

__all__ = ["CpuReferenceBackend", "CpuReferenceExecutor"]


class CpuReferenceExecutor(ChunkExecutor):
    """Scalar triple loop over each chunk's elements."""

    name = "cpu_reference"

    def execute_chunk(
        self, ctx: KernelContext, row_start: int, row_stop: int
    ) -> Iterable[Tuple[int, np.ndarray]]:
        partial = np.zeros((ctx.grid.n_bins, ctx.n_rows, ctx.n_cols), dtype=np.float64)
        depth_resolve_chunk_scalar(ctx, partial)
        yield row_start, partial

    def notes(self) -> List[str]:
        return ["scalar per-element loop (original CPU program)"]


@register_backend(
    "cpu_reference",
    supports_streaming=True,
    description="scalar per-element loop (the paper's original CPU program)",
)
class CpuReferenceBackend(Backend):
    """Scalar per-element reconstruction on the host CPU."""

    name = "cpu_reference"

    def make_executor(self, config: ReconstructionConfig) -> ChunkExecutor:
        return CpuReferenceExecutor()

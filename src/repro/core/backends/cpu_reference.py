"""The scalar CPU reference backend (the paper's baseline).

Processes one (column, row, wire-step) element at a time with scalar
arithmetic, exactly as the original single-threaded CPU program does.  It is
deliberately not vectorised: it is the baseline every speed-up in the paper
(and in our benchmarks) is measured against, and it doubles as the ground
truth the faster backends are validated against.
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from repro.core.backends.base import Backend, build_kernel_context, register_backend
from repro.core.config import ReconstructionConfig
from repro.core.histogram import DepthHistogram
from repro.core.kernels import depth_resolve_chunk_scalar
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.stack import WireScanStack

__all__ = ["CpuReferenceBackend"]


@register_backend
class CpuReferenceBackend(Backend):
    """Scalar per-element reconstruction on the host CPU."""

    name = "cpu_reference"

    def reconstruct(
        self, stack: WireScanStack, config: ReconstructionConfig
    ) -> Tuple[DepthResolvedStack, ReconstructionReport]:
        start = time.perf_counter()
        ctx = build_kernel_context(stack, config)
        histogram = DepthHistogram(config.grid, stack.n_rows, stack.n_cols)
        depth_resolve_chunk_scalar(ctx, histogram.data)
        wall = time.perf_counter() - start

        report = ReconstructionReport(
            backend=self.name,
            wall_time=wall,
            compute_time=wall,
            n_chunks=1,
            n_kernel_launches=0,
            n_threads_launched=0,
            n_active_pixels=self.count_active_elements(stack, config),
            n_steps=stack.n_steps,
            layout=None,
            notes=["scalar per-element loop (original CPU program)"],
        )
        result = histogram.to_result(metadata={**stack.metadata, "backend": self.name})
        return result, report

"""Multiprocessing backend: detector rows partitioned across worker processes.

A host-parallel baseline the paper does not evaluate (its CPU code is
single-threaded) but that a practitioner would reach for before buying a
GPU; it is included as an ablation point.  Each worker reconstructs a
contiguous band of detector rows with the vectorised kernel and returns its
partial depth-resolved cube; the engine stitches the bands together — depth
reconstruction is embarrassingly parallel across rows because every
(pixel, step) element writes only to its own pixel's depth profile.

The executor keeps a bounded number of chunks in flight, so a streamed
out-of-core run holds at most a few slabs in host memory regardless of how
many chunks the plan has.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.backends.base import Backend, register_backend
from repro.core.chunking import ChunkPlan, estimate_chunk_device_bytes
from repro.core.config import DifferenceMode, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.engine import (
    HOST_MEMORY_BYTES,
    ChunkExecutor,
    ChunkSource,
    ExecutionPlan,
    build_execution_plan,
    compute_stack_background,
)
from repro.core.kernels import KernelContext, depth_resolve_chunk_vectorized
from repro.geometry.wire import WireEdge

__all__ = ["MultiprocessBackend", "MultiprocessExecutor"]


def _worker_reconstruct_rows(payload: dict) -> np.ndarray:
    """Reconstruct one band of rows in a worker process.

    The payload contains only plain arrays and primitives so that pickling is
    cheap and version-stable.
    """
    grid = DepthGrid(start=payload["grid_start"], step=payload["grid_step"], n_bins=payload["grid_n_bins"])
    ctx = KernelContext(
        images=payload["images"],
        back_edge_yz=payload["back_edge_yz"],
        front_edge_yz=payload["front_edge_yz"],
        wire_positions_yz=payload["wire_positions_yz"],
        wire_radius=payload["wire_radius"],
        grid=grid,
        wire_edge=WireEdge(payload["wire_edge"]),
        difference_mode=DifferenceMode(payload["difference_mode"]),
        intensity_cutoff=payload["intensity_cutoff"],
        mask=payload["mask"],
    )
    out = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols), dtype=np.float64)
    depth_resolve_chunk_vectorized(ctx, out)
    return out


class MultiprocessExecutor(ChunkExecutor):
    """Row bands dispatched to a process pool, bounded chunks in flight."""

    name = "multiprocess"

    def __init__(self):
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pending: Deque[Tuple[int, Future]] = deque()
        self._config: Optional[ReconstructionConfig] = None
        self._n_workers = 1
        self._max_inflight = 1
        self._n_bands = 0
        self._n_threads = 0

    # ------------------------------------------------------------------ #
    def plan(self, source: ChunkSource, config: ReconstructionConfig) -> ExecutionPlan:
        """One near-equal band per worker, unless the caller fixed the chunk size.

        On an out-of-core source the band size is additionally capped by the
        engine's streaming budget: a band of ``n_rows / n_workers`` could pull
        an arbitrarily large slab into RAM, while capped uniform chunks keep
        the resident set bounded and still feed every worker through the pool.
        """
        if config.rows_per_chunk is not None:
            return build_execution_plan(source, config, strategy="multiprocess")
        n_workers = max(1, min(config.n_workers, source.n_rows))
        if source.out_of_core:
            from repro.core.chunking import plan_row_chunks
            from repro.core.engine import streaming_budget_bytes

            bounded = plan_row_chunks(
                n_rows=source.n_rows,
                n_cols=source.n_cols,
                n_positions=source.n_positions,
                n_depth_bins=config.grid.n_bins,
                device_memory_bytes=streaming_budget_bytes(source, config),
                layout=config.layout,
            ).rows_per_chunk
            band = -(-source.n_rows // n_workers)
            return build_execution_plan(
                source, config, rows_per_chunk=min(band, bounded), strategy="multiprocess"
            )
        bands = MultiprocessBackend._row_bands(source.n_rows, n_workers)
        rows_per_chunk = max(stop - start for start, stop in bands)
        chunk_plan = ChunkPlan(
            n_rows=source.n_rows,
            rows_per_chunk=rows_per_chunk,
            chunks=tuple(bands),
            bytes_per_chunk=estimate_chunk_device_bytes(
                rows_per_chunk, source.n_cols, source.n_positions, config.grid.n_bins, config.layout
            ),
            device_memory_bytes=HOST_MEMORY_BYTES,
            layout=config.layout,
            notes=("one band per worker",),
        )
        return ExecutionPlan(
            chunk_plan=chunk_plan,
            background=compute_stack_background(source, config),
            strategy="multiprocess",
        )

    def prepare(self, source: ChunkSource, config: ReconstructionConfig, plan: ExecutionPlan) -> None:
        self._config = config
        self._n_workers = max(1, min(config.n_workers, source.n_rows))
        # Slabs pending in the pool hold host memory; cap how many may be in
        # flight so a streamed run stays bounded even with many chunks.
        self._max_inflight = 2 * self._n_workers
        if self._n_workers > 1:
            self._pool = ProcessPoolExecutor(max_workers=self._n_workers)

    # ------------------------------------------------------------------ #
    @staticmethod
    def _payload(ctx: KernelContext, config: ReconstructionConfig) -> dict:
        return {
            "images": np.ascontiguousarray(ctx.images),
            "back_edge_yz": ctx.back_edge_yz,
            "front_edge_yz": ctx.front_edge_yz,
            "wire_positions_yz": ctx.wire_positions_yz,
            "wire_radius": ctx.wire_radius,
            "grid_start": config.grid.start,
            "grid_step": config.grid.step,
            "grid_n_bins": config.grid.n_bins,
            "wire_edge": int(config.wire_edge),
            "difference_mode": config.difference_mode.value,
            "intensity_cutoff": config.intensity_cutoff,
            "mask": ctx.mask,
        }

    def execute_chunk(
        self, ctx: KernelContext, row_start: int, row_stop: int
    ) -> Iterable[Tuple[int, np.ndarray]]:
        self._n_bands += 1
        self._n_threads += ctx.n_steps * ctx.n_rows * ctx.n_cols
        if self._pool is None:
            yield row_start, _worker_reconstruct_rows(self._payload(ctx, self._config))
            return
        self._pending.append((row_start, self._pool.submit(_worker_reconstruct_rows, self._payload(ctx, self._config))))
        while len(self._pending) > self._max_inflight:
            start, future = self._pending.popleft()
            yield start, future.result()

    def drain(self) -> Iterable[Tuple[int, np.ndarray]]:
        while self._pending:
            start, future = self._pending.popleft()
            yield start, future.result()

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None
        self._pending.clear()

    # ------------------------------------------------------------------ #
    def report_extras(self) -> Dict:
        return {
            "n_kernel_launches": self._n_bands,
            "n_threads_launched": self._n_threads,
        }

    def notes(self) -> List[str]:
        return [f"{self._n_workers} worker process(es), {self._n_bands} row band(s)"]


@register_backend(
    "multiprocess",
    supports_streaming=True,
    needs_workers=True,
    description="detector rows partitioned across a process pool (n_workers)",
)
class MultiprocessBackend(Backend):
    """Row-partitioned reconstruction on a process pool."""

    name = "multiprocess"

    def make_executor(self, config: ReconstructionConfig) -> ChunkExecutor:
        return MultiprocessExecutor()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _row_bands(n_rows: int, n_workers: int) -> List[Tuple[int, int]]:
        """Split ``range(n_rows)`` into ``n_workers`` near-equal contiguous bands."""
        base = n_rows // n_workers
        extra = n_rows % n_workers
        bands: List[Tuple[int, int]] = []
        start = 0
        for worker in range(n_workers):
            size = base + (1 if worker < extra else 0)
            if size == 0:
                continue
            bands.append((start, start + size))
            start += size
        return bands

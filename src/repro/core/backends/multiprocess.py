"""Multiprocessing backend: detector rows partitioned across worker processes.

A host-parallel baseline the paper does not evaluate (its CPU code is
single-threaded) but that a practitioner would reach for before buying a
GPU; it is included as an ablation point.  Each worker reconstructs a
contiguous band of detector rows with the vectorised kernel and returns its
partial depth-resolved cube; the parent stitches the bands together —
depth reconstruction is embarrassingly parallel across rows because every
(pixel, step) element writes only to its own pixel's depth profile.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from typing import List, Tuple

import numpy as np

from repro.core.backends.base import Backend, build_kernel_context, register_backend
from repro.core.config import DifferenceMode, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.histogram import DepthHistogram
from repro.core.kernels import KernelContext, depth_resolve_chunk_vectorized
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.stack import WireScanStack
from repro.geometry.wire import WireEdge

__all__ = ["MultiprocessBackend"]


def _worker_reconstruct_rows(payload: dict) -> np.ndarray:
    """Reconstruct one band of rows in a worker process.

    The payload contains only plain arrays and primitives so that pickling is
    cheap and version-stable.
    """
    grid = DepthGrid(start=payload["grid_start"], step=payload["grid_step"], n_bins=payload["grid_n_bins"])
    ctx = KernelContext(
        images=payload["images"],
        back_edge_yz=payload["back_edge_yz"],
        front_edge_yz=payload["front_edge_yz"],
        wire_positions_yz=payload["wire_positions_yz"],
        wire_radius=payload["wire_radius"],
        grid=grid,
        wire_edge=WireEdge(payload["wire_edge"]),
        difference_mode=DifferenceMode(payload["difference_mode"]),
        intensity_cutoff=payload["intensity_cutoff"],
        mask=payload["mask"],
    )
    out = np.zeros((grid.n_bins, ctx.n_rows, ctx.n_cols), dtype=np.float64)
    depth_resolve_chunk_vectorized(ctx, out)
    return out


@register_backend
class MultiprocessBackend(Backend):
    """Row-partitioned reconstruction on a process pool."""

    name = "multiprocess"

    def reconstruct(
        self, stack: WireScanStack, config: ReconstructionConfig
    ) -> Tuple[DepthResolvedStack, ReconstructionReport]:
        start = time.perf_counter()
        n_workers = max(1, min(config.n_workers, stack.n_rows))
        bands = self._row_bands(stack.n_rows, n_workers)

        payloads: List[dict] = []
        for row_start, row_stop in bands:
            ctx = build_kernel_context(stack, config, row_start, row_stop)
            payloads.append(
                {
                    "images": ctx.images,
                    "back_edge_yz": ctx.back_edge_yz,
                    "front_edge_yz": ctx.front_edge_yz,
                    "wire_positions_yz": ctx.wire_positions_yz,
                    "wire_radius": ctx.wire_radius,
                    "grid_start": config.grid.start,
                    "grid_step": config.grid.step,
                    "grid_n_bins": config.grid.n_bins,
                    "wire_edge": int(config.wire_edge),
                    "difference_mode": config.difference_mode.value,
                    "intensity_cutoff": config.intensity_cutoff,
                    "mask": ctx.mask,
                }
            )

        histogram = DepthHistogram(config.grid, stack.n_rows, stack.n_cols)
        if n_workers == 1:
            partials = [_worker_reconstruct_rows(payloads[0])]
        else:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                partials = list(pool.map(_worker_reconstruct_rows, payloads))
        for (row_start, _row_stop), partial in zip(bands, partials):
            histogram.merge_partial(partial, row_start)

        wall = time.perf_counter() - start
        report = ReconstructionReport(
            backend=self.name,
            wall_time=wall,
            compute_time=wall,
            n_chunks=len(bands),
            n_kernel_launches=len(bands),
            n_threads_launched=stack.n_steps * stack.n_rows * stack.n_cols,
            n_active_pixels=self.count_active_elements(stack, config),
            n_steps=stack.n_steps,
            layout=None,
            notes=[f"{n_workers} worker process(es), {len(bands)} row band(s)"],
        )
        result = histogram.to_result(metadata={**stack.metadata, "backend": self.name})
        return result, report

    # ------------------------------------------------------------------ #
    @staticmethod
    def _row_bands(n_rows: int, n_workers: int) -> List[Tuple[int, int]]:
        """Split ``range(n_rows)`` into ``n_workers`` near-equal contiguous bands."""
        base = n_rows // n_workers
        extra = n_rows % n_workers
        bands: List[Tuple[int, int]] = []
        start = 0
        for worker in range(n_workers):
            size = base + (1 if worker < extra else 0)
            if size == 0:
                continue
            bands.append((start, start + size))
            start += size
        return bands

"""Multiprocessing backend: detector rows partitioned across worker processes.

A host-parallel baseline the paper does not evaluate (its CPU code is
single-threaded) but that a practitioner would reach for before buying a
GPU; it is included as an ablation point.  Each worker reconstructs a
contiguous band of detector rows with the vectorised kernel; the engine
stitches the bands together — depth reconstruction is embarrassingly
parallel across rows because every (pixel, step) element writes only to its
own pixel's depth profile.

Dispatch is zero-copy by default: the executor leases input/output slabs
from a :class:`~repro.core.workerpool.SlabArena`, copies each band's image
slab into shared memory once, and the worker maps both segments by name
(:func:`_worker_reconstruct_rows` receives shm *names and shapes*, not
arrays) and writes its partial cube in place — nothing cube-sized is ever
pickled in either direction.  The legacy pickling dispatch is kept for
comparison and as a fallback (``REPRO_MP_DISPATCH=pickle``); both produce
bitwise-identical results.

The process pool itself is the persistent
:func:`~repro.core.workerpool.shared_pool`: it is reused across runs and
files (``repro.pool()`` pins and pre-warms it), so a multi-file batch pays
pool start-up once, not once per file.

The executor keeps a bounded number of chunks in flight, so a streamed
out-of-core run holds at most ``max_inflight`` slabs in host memory
regardless of how many chunks the plan has.
"""

from __future__ import annotations

import os
from collections import deque
from concurrent.futures import BrokenExecutor, Future
from multiprocessing import shared_memory
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.backends.base import Backend, register_backend
from repro.core.chunking import ChunkPlan, estimate_chunk_device_bytes
from repro.core.config import DifferenceMode, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.engine import (
    HOST_MEMORY_BYTES,
    ChunkExecutor,
    ChunkSource,
    ExecutionPlan,
    build_execution_plan,
    compute_stack_background,
)
from repro.core.kernels import KernelContext, depth_resolve_chunk_fused
from repro.core.workerpool import SlabArena, WorkerPool, shared_pool
from repro.geometry.wire import WireEdge
from repro.utils.validation import ValidationError

__all__ = ["MultiprocessBackend", "MultiprocessExecutor", "DISPATCH_ENV_VAR"]

#: Environment override for the dispatch mode ("shm" or "pickle").
DISPATCH_ENV_VAR = "REPRO_MP_DISPATCH"

_DISPATCH_MODES = ("shm", "pickle")

#: A pending chunk: (row_start, future, lease) where lease is
#: (input shm, output shm, output shape) for shm dispatch, None for pickle.
_Pending = Tuple[int, Future, Optional[Tuple[shared_memory.SharedMemory, shared_memory.SharedMemory, Tuple[int, int, int]]]]


def _kernel_payload(ctx: KernelContext, config: ReconstructionConfig) -> dict:
    """The small, cheap-to-pickle kernel parameters shared by both dispatches."""
    return {
        "back_edge_yz": ctx.back_edge_yz,
        "front_edge_yz": ctx.front_edge_yz,
        "wire_positions_yz": ctx.wire_positions_yz,
        "wire_radius": ctx.wire_radius,
        "grid_start": config.grid.start,
        "grid_step": config.grid.step,
        "grid_n_bins": config.grid.n_bins,
        "wire_edge": int(config.wire_edge),
        "difference_mode": config.difference_mode.value,
        "intensity_cutoff": config.intensity_cutoff,
        "mask": ctx.mask,
    }


def _context_from_payload(payload: dict, images: np.ndarray) -> KernelContext:
    """Rebuild the kernel context in the worker process."""
    grid = DepthGrid(
        start=payload["grid_start"], step=payload["grid_step"], n_bins=payload["grid_n_bins"]
    )
    return KernelContext(
        images=images,
        back_edge_yz=payload["back_edge_yz"],
        front_edge_yz=payload["front_edge_yz"],
        wire_positions_yz=payload["wire_positions_yz"],
        wire_radius=payload["wire_radius"],
        grid=grid,
        wire_edge=WireEdge(payload["wire_edge"]),
        difference_mode=DifferenceMode(payload["difference_mode"]),
        intensity_cutoff=payload["intensity_cutoff"],
        mask=payload["mask"],
    )


def _reconstruct_into_shared(payload: dict, in_shm, out_shm) -> None:
    """Map the slabs and run the kernel; views die on return so close() is safe."""
    images = np.ndarray(tuple(payload["images_shape"]), dtype=np.float64, buffer=in_shm.buf)
    out = np.ndarray(tuple(payload["out_shape"]), dtype=np.float64, buffer=out_shm.buf)
    ctx = _context_from_payload(payload, images)
    out[...] = 0.0  # recycled slabs carry the previous band's result
    depth_resolve_chunk_fused(ctx, out)


def _worker_reconstruct_rows(payload: dict) -> None:
    """Reconstruct one band of rows in a worker process — zero-copy dispatch.

    The payload carries shared-memory *names and shapes*, never the arrays:
    the image slab is mapped read-only-by-convention from ``images_shm`` and
    the partial cube is written in place into ``out_shm``, so nothing
    cube-sized crosses the process boundary.  The parent's arena owns
    ``unlink()``; the worker only closes its own mappings.
    """
    from repro.core.workerpool import attach_slab

    in_shm = attach_slab(payload["images_shm"])
    try:
        out_shm = attach_slab(payload["out_shm"])
        try:
            _reconstruct_into_shared(payload, in_shm, out_shm)
        finally:
            out_shm.close()
    finally:
        in_shm.close()


def _worker_reconstruct_rows_pickled(payload: dict) -> np.ndarray:
    """Legacy dispatch: arrays pickled in, partial cube pickled back."""
    ctx = _context_from_payload(payload, payload["images"])
    out = np.zeros((payload["grid_n_bins"], ctx.n_rows, ctx.n_cols), dtype=np.float64)
    depth_resolve_chunk_fused(ctx, out)
    return out


def _dispatch_mode(requested: Optional[str]) -> str:
    """Resolve the dispatch mode: explicit argument beats the environment."""
    mode = requested if requested is not None else os.environ.get(DISPATCH_ENV_VAR, "shm")
    mode = str(mode).lower()
    if mode not in _DISPATCH_MODES:
        raise ValidationError(
            f"unknown multiprocess dispatch {mode!r}; expected one of {_DISPATCH_MODES}"
        )
    return mode


class MultiprocessExecutor(ChunkExecutor):
    """Row bands dispatched to the persistent pool, bounded chunks in flight."""

    name = "multiprocess"

    def __init__(self, dispatch: Optional[str] = None):
        self._dispatch = _dispatch_mode(dispatch)
        self._pool: Optional[WorkerPool] = None
        self._arena: Optional[SlabArena] = None
        self._pending: Deque[_Pending] = deque()
        self._config: Optional[ReconstructionConfig] = None
        self._n_workers = 1
        self._max_inflight = 1
        self._n_bands = 0
        self._n_threads = 0
        #: peak number of chunks simultaneously pending in the pool
        self.peak_inflight = 0

    # ------------------------------------------------------------------ #
    @property
    def dispatch(self) -> str:
        """Resolved dispatch mode ("shm" or "pickle")."""
        return self._dispatch

    @property
    def arena(self) -> Optional[SlabArena]:
        """The run's slab arena (None before prepare / for pickle dispatch)."""
        return self._arena

    # ------------------------------------------------------------------ #
    def plan(self, source: ChunkSource, config: ReconstructionConfig) -> ExecutionPlan:
        """One near-equal band per worker, unless the caller fixed the chunk size.

        On an out-of-core source the band size is additionally capped by the
        engine's streaming budget: a band of ``n_rows / n_workers`` could pull
        an arbitrarily large slab into RAM, while capped uniform chunks keep
        the resident set bounded and still feed every worker through the pool.
        """
        if config.rows_per_chunk is not None:
            return build_execution_plan(source, config, strategy="multiprocess")
        n_workers = max(1, min(config.n_workers, source.n_rows))
        if source.out_of_core:
            from repro.core.chunking import plan_row_chunks
            from repro.core.engine import streaming_budget_bytes

            bounded = plan_row_chunks(
                n_rows=source.n_rows,
                n_cols=source.n_cols,
                n_positions=source.n_positions,
                n_depth_bins=config.grid.n_bins,
                device_memory_bytes=streaming_budget_bytes(source, config),
                layout=config.layout,
            ).rows_per_chunk
            band = -(-source.n_rows // n_workers)
            return build_execution_plan(
                source, config, rows_per_chunk=min(band, bounded), strategy="multiprocess"
            )
        bands = MultiprocessBackend._row_bands(source.n_rows, n_workers)
        rows_per_chunk = max(stop - start for start, stop in bands)
        chunk_plan = ChunkPlan(
            n_rows=source.n_rows,
            rows_per_chunk=rows_per_chunk,
            chunks=tuple(bands),
            bytes_per_chunk=estimate_chunk_device_bytes(
                rows_per_chunk, source.n_cols, source.n_positions, config.grid.n_bins, config.layout
            ),
            device_memory_bytes=HOST_MEMORY_BYTES,
            layout=config.layout,
            notes=("one band per worker",),
        )
        return ExecutionPlan(
            chunk_plan=chunk_plan,
            background=compute_stack_background(source, config),
            strategy="multiprocess",
        )

    def prepare(self, source: ChunkSource, config: ReconstructionConfig, plan: ExecutionPlan) -> None:
        self._config = config
        self._n_workers = max(1, min(config.n_workers, source.n_rows))
        # Slabs pending in the pool hold host memory; cap how many may be in
        # flight so a streamed run stays bounded even with many chunks.
        self._max_inflight = 2 * self._n_workers
        self.peak_inflight = 0
        if self._n_workers > 1:
            # the persistent pool: reused across runs and files, spawned
            # lazily on first submit, never shut down by this executor.
            # Sized by config.n_workers, NOT the row-clamped band count: a
            # batch mixing small and large files must keep hitting the same
            # pool, and a pool wider than one run's bands is harmless.
            self._pool = shared_pool(max(1, int(config.n_workers)))
            if self._dispatch == "shm":
                self._arena = SlabArena()

    # ------------------------------------------------------------------ #
    def _submit_shm(self, ctx: KernelContext, row_start: int) -> _Pending:
        """Lease slabs, copy the band in, and dispatch by shared-memory name."""
        out_shape = (self._config.grid.n_bins, ctx.n_rows, ctx.n_cols)
        in_shm = self._arena.lease(int(ctx.images.nbytes))
        out_shm = self._arena.lease(int(8 * out_shape[0] * out_shape[1] * out_shape[2]))
        in_view = np.ndarray(ctx.images.shape, dtype=np.float64, buffer=in_shm.buf)
        in_view[...] = ctx.images  # the one host-side copy, replacing pickling
        del in_view
        payload = _kernel_payload(ctx, self._config)
        payload["images_shm"] = in_shm.name
        payload["images_shape"] = tuple(ctx.images.shape)
        payload["out_shm"] = out_shm.name
        payload["out_shape"] = out_shape
        future = self._pool.submit(_worker_reconstruct_rows, payload)
        return (row_start, future, (in_shm, out_shm, out_shape))

    def _submit_pickle(self, ctx: KernelContext, row_start: int) -> _Pending:
        """Legacy dispatch: the whole slab is pickled into the pool."""
        payload = _kernel_payload(ctx, self._config)
        payload["images"] = np.ascontiguousarray(ctx.images)
        return (row_start, self._pool.submit(_worker_reconstruct_rows_pickled, payload), None)

    def _collect(self, entry: _Pending) -> Tuple[int, np.ndarray]:
        """Wait for one pending band; on failure cancel the rest and re-raise."""
        row_start, future, lease = entry
        try:
            value = future.result()
        except BaseException as exc:
            if isinstance(exc, BrokenExecutor) and self._pool is not None:
                self._pool.mark_broken()  # next run respawns the shared pool
            self._cancel_pending()
            raise
        if lease is None:
            return row_start, value
        _in_shm, out_shm, out_shape = lease
        return row_start, np.ndarray(out_shape, dtype=np.float64, buffer=out_shm.buf)

    def _release(self, entry: _Pending) -> None:
        """Recycle a collected band's slabs (after the engine merged the view)."""
        lease = entry[2]
        if lease is not None and self._arena is not None:
            in_shm, out_shm, _shape = lease
            self._arena.release(in_shm)
            self._arena.release(out_shm)

    def _cancel_pending(self) -> None:
        """Cancel every not-yet-running band instead of blocking on it.

        Bands already executing cannot be interrupted; their slabs are
        reclaimed by :meth:`close` (the arena unlinks leased segments too).
        """
        while self._pending:
            _start, future, _lease = self._pending.popleft()
            future.cancel()

    # ------------------------------------------------------------------ #
    def execute_chunk(
        self, ctx: KernelContext, row_start: int, row_stop: int
    ) -> Iterable[Tuple[int, np.ndarray]]:
        self._n_bands += 1
        self._n_threads += ctx.n_steps * ctx.n_rows * ctx.n_cols
        if self._pool is None:
            # in-process fall-back (n_workers == 1): no pool, no copies
            out = np.zeros((self._config.grid.n_bins, ctx.n_rows, ctx.n_cols), dtype=np.float64)
            depth_resolve_chunk_fused(ctx, out)
            yield row_start, out
            return
        if self._dispatch == "shm":
            self._pending.append(self._submit_shm(ctx, row_start))
        else:
            self._pending.append(self._submit_pickle(ctx, row_start))
        self.peak_inflight = max(self.peak_inflight, len(self._pending))
        # drain at >= so at most max_inflight chunks are ever resident (the
        # old > admitted max_inflight + 1 slabs)
        while len(self._pending) >= self._max_inflight:
            entry = self._pending.popleft()
            yield self._collect(entry)
            self._release(entry)

    def drain(self) -> Iterable[Tuple[int, np.ndarray]]:
        while self._pending:
            entry = self._pending.popleft()
            yield self._collect(entry)
            self._release(entry)

    def close(self) -> None:
        """Release per-run resources; the shared pool itself stays alive.

        The (now closed) arena object is kept on the executor so tests and
        diagnostics can audit its accounting — every segment it ever created
        is unlinked by ``close()``.
        """
        self._cancel_pending()
        if self._arena is not None:
            self._arena.close()
        self._pool = None

    # ------------------------------------------------------------------ #
    def report_extras(self) -> Dict:
        return {
            "n_kernel_launches": self._n_bands,
            "n_threads_launched": self._n_threads,
        }

    def notes(self) -> List[str]:
        mode = self._dispatch if self._n_workers > 1 else "in-process"
        return [
            f"{self._n_workers} worker process(es), {self._n_bands} row band(s), "
            f"{mode} dispatch"
        ]


@register_backend(
    "multiprocess",
    supports_streaming=True,
    needs_workers=True,
    description="detector rows partitioned across a persistent process pool (n_workers)",
)
class MultiprocessBackend(Backend):
    """Row-partitioned reconstruction on the persistent shared process pool."""

    name = "multiprocess"

    def make_executor(self, config: ReconstructionConfig) -> ChunkExecutor:
        return MultiprocessExecutor()

    # ------------------------------------------------------------------ #
    @staticmethod
    def _row_bands(n_rows: int, n_workers: int) -> List[Tuple[int, int]]:
        """Split ``range(n_rows)`` into ``n_workers`` near-equal contiguous bands."""
        base = n_rows // n_workers
        extra = n_rows % n_workers
        bands: List[Tuple[int, int]] = []
        start = 0
        for worker in range(n_workers):
            size = base + (1 if worker < extra else 0)
            if size == 0:
                continue
            bands.append((start, start + size))
            start += size
        return bands

"""Execution backends for the depth reconstruction.

Five backends implement the same reconstruction with different execution
strategies:

* ``cpu_reference`` — the scalar per-element loop (the paper's original CPU
  program);
* ``vectorized`` — NumPy data-parallel execution on the host (its executor
  strategy — serial, threads or processes — is selected by
  ``config.executor``);
* ``gpusim`` — the CUDA-style design of the paper on the simulated device:
  row-chunk streaming, explicit host↔device transfers, grid/block kernel
  launches and atomic accumulation;
* ``multiprocess`` — detector rows partitioned across a process pool;
* ``threaded`` — detector row bands on a shared GIL-releasing thread pool.

All backends must produce numerically identical results (the test-suite
cross-checks them); only their performance characteristics differ.

Every backend routes through the shared execution engine
(:mod:`repro.core.engine`) and contributes only its per-chunk compute as a
:class:`~repro.core.engine.ChunkExecutor`.
"""

from repro.core.backends.base import Backend, available_backends, get_backend, register_backend
from repro.core.backends.cpu_reference import CpuReferenceBackend, CpuReferenceExecutor
from repro.core.backends.vectorized import VectorizedBackend, VectorizedExecutor
from repro.core.backends.gpusim import GpuSimBackend, GpuSimExecutor
from repro.core.backends.multiprocess import MultiprocessBackend, MultiprocessExecutor
from repro.core.backends.threaded import ThreadedBackend, ThreadedExecutor

__all__ = [
    "Backend",
    "available_backends",
    "get_backend",
    "register_backend",
    "CpuReferenceBackend",
    "CpuReferenceExecutor",
    "VectorizedBackend",
    "VectorizedExecutor",
    "GpuSimBackend",
    "GpuSimExecutor",
    "MultiprocessBackend",
    "MultiprocessExecutor",
    "ThreadedBackend",
    "ThreadedExecutor",
]

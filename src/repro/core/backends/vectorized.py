"""Vectorised host backend.

Runs the whole reconstruction as NumPy array operations in host memory — the
fastest single-process path when the data already fits in RAM.  It is the
numerical twin of the GPU-sim backend without the device-memory constraint
and transfer accounting.
"""

from __future__ import annotations

import time
from typing import Tuple

from repro.core.backends.base import Backend, build_kernel_context, register_backend
from repro.core.config import ReconstructionConfig
from repro.core.histogram import DepthHistogram
from repro.core.kernels import depth_resolve_chunk_vectorized
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.stack import WireScanStack

__all__ = ["VectorizedBackend"]


@register_backend
class VectorizedBackend(Backend):
    """NumPy data-parallel reconstruction on the host."""

    name = "vectorized"

    def reconstruct(
        self, stack: WireScanStack, config: ReconstructionConfig
    ) -> Tuple[DepthResolvedStack, ReconstructionReport]:
        start = time.perf_counter()
        ctx = build_kernel_context(stack, config)
        histogram = DepthHistogram(config.grid, stack.n_rows, stack.n_cols)
        depth_resolve_chunk_vectorized(ctx, histogram.data)
        wall = time.perf_counter() - start

        report = ReconstructionReport(
            backend=self.name,
            wall_time=wall,
            compute_time=wall,
            n_chunks=1,
            n_kernel_launches=1,
            n_threads_launched=stack.n_steps * stack.n_rows * stack.n_cols,
            n_active_pixels=self.count_active_elements(stack, config),
            n_steps=stack.n_steps,
            layout=None,
            notes=["host NumPy vectorised execution"],
        )
        result = histogram.to_result(metadata={**stack.metadata, "backend": self.name})
        return result, report

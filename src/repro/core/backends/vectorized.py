"""Vectorised host backend.

Runs the reconstruction as NumPy array operations in host memory — the
fastest single-process path when the working set fits in RAM.  It is the
numerical twin of the GPU-sim backend without the device-memory constraint
and transfer accounting.

The chunk loop, accounting and reporting live in the shared engine; this
module only supplies the vectorised per-chunk compute.  The per-chunk kernel
is the fused single-pass form (:func:`depth_resolve_chunk_fused`), bitwise
identical to the scalar reference; ``config.executor`` selects where it runs
(serial / threads / processes) via :func:`make_strategy_executor`.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.core.backends.base import Backend, register_backend
from repro.core.config import ReconstructionConfig
from repro.core.engine import ChunkExecutor, make_strategy_executor
from repro.core.kernels import KernelContext, depth_resolve_chunk_fused

__all__ = ["VectorizedBackend", "VectorizedExecutor"]


class VectorizedExecutor(ChunkExecutor):
    """NumPy data-parallel execution of each chunk, serial in the caller."""

    name = "vectorized"

    def __init__(self):
        self._n_launches = 0
        self._n_threads = 0

    def execute_chunk(
        self, ctx: KernelContext, row_start: int, row_stop: int
    ) -> Iterable[Tuple[int, np.ndarray]]:
        partial = np.zeros((ctx.grid.n_bins, ctx.n_rows, ctx.n_cols), dtype=np.float64)
        depth_resolve_chunk_fused(ctx, partial)
        self._n_launches += 1
        self._n_threads += ctx.n_steps * ctx.n_rows * ctx.n_cols
        yield row_start, partial

    def report_extras(self) -> Dict:
        return {
            "n_kernel_launches": self._n_launches,
            "n_threads_launched": self._n_threads,
        }

    def notes(self) -> List[str]:
        return ["host NumPy fused single-pass execution"]


@register_backend(
    "vectorized",
    supports_streaming=True,
    description="NumPy data-parallel execution on the host (default)",
)
class VectorizedBackend(Backend):
    """NumPy data-parallel reconstruction on the host."""

    name = "vectorized"

    def make_executor(self, config: ReconstructionConfig) -> ChunkExecutor:
        return make_strategy_executor(config)

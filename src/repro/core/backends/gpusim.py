"""GPU-sim backend: the paper's CUDA design on the simulated device.

Follows the structure of the original CUDA program step by step:

1. plan how many detector rows fit on the device per chunk (Fig. 2);
2. for each chunk: allocate device buffers, ``cudaMemcpy`` the image slab
   (with the configured array layout — flat 1-D or pointer-based 3-D),
   geometry tables and the output slab host→device;
3. launch the ``setTwo`` kernel over a ``(cols, rows, steps)`` thread
   lattice;
4. copy the depth-resolved slab back device→host and hand it to the engine,
   which stitches it into the full output;
5. free the chunk's allocations and continue with the next rows.

The chunk loop itself lives in the shared engine; this module supplies the
per-chunk upload → launch → download compute and keeps the transfer/kernel
accounting as executor hooks.  The report separates modelled transfer time
from modelled kernel time, which is what the Fig. 4 layout comparison and
the scalability argument of Figs. 8/9 are about.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.backends.base import Backend, register_backend
from repro.core.config import ReconstructionConfig
from repro.core.engine import ChunkExecutor, ChunkSource, ExecutionPlan, build_execution_plan
from repro.core.kernels import KernelContext, make_set_two_kernel
from repro.core.layouts import get_layout
from repro.cudasim.device import Device, DeviceProperties, TESLA_M2070
from repro.cudasim.kernel import LaunchConfig, launch
from repro.cudasim.transfer import memcpy_device_to_host, memcpy_host_to_device

__all__ = ["GpuSimBackend", "GpuSimExecutor"]


class GpuSimExecutor(ChunkExecutor):
    """Upload → launch → download execution of each chunk on the simulated device."""

    name = "gpusim"

    def __init__(
        self,
        device: Optional[Device] = None,
        device_properties: DeviceProperties = TESLA_M2070,
        block_dim: Tuple[int, int, int] = (32, 4, 8),
        launch_mode: str = "vectorized",
    ):
        self._external_device = device
        self._device_properties = device_properties
        self.block_dim = block_dim
        self.launch_mode = launch_mode
        self.device: Optional[Device] = None
        self._layout = None
        self._kernel = None
        self._h2d_bytes = 0
        self._d2h_bytes = 0
        self._n_launches = 0
        self._n_threads = 0

    # ------------------------------------------------------------------ #
    def _make_device(self, config: ReconstructionConfig) -> Device:
        if self._external_device is not None:
            self._external_device.reset_clock()
            return self._external_device
        return Device(self._device_properties, memory_limit_bytes=config.device_memory_limit)

    def plan(self, source: ChunkSource, config: ReconstructionConfig) -> ExecutionPlan:
        """Chunks sized to the simulated device memory (the Fig. 2 constraint)."""
        self.device = self._make_device(config)
        self._layout = get_layout(config.layout)
        self._kernel = make_set_two_kernel(
            extra_flops_per_thread=self._layout.index_arithmetic_flops
        )
        return build_execution_plan(
            source,
            config,
            device_memory_bytes=self.device.memory.capacity_bytes,
            strategy="gpusim",
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _batch_context(ctx: KernelContext, device_images: np.ndarray, step_start: int, step_stop: int):
        """Kernel context restricted to wire steps ``step_start:step_stop``.

        The image view covers positions ``step_start .. step_stop`` inclusive
        (a step needs both of its bounding wire positions) and reads from the
        *device-side* slab uploaded for the chunk.
        """
        return KernelContext(
            images=device_images[step_start:step_stop + 1],
            back_edge_yz=ctx.back_edge_yz,
            front_edge_yz=ctx.front_edge_yz,
            wire_positions_yz=ctx.wire_positions_yz[step_start:step_stop + 1],
            wire_radius=ctx.wire_radius,
            grid=ctx.grid,
            wire_edge=ctx.wire_edge,
            difference_mode=ctx.difference_mode,
            intensity_cutoff=ctx.intensity_cutoff,
            mask=ctx.mask,
        )

    def execute_chunk(
        self, ctx: KernelContext, row_start: int, row_stop: int
    ) -> Iterable[Tuple[int, np.ndarray]]:
        device = self.device
        grid = ctx.grid
        chunk_rows = row_stop - row_start

        # -- host -> device -------------------------------------------------
        upload = self._layout.upload(device, ctx.images)
        self._h2d_bytes += upload.bytes_transferred

        geometry_host = np.concatenate(
            [
                ctx.back_edge_yz.reshape(-1),
                ctx.front_edge_yz.reshape(-1),
                ctx.wire_positions_yz.reshape(-1),
            ]
        )
        geometry_buf = device.memory.allocate(geometry_host.shape, geometry_host.dtype)
        memcpy_host_to_device(device, geometry_buf, geometry_host, label="H2D:geometry")
        self._h2d_bytes += int(geometry_host.nbytes)

        out_buf = device.memory.allocate((grid.n_bins, chunk_rows, ctx.n_cols), np.float64)
        out_buf.fill(0.0)

        # -- kernel launches -------------------------------------------------
        # The kernel reads the uploaded slab through the layout (as the CUDA
        # kernel would read through the device pointer(s)).  The Tesla M2070
        # only supports a one-deep grid z dimension, so the wire-step axis is
        # covered by several launches when it exceeds blockDim.z * gridDim.z.
        device_images = self._layout.read_cube(upload, (ctx.n_positions, chunk_rows, ctx.n_cols))
        steps_per_launch = self.block_dim[2] * device.properties.max_grid_dim[2]
        for step_start in range(0, ctx.n_steps, steps_per_launch):
            step_stop = min(step_start + steps_per_launch, ctx.n_steps)
            batch_ctx = self._batch_context(ctx, device_images, step_start, step_stop)
            launch_cfg = LaunchConfig.for_volume(
                (ctx.n_cols, chunk_rows, step_stop - step_start), block_dim=self.block_dim
            )
            launch(
                device,
                self._kernel,
                launch_cfg,
                batch_ctx,
                out_buf.device_array(),
                mode=self.launch_mode,
            )
            self._n_launches += 1
            self._n_threads += launch_cfg.total_threads

        # -- device -> host --------------------------------------------------
        partial = np.zeros((grid.n_bins, chunk_rows, ctx.n_cols), dtype=np.float64)
        memcpy_device_to_host(device, partial, out_buf, label="D2H:depth_resolved")
        self._d2h_bytes += int(partial.nbytes)

        # -- free chunk allocations ------------------------------------------
        upload.free()
        geometry_buf.free()
        out_buf.free()

        yield row_start, partial

    # ------------------------------------------------------------------ #
    def report_extras(self) -> Dict:
        by_kind = self.device.profiler.time_by_kind()
        return {
            "compute_time": by_kind.get("kernel", 0.0),
            "transfer_time": by_kind.get("memcpy_h2d", 0.0) + by_kind.get("memcpy_d2h", 0.0),
            "simulated_device_time": self.device.simulated_time,
            "h2d_bytes": self._h2d_bytes,
            "d2h_bytes": self._d2h_bytes,
            "n_kernel_launches": self._n_launches,
            "n_threads_launched": self._n_threads,
            "layout": self._layout.name,
        }

    def notes(self) -> List[str]:
        return [f"device: {self.device.properties.name}"]


@register_backend(
    "gpusim",
    supports_streaming=True,
    description="the paper's CUDA design on the simulated device (Fig. 4 layouts)",
)
class GpuSimBackend(Backend):
    """Row-chunked reconstruction on the simulated CUDA device."""

    name = "gpusim"

    def __init__(
        self,
        device: Optional[Device] = None,
        device_properties: DeviceProperties = TESLA_M2070,
        block_dim: Tuple[int, int, int] = (32, 4, 8),
        launch_mode: str = "vectorized",
    ):
        self._external_device = device
        self._device_properties = device_properties
        self.block_dim = block_dim
        self.launch_mode = launch_mode

    def make_executor(self, config: ReconstructionConfig) -> ChunkExecutor:
        return GpuSimExecutor(
            device=self._external_device,
            device_properties=self._device_properties,
            block_dim=self.block_dim,
            launch_mode=self.launch_mode,
        )

"""Threaded backend: detector row bands dispatched to a shared thread pool.

The fused kernel (:func:`~repro.core.kernels.depth_resolve_chunk_fused`)
spends its time inside NumPy ufunc loops, which release the GIL.  That makes
plain threads a viable parallel substrate for the vectorised compute — with
none of the taxes the process pool pays: no fork, no pickling, no
shared-memory leases or slab copies.  Each worker thread reconstructs a
contiguous band of detector rows directly from views of the chunk slab and
writes its partial cube into memory the engine merges at a disjoint row
offset, so dispatch cost is a ``submit()`` call and nothing else.

Band granularity comes from :func:`~repro.core.chunking.plan_worker_bands`:
one near-equal band per worker, coarsened so every dispatch carries at least
a minimum number of ``(step, row, col)`` elements — tiny bands would make
the per-dispatch bookkeeping (Python-level, GIL-holding) rival the kernel
time and bend the scaling curve back down.

The pool is the persistent :func:`~repro.core.workerpool.shared_thread_pool`,
reused across runs and files like the process pool; thread start-up is cheap
but not free, and a long batch should not pay it per run.

Like the multiprocess executor, a bounded number of bands is kept in flight
so a streamed out-of-core run holds at most ``max_inflight`` band slabs in
host memory regardless of how many chunks the plan has.
"""

from __future__ import annotations

from collections import deque
from concurrent.futures import Future
from typing import Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.backends.base import Backend, register_backend
from repro.core.chunking import plan_worker_bands
from repro.core.config import ReconstructionConfig
from repro.core.engine import (
    ChunkExecutor,
    ChunkSource,
    ExecutionPlan,
    build_execution_plan,
)
from repro.core.kernels import KernelContext, depth_resolve_chunk_fused
from repro.core.workerpool import ThreadPool, shared_thread_pool

__all__ = ["ThreadedBackend", "ThreadedExecutor"]

#: A pending band: (absolute row start, future resolving to its partial cube).
_Pending = Tuple[int, Future]


def _band_context(ctx: KernelContext, band_start: int, band_stop: int) -> KernelContext:
    """The kernel context of one row band — pure views, nothing copied."""
    return KernelContext(
        images=ctx.images[:, band_start:band_stop, :],
        back_edge_yz=ctx.back_edge_yz[band_start:band_stop],
        front_edge_yz=ctx.front_edge_yz[band_start:band_stop],
        wire_positions_yz=ctx.wire_positions_yz,
        wire_radius=ctx.wire_radius,
        grid=ctx.grid,
        wire_edge=ctx.wire_edge,
        difference_mode=ctx.difference_mode,
        intensity_cutoff=ctx.intensity_cutoff,
        mask=None if ctx.mask is None else ctx.mask[band_start:band_stop],
    )


def _reconstruct_band(band_ctx: KernelContext) -> np.ndarray:
    """Thread task: fused reconstruction of one band into a fresh partial cube."""
    out = np.zeros(
        (band_ctx.grid.n_bins, band_ctx.n_rows, band_ctx.n_cols), dtype=np.float64
    )
    depth_resolve_chunk_fused(band_ctx, out)
    return out


class ThreadedExecutor(ChunkExecutor):
    """Row bands on the shared thread pool, bounded bands in flight."""

    name = "threaded"

    def __init__(
        self,
        n_workers: Optional[int] = None,
        min_elements_per_dispatch: Optional[int] = None,
    ):
        #: explicit worker override (None → ``config.n_workers``)
        self._requested_workers = n_workers
        #: granularity floor override (None → the chunking default); the
        #: auto-tuner passes its measured floor through here
        self._min_elements = min_elements_per_dispatch
        self._pool: Optional[ThreadPool] = None
        self._pending: Deque[_Pending] = deque()
        self._config: Optional[ReconstructionConfig] = None
        self._n_workers = 1
        self._max_inflight = 1
        self._n_bands = 0
        self._n_threads = 0
        #: peak number of bands simultaneously pending in the pool
        self.peak_inflight = 0

    # ------------------------------------------------------------------ #
    def plan(self, source: ChunkSource, config: ReconstructionConfig) -> ExecutionPlan:
        return build_execution_plan(source, config, strategy="threaded")

    def prepare(
        self, source: ChunkSource, config: ReconstructionConfig, plan: ExecutionPlan
    ) -> None:
        self._config = config
        requested = (
            int(config.n_workers)
            if self._requested_workers is None
            else int(self._requested_workers)
        )
        self._n_workers = max(1, min(requested, source.n_rows))
        self._max_inflight = 2 * self._n_workers
        self.peak_inflight = 0
        if self._n_workers > 1:
            self._pool = shared_thread_pool(self._n_workers)

    # ------------------------------------------------------------------ #
    def _bands(self, ctx: KernelContext) -> List[Tuple[int, int]]:
        if self._min_elements is None:
            return plan_worker_bands(ctx.n_rows, ctx.n_cols, ctx.n_steps, self._n_workers)
        return plan_worker_bands(
            ctx.n_rows, ctx.n_cols, ctx.n_steps, self._n_workers, self._min_elements
        )

    def execute_chunk(
        self, ctx: KernelContext, row_start: int, row_stop: int
    ) -> Iterable[Tuple[int, np.ndarray]]:
        if self._pool is None:
            # single-worker fall-back: fused kernel inline, no dispatch at all
            self._n_bands += 1
            self._n_threads += ctx.n_steps * ctx.n_rows * ctx.n_cols
            out = np.zeros(
                (self._config.grid.n_bins, ctx.n_rows, ctx.n_cols), dtype=np.float64
            )
            depth_resolve_chunk_fused(ctx, out)
            yield row_start, out
            return
        for band_start, band_stop in self._bands(ctx):
            self._n_bands += 1
            self._n_threads += ctx.n_steps * (band_stop - band_start) * ctx.n_cols
            band_ctx = _band_context(ctx, band_start, band_stop)
            future = self._pool.submit(_reconstruct_band, band_ctx)
            self._pending.append((row_start + band_start, future))
            self.peak_inflight = max(self.peak_inflight, len(self._pending))
            while len(self._pending) >= self._max_inflight:
                yield self._collect(self._pending.popleft())

    def _collect(self, entry: _Pending) -> Tuple[int, np.ndarray]:
        """Wait for one pending band; on failure cancel the rest and re-raise."""
        band_start, future = entry
        try:
            return band_start, future.result()
        except BaseException:
            self._cancel_pending()
            raise

    def _cancel_pending(self) -> None:
        while self._pending:
            _start, future = self._pending.popleft()
            future.cancel()

    def drain(self) -> Iterable[Tuple[int, np.ndarray]]:
        while self._pending:
            yield self._collect(self._pending.popleft())

    def close(self) -> None:
        """Drop per-run state; the shared thread pool itself stays alive."""
        self._cancel_pending()
        self._pool = None

    # ------------------------------------------------------------------ #
    def report_extras(self) -> Dict:
        return {
            "n_kernel_launches": self._n_bands,
            "n_threads_launched": self._n_threads,
        }

    def notes(self) -> List[str]:
        mode = "thread-pool" if self._n_workers > 1 else "in-line"
        return [
            f"{self._n_workers} worker thread(s), {self._n_bands} row band(s), "
            f"{mode} fused dispatch"
        ]


@register_backend(
    "threaded",
    supports_streaming=True,
    needs_workers=True,
    description="row bands on a shared GIL-releasing thread pool (n_workers)",
)
class ThreadedBackend(Backend):
    """Row-banded fused reconstruction on the persistent shared thread pool."""

    name = "threaded"

    def make_executor(self, config: ReconstructionConfig) -> ChunkExecutor:
        return ThreadedExecutor()

"""File-to-file reconstruction pipeline and the multi-file batch scheduler.

Mirrors the structure of the original program: everything except the
per-pixel reconstruction stays on the host — reading the wire-scan images
from the (h5lite) container, writing the depth-resolved result back to a
container file and, optionally, per-pixel depth profiles to a text file.

Two execution modes share the engine path:

* **in-memory** (default) — the image cube is loaded into host RAM and
  reconstructed through the backend's executor, as before;
* **streaming** (``config.streaming=True``) — the engine pulls row-window
  slabs straight from disk (:class:`repro.io.streaming.StreamingWireScanSource`),
  so the full cube is never resident; this is the paper's out-of-core access
  pattern extended from device memory to host memory.

On top of the single-file pipeline, :func:`reconstruct_many` schedules a
batch of scan files across a worker pool with per-file error isolation and
returns an aggregated :class:`BatchReport` — the production-throughput mode
for serving many scans.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import ReconstructionConfig
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.utils.logging import get_logger

__all__ = ["PipelineResult", "BatchItem", "BatchReport", "reconstruct_file", "reconstruct_many"]

_LOG = get_logger(__name__)


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    result: DepthResolvedStack
    report: ReconstructionReport
    input_path: str
    output_path: Optional[str]
    text_path: Optional[str]


def _reconstruct_streaming(
    input_path: str, config: ReconstructionConfig
) -> Tuple[DepthResolvedStack, ReconstructionReport]:
    """Out-of-core reconstruction: engine chunks stream straight from disk."""
    from repro.core.engine import execute_backend
    from repro.io.streaming import StreamingWireScanSource

    source = StreamingWireScanSource(input_path)
    _LOG.info(
        "streaming %s: %d images of %dx%d pixels (cube never resident)",
        input_path,
        source.n_positions,
        source.n_rows,
        source.n_cols,
    )
    result, report = execute_backend(source, config)
    accounting = source.accounting()
    report.notes.append(
        "streamed from disk: {n_window_reads} window read(s), "
        "peak {max_resident_rows} row(s) resident, {bytes_read} bytes read".format(**accounting)
    )
    return result, report


def reconstruct_file(
    input_path: str,
    config: ReconstructionConfig,
    output_path: Optional[str] = None,
    text_path: Optional[str] = None,
    text_pixels: Optional[Sequence[Tuple[int, int]]] = None,
) -> PipelineResult:
    """Read a wire-scan file, reconstruct it and write the outputs.

    Parameters
    ----------
    input_path:
        h5lite file produced by :func:`repro.io.save_wire_scan` (or the
        synthetic workload generator).
    config:
        Reconstruction configuration.  With ``config.streaming`` set, the
        image cube is streamed from disk chunk by chunk instead of being
        loaded into memory first; the result is bit-identical either way.
    output_path:
        Optional h5lite output path for the depth-resolved stack.
    text_path:
        Optional text output path; when given, the depth profiles of
        *text_pixels* (default: the brightest pixel) are written in the
        column format of the original program.
    text_pixels:
        Pixels whose profiles go into the text file.
    """
    # imported lazily to keep repro.core importable without repro.io and to
    # avoid an import cycle (repro.io depends on the core data model)
    from repro.io.image_stack import load_wire_scan, save_depth_resolved
    from repro.io.text_output import write_depth_profiles

    if config.streaming:
        result, report = _reconstruct_streaming(input_path, config)
    else:
        from repro.core.reconstruction import DepthReconstructor

        stack = load_wire_scan(input_path)
        _LOG.info("loaded %s: %s images of %sx%s pixels", input_path, *stack.shape)
        reconstructor = DepthReconstructor(config=config)
        result, report = reconstructor.reconstruct(stack)

    if output_path is not None:
        save_depth_resolved(output_path, result)
        _LOG.info("wrote depth-resolved stack to %s", output_path)

    if text_path is not None:
        if text_pixels is None:
            # default: the pixel with the largest integrated signal
            totals = result.data.sum(axis=0)
            row, col = divmod(int(totals.argmax()), result.n_cols)
            text_pixels = [(row, col)]
        write_depth_profiles(text_path, result, text_pixels)
        _LOG.info("wrote %d depth profile(s) to %s", len(list(text_pixels)), text_path)

    return PipelineResult(
        result=result,
        report=report,
        input_path=str(input_path),
        output_path=None if output_path is None else str(output_path),
        text_path=None if text_path is None else str(text_path),
    )


# --------------------------------------------------------------------------- #
# batch scheduling
@dataclass
class BatchItem:
    """Outcome of one file in a batch run."""

    input_path: str
    ok: bool
    wall_time: float = 0.0
    output_path: Optional[str] = None
    report: Optional[ReconstructionReport] = None
    error: Optional[str] = None
    result: Optional[DepthResolvedStack] = None


@dataclass
class BatchReport:
    """Aggregated outcome of a :func:`reconstruct_many` run."""

    items: List[BatchItem] = field(default_factory=list)
    wall_time: float = 0.0
    max_workers: int = 1
    backend: str = ""
    streaming: bool = False

    # ------------------------------------------------------------------ #
    @property
    def n_files(self) -> int:
        """Number of scheduled files."""
        return len(self.items)

    @property
    def n_ok(self) -> int:
        """Number of files reconstructed successfully."""
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        """Number of files that raised."""
        return self.n_files - self.n_ok

    @property
    def succeeded(self) -> List[BatchItem]:
        """The successful items, in input order."""
        return [item for item in self.items if item.ok]

    @property
    def failed(self) -> List[BatchItem]:
        """The failed items, in input order."""
        return [item for item in self.items if not item.ok]

    @property
    def total_file_seconds(self) -> float:
        """Sum of per-file wall times (> ``wall_time`` when the pool overlaps)."""
        return sum(item.wall_time for item in self.items)

    @property
    def throughput_files_per_second(self) -> float:
        """Completed files per second of batch wall time."""
        if self.wall_time <= 0:
            return 0.0
        return self.n_ok / self.wall_time

    def summary(self) -> str:
        """Human-readable multi-line batch summary."""
        mode = "streaming" if self.streaming else "in-memory"
        lines = [
            f"batch: {self.n_ok}/{self.n_files} file(s) ok, backend={self.backend} ({mode}), "
            f"{self.max_workers} worker(s)",
            f"  wall={self.wall_time:.4f}s file-seconds={self.total_file_seconds:.4f}s "
            f"throughput={self.throughput_files_per_second:.2f} files/s",
        ]
        for item in self.items:
            if item.ok:
                lines.append(f"  ok   {item.input_path} ({item.wall_time:.4f}s)")
            else:
                lines.append(f"  FAIL {item.input_path}: {item.error}")
        return "\n".join(lines)


def _batch_output_paths(paths: Sequence[str], output_dir: str) -> List[str]:
    """One ``<stem>_depth.h5lite`` per input; colliding names get a numeric suffix.

    Inputs from different directories may share a basename — without
    disambiguation their outputs would silently overwrite each other.  Every
    generated name is reserved, so a suffixed name can never collide with a
    later input whose stem happens to end in ``_<n>``.
    """
    used: set = set()
    out: List[str] = []
    for path in paths:
        stem = os.path.splitext(os.path.basename(str(path)))[0]
        name = f"{stem}_depth.h5lite"
        suffix = 1
        while name in used:
            name = f"{stem}_{suffix}_depth.h5lite"
            suffix += 1
        used.add(name)
        out.append(os.path.join(output_dir, name))
    return out


def reconstruct_many(
    paths: Sequence[str],
    config: ReconstructionConfig,
    max_workers: Optional[int] = None,
    output_dir: Optional[str] = None,
    keep_results: bool = True,
) -> BatchReport:
    """Reconstruct a batch of wire-scan files on a worker pool.

    Files are scheduled onto ``max_workers`` threads (default: up to 4, never
    more than the number of files).  A failure in one file is isolated: it is
    recorded on that file's :class:`BatchItem` and the rest of the batch
    continues.

    Parameters
    ----------
    paths:
        Input wire-scan files.
    config:
        Shared reconstruction configuration (``config.streaming`` selects
        out-of-core execution per file).
    max_workers:
        Concurrent reconstructions.  Thread-based: NumPy kernels and file
        I/O release the GIL for long stretches, and the multiprocess backend
        brings its own process pool.
    output_dir:
        When given, each file's depth-resolved result is written to
        ``<output_dir>/<stem>_depth.h5lite`` (the directory is created).
    keep_results:
        Keep each file's :class:`DepthResolvedStack` on its item.  Disable
        for very large batches where only the reports (or the written output
        files) are wanted.
    """
    paths = [str(p) for p in paths]
    if not paths:
        return BatchReport(items=[], wall_time=0.0, max_workers=0,
                           backend=config.backend, streaming=config.streaming)
    if max_workers is None:
        max_workers = min(4, len(paths))
    max_workers = max(1, min(int(max_workers), len(paths)))
    output_paths: List[Optional[str]] = [None] * len(paths)
    if output_dir is not None:
        os.makedirs(output_dir, exist_ok=True)
        output_paths = list(_batch_output_paths(paths, output_dir))

    def run_one(job: Tuple[str, Optional[str]]) -> BatchItem:
        input_path, output_path = job
        start = time.perf_counter()
        try:
            outcome = reconstruct_file(input_path, config, output_path=output_path)
        except Exception as exc:  # per-file isolation: record, don't abort the batch
            wall = time.perf_counter() - start
            _LOG.warning("batch: %s failed after %.3fs: %s", input_path, wall, exc)
            return BatchItem(
                input_path=input_path,
                ok=False,
                wall_time=wall,
                output_path=output_path,
                error=f"{type(exc).__name__}: {exc}",
            )
        wall = time.perf_counter() - start
        return BatchItem(
            input_path=input_path,
            ok=True,
            wall_time=wall,
            output_path=outcome.output_path,
            report=outcome.report,
            result=outcome.result if keep_results else None,
        )

    jobs = list(zip(paths, output_paths))
    start = time.perf_counter()
    if max_workers == 1:
        items = [run_one(job) for job in jobs]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            items = list(pool.map(run_one, jobs))
    wall = time.perf_counter() - start

    report = BatchReport(
        items=items,
        wall_time=wall,
        max_workers=max_workers,
        backend=config.backend,
        streaming=config.streaming,
    )
    _LOG.info("batch finished: %s", report.summary().splitlines()[0])
    return report

"""File-to-file reconstruction pipeline.

Mirrors the structure of the original program: everything except the
per-pixel reconstruction stays on the host — reading the wire-scan images
from the (h5lite) container, writing the depth-resolved result back to a
container file and, optionally, per-pixel depth profiles to a text file.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.core.config import ReconstructionConfig
from repro.core.reconstruction import DepthReconstructor
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.utils.logging import get_logger

__all__ = ["PipelineResult", "reconstruct_file"]

_LOG = get_logger(__name__)


@dataclass
class PipelineResult:
    """Everything produced by one pipeline run."""

    result: DepthResolvedStack
    report: ReconstructionReport
    input_path: str
    output_path: Optional[str]
    text_path: Optional[str]


def reconstruct_file(
    input_path: str,
    config: ReconstructionConfig,
    output_path: Optional[str] = None,
    text_path: Optional[str] = None,
    text_pixels: Optional[Sequence[Tuple[int, int]]] = None,
) -> PipelineResult:
    """Read a wire-scan file, reconstruct it and write the outputs.

    Parameters
    ----------
    input_path:
        h5lite file produced by :func:`repro.io.save_wire_scan` (or the
        synthetic workload generator).
    config:
        Reconstruction configuration.
    output_path:
        Optional h5lite output path for the depth-resolved stack.
    text_path:
        Optional text output path; when given, the depth profiles of
        *text_pixels* (default: the brightest pixel) are written in the
        column format of the original program.
    text_pixels:
        Pixels whose profiles go into the text file.
    """
    # imported lazily to keep repro.core importable without repro.io and to
    # avoid an import cycle (repro.io depends on the core data model)
    from repro.io.image_stack import load_wire_scan, save_depth_resolved
    from repro.io.text_output import write_depth_profiles

    stack = load_wire_scan(input_path)
    _LOG.info("loaded %s: %s images of %sx%s pixels", input_path, *stack.shape)

    reconstructor = DepthReconstructor(config=config)
    result, report = reconstructor.reconstruct(stack)

    if output_path is not None:
        save_depth_resolved(output_path, result)
        _LOG.info("wrote depth-resolved stack to %s", output_path)

    if text_path is not None:
        if text_pixels is None:
            # default: the pixel with the largest integrated signal
            totals = result.data.sum(axis=0)
            row, col = divmod(int(totals.argmax()), result.n_cols)
            text_pixels = [(row, col)]
        write_depth_profiles(text_path, result, text_pixels)
        _LOG.info("wrote %d depth profile(s) to %s", len(list(text_pixels)), text_path)

    return PipelineResult(
        result=result,
        report=report,
        input_path=str(input_path),
        output_path=None if output_path is None else str(output_path),
        text_path=None if text_path is None else str(text_path),
    )

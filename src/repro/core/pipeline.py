"""Cross-file batch scheduling, the batch result data model, and shims.

Three things live here:

* the **batch scheduler** the session's ``run_many`` delegates to:
  :func:`plan_batch_concurrency` gates how many *whole reconstructions* may
  overlap by the same memory-budget logic the streaming engine applies to
  row chunks (a batch of huge in-memory cubes is serialised, a batch of
  streamed files overlaps freely because each holds only one chunk slab),
  and :func:`run_batch_jobs` runs the items on a thread pool with order
  preserved.  Threads suffice on the host side because NumPy kernels and
  file I/O release the GIL, and the multiprocess backend adds real
  cross-process parallelism through the one persistent
  :func:`~repro.core.workerpool.shared_pool` all items reuse;
* the batch *data model* (:class:`BatchItem`, :class:`BatchReport`) — the
  session's :class:`~repro.core.session.BatchRunResult` extends
  :class:`BatchReport`;
* deprecated shims for the historical entry points
  (``reconstruct_file`` / ``reconstruct_many``), which emit a
  :class:`DeprecationWarning` and delegate to the session front door with
  bitwise-identical outputs.
"""

from __future__ import annotations

import warnings
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.config import ReconstructionConfig
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.utils.logging import get_logger

__all__ = [
    "PipelineResult",
    "BatchItem",
    "BatchReport",
    "BATCH_MEMORY_BUDGET_BYTES",
    "estimate_source_resident_bytes",
    "plan_batch_concurrency",
    "run_batch_jobs",
    "reconstruct_file",
    "reconstruct_many",
]

_LOG = get_logger(__name__)

#: Default host-memory budget for concurrently resident batch items.  Four
#: streaming chunk slabs: a streamed batch overlaps up to four files, while
#: in-memory cubes large enough to matter get their concurrency clamped.
BATCH_MEMORY_BUDGET_BYTES = 4 * 256 * 1024 * 1024


# --------------------------------------------------------------------------- #
# memory-gated cross-file scheduling
def estimate_source_resident_bytes(source, config: ReconstructionConfig) -> Optional[int]:
    """Peak host bytes one batch item keeps resident while reconstructing.

    For a file source this is a header-only probe (geometry, never images):
    the input term is the full cube when the item will be loaded in memory,
    or one streaming chunk slab (:data:`~repro.core.engine.STREAMING_CHUNK_BYTES`,
    the same budget the engine plans row chunks with) when ``config.streaming``
    is set; the output term is the full depth-resolved cube, which exists
    either way; background subtraction briefly doubles the input slab.
    Returns ``None`` when the item's dimensions cannot be probed cheaply —
    an unreadable file surfaces as that *item's* failure at run time, never
    as a scheduling error.
    """
    from repro.core.source import FileSource, StackSource

    streaming_input = False
    if isinstance(source, StackSource):
        n_positions, n_rows, n_cols = source.stack.shape
    elif isinstance(source, FileSource):
        try:
            from repro.io.image_stack import read_wire_scan_geometry

            scan, detector, _beam, _metadata = read_wire_scan_geometry(source.path)
        except Exception:
            return None
        n_rows, n_cols = detector.shape
        n_positions = scan.n_points
        streaming_input = bool(config.streaming)
    else:
        return None

    from repro.core.engine import STREAMING_CHUNK_BYTES

    float_bytes = 8
    cube = n_positions * n_rows * n_cols * float_bytes
    input_bytes = min(cube, STREAMING_CHUNK_BYTES) if streaming_input else cube
    if config.subtract_background:
        input_bytes *= 2  # the background-subtracted slab copy
    output_bytes = config.grid.n_bins * n_rows * n_cols * float_bytes
    return int(input_bytes + output_bytes)


def plan_batch_concurrency(
    sources: Sequence,
    config: ReconstructionConfig,
    requested_workers: int,
    memory_budget: Optional[int] = None,
) -> int:
    """Concurrent whole-file reconstructions the memory budget admits.

    The gate mirrors the streaming engine's logic one level up: instead of
    bounding rows per chunk under a device budget, it bounds *items in
    flight* under a host budget, using the worst (largest) per-item resident
    set.  Never below one — a single over-budget item still runs, exactly
    like a single over-budget row still gets a chunk.
    """
    requested = max(1, int(requested_workers))
    if requested == 1:
        return 1  # already serial: skip the per-item header probes
    if memory_budget is None:
        memory_budget = BATCH_MEMORY_BUDGET_BYTES
    if int(memory_budget) < 1:
        return 1
    estimates = [estimate_source_resident_bytes(source, config) for source in sources]
    known = [bytes_ for bytes_ in estimates if bytes_]
    if not known:
        return requested
    admitted = max(1, int(memory_budget) // max(known))
    if admitted < requested:
        _LOG.info(
            "batch: memory budget %d B admits %d concurrent item(s) "
            "(worst item ~%d B), clamping from %d",
            memory_budget, admitted, max(known), requested,
        )
    return min(requested, admitted)


def run_batch_jobs(
    jobs: Sequence,
    run_one: Callable,
    max_workers: int,
) -> List["BatchItem"]:
    """Run *run_one* over *jobs* on a thread pool, preserving input order.

    ``max_workers == 1`` runs inline (no pool start-up for serial batches).
    *run_one* owns per-item error isolation; this function only schedules.
    """
    if max_workers <= 1:
        return [run_one(job) for job in jobs]
    with ThreadPoolExecutor(max_workers=max_workers) as threads:
        return list(threads.map(run_one, jobs))


@dataclass
class PipelineResult:
    """Everything produced by one (deprecated) ``reconstruct_file`` run."""

    result: DepthResolvedStack
    report: ReconstructionReport
    input_path: str
    output_path: Optional[str]
    text_path: Optional[str]


# --------------------------------------------------------------------------- #
# batch data model (not deprecated: BatchRunResult extends BatchReport)
@dataclass
class BatchItem:
    """Outcome of one item in a batch run."""

    input_path: str
    ok: bool
    wall_time: float = 0.0
    output_path: Optional[str] = None
    report: Optional[ReconstructionReport] = None
    error: Optional[str] = None
    result: Optional[DepthResolvedStack] = None
    #: the full provenance-carrying RunResult (kept when keep_results=True,
    #: so BatchRunResult.save_all can persist complete run records)
    run: Optional[object] = None
    #: True when this item was served from the result cache instead of
    #: reconstructed (incremental run_many) — its wall_time is service
    #: time (load + optional output write), not reconstruction time
    cached: bool = False


@dataclass
class BatchReport:
    """Aggregated outcome of a batch run."""

    items: List[BatchItem] = field(default_factory=list)
    wall_time: float = 0.0
    max_workers: int = 1
    backend: str = ""
    streaming: bool = False

    # ------------------------------------------------------------------ #
    @property
    def n_files(self) -> int:
        """Number of scheduled items."""
        return len(self.items)

    @property
    def n_ok(self) -> int:
        """Number of items reconstructed successfully."""
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        """Number of items that raised."""
        return self.n_files - self.n_ok

    @property
    def n_cached(self) -> int:
        """Number of items served from the result cache (not reconstructed)."""
        return sum(1 for item in self.items if item.cached)

    @property
    def n_computed(self) -> int:
        """Number of successful items that were actually reconstructed."""
        return sum(1 for item in self.items if item.ok and not item.cached)

    @property
    def succeeded(self) -> List[BatchItem]:
        """The successful items, in input order."""
        return [item for item in self.items if item.ok]

    @property
    def failed(self) -> List[BatchItem]:
        """The failed items, in input order."""
        return [item for item in self.items if not item.ok]

    @property
    def total_file_seconds(self) -> float:
        """Sum of per-item wall times (> ``wall_time`` when the pool overlaps)."""
        return sum(item.wall_time for item in self.items)

    @property
    def throughput_files_per_second(self) -> float:
        """Completed items per second of batch wall time."""
        if self.wall_time <= 0:
            return 0.0
        return self.n_ok / self.wall_time

    def summary(self) -> str:
        """Human-readable multi-line batch summary."""
        mode = "streaming" if self.streaming else "in-memory"
        header = (
            f"batch: {self.n_ok}/{self.n_files} file(s) ok, backend={self.backend} ({mode}), "
            f"{self.max_workers} worker(s)"
        )
        if self.n_cached:
            header += f", {self.n_cached} cached"
        lines = [
            header,
            f"  wall={self.wall_time:.4f}s file-seconds={self.total_file_seconds:.4f}s "
            f"throughput={self.throughput_files_per_second:.2f} files/s",
        ]
        for item in self.items:
            if item.ok:
                tag = "hit " if item.cached else "ok  "
                lines.append(f"  {tag} {item.input_path} ({item.wall_time:.4f}s)")
            else:
                lines.append(f"  FAIL {item.input_path}: {item.error}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# deprecated shims
def reconstruct_file(
    input_path: str,
    config: ReconstructionConfig,
    output_path: Optional[str] = None,
    text_path: Optional[str] = None,
    text_pixels: Optional[Sequence[Tuple[int, int]]] = None,
) -> PipelineResult:
    """Deprecated: use ``repro.session(config=...).run(path, ...)``.

    Reads a wire-scan file, reconstructs it (streaming straight from disk
    when ``config.streaming`` is set) and writes the optional outputs —
    exactly as before, via the session front door.
    """
    warnings.warn(
        "reconstruct_file() is deprecated; use "
        "repro.session(config=config).run(path, output_path=..., text_path=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.session import session

    run = session(config=config).run(
        str(input_path),
        output_path=output_path,
        text_path=text_path,
        text_pixels=text_pixels,
    )
    return PipelineResult(
        result=run.result,
        report=run.report,
        input_path=str(input_path),
        output_path=run.output_path,
        text_path=run.text_path,
    )


def reconstruct_many(
    paths: Sequence[str],
    config: ReconstructionConfig,
    max_workers: Optional[int] = None,
    output_dir: Optional[str] = None,
    keep_results: bool = True,
) -> BatchReport:
    """Deprecated: use ``repro.session(config=...).run_many(paths, ...)``.

    Schedules the batch on the session's worker pool with the same
    per-file error isolation and returns the aggregated report (now a
    :class:`~repro.core.session.BatchRunResult`, a ``BatchReport``
    subclass).
    """
    warnings.warn(
        "reconstruct_many() is deprecated; use "
        "repro.session(config=config).run_many(paths, ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.session import session
    from repro.core.source import FileSource

    # each path is exactly one literal file (never glob/directory-expanded),
    # preserving the historical 1:1 paths-to-items mapping callers rely on
    return session(config=config).run_many(
        [FileSource(str(path)) for path in paths],
        max_workers=max_workers,
        output_dir=output_dir,
        keep_results=keep_results,
    )

"""Deprecated file-pipeline shims plus the batch result data model.

The file-to-file pipeline and the multi-file batch scheduler moved behind
the one front door (:class:`~repro.core.session.Session`):

* ``reconstruct_file(path, config, ...)`` →
  ``repro.session(config=config).run(path, output_path=..., text_path=...)``
* ``reconstruct_many(paths, config, ...)`` →
  ``repro.session(config=config).run_many(paths, ...)``

Both old functions remain as thin shims that emit a
:class:`DeprecationWarning` and delegate, producing bitwise-identical
outputs.  The batch *data model* (:class:`BatchItem`, :class:`BatchReport`)
still lives here and is not deprecated — the session's
:class:`~repro.core.session.BatchRunResult` extends :class:`BatchReport`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.core.config import ReconstructionConfig
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.utils.logging import get_logger

__all__ = ["PipelineResult", "BatchItem", "BatchReport", "reconstruct_file", "reconstruct_many"]

_LOG = get_logger(__name__)


@dataclass
class PipelineResult:
    """Everything produced by one (deprecated) ``reconstruct_file`` run."""

    result: DepthResolvedStack
    report: ReconstructionReport
    input_path: str
    output_path: Optional[str]
    text_path: Optional[str]


# --------------------------------------------------------------------------- #
# batch data model (not deprecated: BatchRunResult extends BatchReport)
@dataclass
class BatchItem:
    """Outcome of one item in a batch run."""

    input_path: str
    ok: bool
    wall_time: float = 0.0
    output_path: Optional[str] = None
    report: Optional[ReconstructionReport] = None
    error: Optional[str] = None
    result: Optional[DepthResolvedStack] = None
    #: the full provenance-carrying RunResult (kept when keep_results=True,
    #: so BatchRunResult.save_all can persist complete run records)
    run: Optional[object] = None


@dataclass
class BatchReport:
    """Aggregated outcome of a batch run."""

    items: List[BatchItem] = field(default_factory=list)
    wall_time: float = 0.0
    max_workers: int = 1
    backend: str = ""
    streaming: bool = False

    # ------------------------------------------------------------------ #
    @property
    def n_files(self) -> int:
        """Number of scheduled items."""
        return len(self.items)

    @property
    def n_ok(self) -> int:
        """Number of items reconstructed successfully."""
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        """Number of items that raised."""
        return self.n_files - self.n_ok

    @property
    def succeeded(self) -> List[BatchItem]:
        """The successful items, in input order."""
        return [item for item in self.items if item.ok]

    @property
    def failed(self) -> List[BatchItem]:
        """The failed items, in input order."""
        return [item for item in self.items if not item.ok]

    @property
    def total_file_seconds(self) -> float:
        """Sum of per-item wall times (> ``wall_time`` when the pool overlaps)."""
        return sum(item.wall_time for item in self.items)

    @property
    def throughput_files_per_second(self) -> float:
        """Completed items per second of batch wall time."""
        if self.wall_time <= 0:
            return 0.0
        return self.n_ok / self.wall_time

    def summary(self) -> str:
        """Human-readable multi-line batch summary."""
        mode = "streaming" if self.streaming else "in-memory"
        lines = [
            f"batch: {self.n_ok}/{self.n_files} file(s) ok, backend={self.backend} ({mode}), "
            f"{self.max_workers} worker(s)",
            f"  wall={self.wall_time:.4f}s file-seconds={self.total_file_seconds:.4f}s "
            f"throughput={self.throughput_files_per_second:.2f} files/s",
        ]
        for item in self.items:
            if item.ok:
                lines.append(f"  ok   {item.input_path} ({item.wall_time:.4f}s)")
            else:
                lines.append(f"  FAIL {item.input_path}: {item.error}")
        return "\n".join(lines)


# --------------------------------------------------------------------------- #
# deprecated shims
def reconstruct_file(
    input_path: str,
    config: ReconstructionConfig,
    output_path: Optional[str] = None,
    text_path: Optional[str] = None,
    text_pixels: Optional[Sequence[Tuple[int, int]]] = None,
) -> PipelineResult:
    """Deprecated: use ``repro.session(config=...).run(path, ...)``.

    Reads a wire-scan file, reconstructs it (streaming straight from disk
    when ``config.streaming`` is set) and writes the optional outputs —
    exactly as before, via the session front door.
    """
    warnings.warn(
        "reconstruct_file() is deprecated; use "
        "repro.session(config=config).run(path, output_path=..., text_path=...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.session import session

    run = session(config=config).run(
        str(input_path),
        output_path=output_path,
        text_path=text_path,
        text_pixels=text_pixels,
    )
    return PipelineResult(
        result=run.result,
        report=run.report,
        input_path=str(input_path),
        output_path=run.output_path,
        text_path=run.text_path,
    )


def reconstruct_many(
    paths: Sequence[str],
    config: ReconstructionConfig,
    max_workers: Optional[int] = None,
    output_dir: Optional[str] = None,
    keep_results: bool = True,
) -> BatchReport:
    """Deprecated: use ``repro.session(config=...).run_many(paths, ...)``.

    Schedules the batch on the session's worker pool with the same
    per-file error isolation and returns the aggregated report (now a
    :class:`~repro.core.session.BatchRunResult`, a ``BatchReport``
    subclass).
    """
    warnings.warn(
        "reconstruct_many() is deprecated; use "
        "repro.session(config=config).run_many(paths, ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.core.session import session
    from repro.core.source import FileSource

    # each path is exactly one literal file (never glob/directory-expanded),
    # preserving the historical 1:1 paths-to-items mapping callers rely on
    return session(config=config).run_many(
        [FileSource(str(path)) for path in paths],
        max_workers=max_workers,
        output_dir=output_dir,
        keep_results=keep_results,
    )

"""The fluent front door: ``repro.session(...)`` → :class:`Session` → :class:`RunResult`.

One composable entry point replaces the three historical ones
(``DepthReconstructor.reconstruct``, ``pipeline.reconstruct_file``,
``pipeline.reconstruct_many``)::

    import repro

    run = (repro.session(grid=repro.DepthGrid.from_range(0, 120, 60))
                .on("gpusim", layout="pointer3d")
                .stream(rows_per_chunk=4)
                .run(repro.open("scan.h5lite")))
    print(run.report.summary())
    print(run.to_json())          # provenance: config, plan, timings, source

A :class:`Session` is an immutable builder over a
:class:`~repro.core.config.ReconstructionConfig`: every fluent method
(:meth:`Session.on`, :meth:`Session.stream`, ...) returns a *new* session, so
sessions can be shared and forked freely.  :meth:`Session.run` executes one
source through the shared engine and returns a :class:`RunResult` that always
carries the result cube, the report and a JSON-serializable provenance
record; :meth:`Session.run_many` is the batch scheduler (worker pool,
per-item error isolation, aggregated :class:`BatchRunResult`).

Any input :func:`repro.open` understands is accepted wherever a source is
expected — in-memory stacks, files, globs, directories, ndarray+geometry.
"""

from __future__ import annotations

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.engine import execute as engine_execute
from repro.core.pipeline import BatchItem, BatchReport
from repro.core.registry import get_backend
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.source import FileSource, InvalidSource, Source, open as open_source
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = ["RunResult", "BatchRunResult", "Session", "session"]

_LOG = get_logger(__name__)


def _repro_version() -> str:
    """The package version, resolved lazily to avoid an import cycle."""
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - only during partial imports
        return "unknown"


# --------------------------------------------------------------------------- #
# run results
@dataclass
class RunResult:
    """Everything one :meth:`Session.run` produced.

    Always carries the report next to the result (the old
    ``reconstruct(return_report=False)`` shape silently dropped it) plus a
    provenance record — config snapshot, plan summary, timings and source
    identity — serializable with :meth:`to_json`.
    """

    result: DepthResolvedStack
    report: ReconstructionReport
    config: ReconstructionConfig
    source: Dict = field(default_factory=dict)
    created_unix: float = 0.0
    output_path: Optional[str] = None
    text_path: Optional[str] = None

    # ------------------------------------------------------------------ #
    @property
    def data(self):
        """The depth-resolved intensity cube ``(n_bins, n_rows, n_cols)``."""
        return self.result.data

    @property
    def wall_time(self) -> float:
        """Reconstruction wall time in seconds."""
        return self.report.wall_time

    @property
    def plan_summary(self) -> Optional[str]:
        """The engine's chunk-plan note for this run, if present."""
        return next((note for note in self.report.notes if note.startswith("plan[")), None)

    # ------------------------------------------------------------------ #
    def provenance(self) -> Dict:
        """JSON-safe record of what ran, on what, and how long it took."""
        return {
            "repro_version": _repro_version(),
            "created_unix": self.created_unix,
            "backend": self.report.backend,
            "config": self.config.to_dict(),
            "source": dict(self.source),
            "plan": self.plan_summary,
            "timings": {
                "wall_time": self.report.wall_time,
                "compute_time": self.report.compute_time,
                "transfer_time": self.report.transfer_time,
                "simulated_device_time": self.report.simulated_device_time,
            },
            "counters": {
                "n_chunks": self.report.n_chunks,
                "n_kernel_launches": self.report.n_kernel_launches,
                "n_threads_launched": self.report.n_threads_launched,
                "n_active_pixels": self.report.n_active_pixels,
                "n_steps": self.report.n_steps,
            },
            "notes": list(self.report.notes),
            "outputs": {"output_path": self.output_path, "text_path": self.text_path},
        }

    def to_dict(self) -> Dict:
        """Alias of :meth:`provenance` (the serializable view of the run)."""
        return self.provenance()

    def to_json(self, indent: int = 2) -> str:
        """The provenance record as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Human-readable run summary (report plus source identity)."""
        return f"source: {self.source}\n{self.report.summary()}"

    # ------------------------------------------------------------------ #
    def save(self, output_path) -> "RunResult":
        """Write the depth-resolved stack to an h5lite file."""
        from repro.io.image_stack import save_depth_resolved

        save_depth_resolved(output_path, self.result)
        self.output_path = str(output_path)
        _LOG.info("wrote depth-resolved stack to %s", output_path)
        return self

    def write_profiles(self, text_path, pixels: Optional[Sequence[Tuple[int, int]]] = None) -> "RunResult":
        """Write per-pixel depth profiles as text (default: the brightest pixel)."""
        from repro.io.text_output import write_depth_profiles

        if pixels is None:
            totals = self.result.data.sum(axis=0)
            row, col = divmod(int(totals.argmax()), self.result.n_cols)
            pixels = [(row, col)]
        write_depth_profiles(text_path, self.result, pixels)
        self.text_path = str(text_path)
        _LOG.info("wrote %d depth profile(s) to %s", len(list(pixels)), text_path)
        return self


@dataclass
class BatchRunResult(BatchReport):
    """A :class:`~repro.core.pipeline.BatchReport` plus run provenance.

    Everything the old batch scheduler reported (items, throughput,
    ``summary()``) is inherited unchanged; on top of it the batch carries the
    config snapshot and source identity, serializable with :meth:`to_json`.
    """

    config: Optional[ReconstructionConfig] = None
    source: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-safe record of the batch run."""
        return {
            "repro_version": _repro_version(),
            "backend": self.backend,
            "streaming": self.streaming,
            "config": None if self.config is None else self.config.to_dict(),
            "source": dict(self.source),
            "max_workers": self.max_workers,
            "wall_time": self.wall_time,
            "n_files": self.n_files,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "throughput_files_per_second": self.throughput_files_per_second,
            "items": [
                {
                    "input_path": item.input_path,
                    "ok": item.ok,
                    "wall_time": item.wall_time,
                    "output_path": item.output_path,
                    "error": item.error,
                }
                for item in self.items
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """The batch provenance record as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# --------------------------------------------------------------------------- #
# the fluent builder
def _output_names(stems: Sequence[str], output_dir: str) -> List[str]:
    """One ``<stem>_depth.h5lite`` per item; colliding names get a numeric suffix.

    Items from different directories may share a stem — without
    disambiguation their outputs would silently overwrite each other.  Every
    generated name is reserved, so a suffixed name can never collide with a
    later item whose stem happens to end in ``_<n>``.
    """
    used: set = set()
    out: List[str] = []
    for stem in stems:
        name = f"{stem}_depth.h5lite"
        suffix = 1
        while name in used:
            name = f"{stem}_{suffix}_depth.h5lite"
            suffix += 1
        used.add(name)
        out.append(os.path.join(output_dir, name))
    return out


def _item_path(source: Source) -> str:
    """The per-item identifier batch tables key on (path for files)."""
    if isinstance(source, FileSource):
        return source.path
    return source.label()


@dataclass(frozen=True)
class Session:
    """An immutable, fluent reconstruction front door.

    Build one with :func:`repro.session`, refine it with the fluent methods
    (each returns a **new** session) and execute with :meth:`run` /
    :meth:`run_many`::

        sess = repro.session(grid=grid).on("gpusim", layout="pointer3d").stream(4)
        run = sess.run(stack_or_path)
    """

    config: ReconstructionConfig

    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> DepthGrid:
        """The depth grid of this session."""
        return self.config.grid

    @property
    def backend_name(self) -> str:
        """Name of the configured backend."""
        return self.config.backend

    def on(self, backend: str, **overrides) -> "Session":
        """A session running on a different backend (plus config overrides)."""
        return Session(config=self.config.with_backend(backend, **overrides))

    def stream(self, rows_per_chunk: Optional[int] = None) -> "Session":
        """A session streaming file sources from disk (out-of-core mode)."""
        overrides: Dict = {"streaming": True}
        if rows_per_chunk is not None:
            overrides["rows_per_chunk"] = rows_per_chunk
        return Session(config=self.config.with_overrides(**overrides))

    def in_memory(self) -> "Session":
        """A session loading file sources fully into host memory."""
        return Session(config=self.config.with_overrides(streaming=False))

    def configure(self, **overrides) -> "Session":
        """A session with arbitrary config fields replaced."""
        return Session(config=self.config.with_overrides(**overrides))

    # ------------------------------------------------------------------ #
    def run(
        self,
        src,
        *,
        output_path=None,
        text_path=None,
        text_pixels: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> RunResult:
        """Reconstruct one source and return the :class:`RunResult`.

        *src* is anything :func:`repro.open` accepts (except a batch — use
        :meth:`run_many`).  ``output_path`` / ``text_path`` optionally write
        the h5lite result and text depth profiles, exactly like the old file
        pipeline did.
        """
        source = open_source(src)
        if source.is_batch:
            raise ValidationError(
                f"Session.run() reconstructs a single source, got {source.label()}; "
                "use Session.run_many() for batches"
            )
        created = time.time()
        backend = get_backend(self.config.backend)
        chunk_source = source.chunk_source(self.config)
        _LOG.debug("session: %s via %s", chunk_source.describe(), self.config.backend)
        result, report = engine_execute(
            chunk_source, self.config, backend.make_executor(self.config)
        )
        accounting_note = getattr(chunk_source, "accounting_note", None)
        if accounting_note is not None:
            report.notes.append(accounting_note())
        run = RunResult(
            result=result,
            report=report,
            config=self.config,
            source=source.identity(),
            created_unix=created,
        )
        if output_path is not None:
            run.save(output_path)
        if text_path is not None:
            run.write_profiles(text_path, pixels=text_pixels)
        return run

    def run_many(
        self,
        srcs,
        *,
        max_workers: Optional[int] = None,
        output_dir: Optional[str] = None,
        keep_results: bool = True,
    ) -> BatchRunResult:
        """Reconstruct a batch of sources on a worker pool.

        Items are scheduled onto ``max_workers`` threads (default: up to 4,
        never more than the number of items).  A failure in one item is
        isolated: it is recorded on that item's
        :class:`~repro.core.pipeline.BatchItem` and the rest of the batch
        continues.

        Parameters
        ----------
        srcs:
            Anything :func:`repro.open` accepts — a list of paths/stacks, a
            glob, a directory, or a single source (a batch of one).
        max_workers:
            Concurrent reconstructions.  Thread-based: NumPy kernels and file
            I/O release the GIL for long stretches, and the multiprocess
            backend brings its own process pool.
        output_dir:
            When given, each item's depth-resolved result is written to
            ``<output_dir>/<stem>_depth.h5lite`` (the directory is created).
        keep_results:
            Keep each item's :class:`~repro.core.result.DepthResolvedStack`
            on its batch item.  Disable for very large batches where only
            the reports (or the written output files) are wanted.
        """
        if isinstance(srcs, (list, tuple)):
            # per-entry isolation: an entry that cannot even be normalized
            # (bad glob, empty directory, unsupported type) becomes a failed
            # item, and the rest of the batch still runs
            sources: List[Source] = []
            for entry in srcs:
                try:
                    sources.extend(open_source(entry).items())
                except ValidationError as exc:
                    sources.append(InvalidSource(entry, exc))
        else:
            sources = open_source(srcs).items()
        identity = {
            "kind": "batch", "n_items": len(sources),
            "items": [source.identity() for source in sources],
        }
        if not sources:
            return BatchRunResult(
                items=[], wall_time=0.0, max_workers=0,
                backend=self.config.backend, streaming=self.config.streaming,
                config=self.config, source=identity,
            )
        if max_workers is None:
            max_workers = min(4, len(sources))
        max_workers = max(1, min(int(max_workers), len(sources)))
        output_paths: List[Optional[str]] = [None] * len(sources)
        if output_dir is not None:
            os.makedirs(output_dir, exist_ok=True)
            output_paths = _output_names([source.label() for source in sources], output_dir)

        def run_one(job: Tuple[Source, Optional[str]]) -> BatchItem:
            source, item_output = job
            start = time.perf_counter()
            try:
                outcome = self.run(source, output_path=item_output)
            except Exception as exc:  # per-item isolation: record, don't abort
                wall = time.perf_counter() - start
                _LOG.warning("batch: %s failed after %.3fs: %s", _item_path(source), wall, exc)
                return BatchItem(
                    input_path=_item_path(source),
                    ok=False,
                    wall_time=wall,
                    output_path=item_output,
                    error=f"{type(exc).__name__}: {exc}",
                )
            wall = time.perf_counter() - start
            return BatchItem(
                input_path=_item_path(source),
                ok=True,
                wall_time=wall,
                output_path=outcome.output_path,
                report=outcome.report,
                result=outcome.result if keep_results else None,
            )

        jobs = list(zip(sources, output_paths))
        start = time.perf_counter()
        if max_workers == 1:
            items = [run_one(job) for job in jobs]
        else:
            with ThreadPoolExecutor(max_workers=max_workers) as pool:
                items = list(pool.map(run_one, jobs))
        wall = time.perf_counter() - start

        outcome = BatchRunResult(
            items=items,
            wall_time=wall,
            max_workers=max_workers,
            backend=self.config.backend,
            streaming=self.config.streaming,
            config=self.config,
            source=identity,
        )
        _LOG.info("batch finished: %s", outcome.summary().splitlines()[0])
        return outcome

    # ------------------------------------------------------------------ #
    def compare(self, src, backends) -> Dict[str, RunResult]:
        """Run several backends on the same source and collect their runs.

        Returns a mapping ``backend name -> RunResult``; useful for
        correctness cross-checks and for the benchmark harness.

        Every backend name is validated (and each backend instantiated)
        *before* any reconstruction runs, so a typo in the last name cannot
        waste the runs before it.  Each report's notes additionally carry a
        reference engine plan summary for this source/config.  With
        ``config.rows_per_chunk`` fixed, every backend runs that exact
        chunking and the comparison is attributable to identical chunks;
        when it is unset the note says so explicitly and each backend's own
        plan note records what it actually ran.
        """
        source = open_source(src)
        if source.is_batch:
            raise ValidationError("Session.compare() takes a single source, not a batch")
        names = [str(name) for name in backends]
        for name in names:
            get_backend(name)  # validates (with did-you-mean) up front

        from repro.core.chunking import plan_row_chunks
        from repro.core.engine import HOST_MEMORY_BYTES

        # reference chunking for the notes; background (if any) is computed by
        # each run itself, so no extra pass over the data happens here.
        if isinstance(source, FileSource):
            if self.config.streaming:
                # header-only probe; each backend's run streams for itself
                from repro.io.streaming import StreamingWireScanSource

                probe = StreamingWireScanSource(source.path)
            else:
                # load the cube once and share it across every backend run,
                # instead of re-reading the file per backend
                from repro.core.source import StackSource
                from repro.io.image_stack import load_wire_scan

                source = StackSource(load_wire_scan(source.path))
                probe = source.chunk_source(self.config)
        else:
            probe = source.chunk_source(self.config)
        reference = plan_row_chunks(
            n_rows=probe.n_rows,
            n_cols=probe.n_cols,
            n_positions=probe.n_positions,
            n_depth_bins=self.config.grid.n_bins,
            device_memory_bytes=HOST_MEMORY_BYTES,
            layout=self.config.layout,
            rows_per_chunk=self.config.rows_per_chunk,
        )
        if self.config.rows_per_chunk is not None:
            shared_note = f"compare_backends shared plan: {reference.summary()}"
        else:
            shared_note = (
                f"compare_backends reference plan: {reference.summary()} "
                "(rows_per_chunk unset: backends may chunk differently; "
                "each report's own plan note is authoritative)"
            )

        out: Dict[str, RunResult] = {}
        for name in names:
            run = self.on(name).run(source)
            run.report.notes.append(shared_note)
            out[name] = run
        return out


def session(
    config: Optional[ReconstructionConfig] = None,
    grid: Optional[DepthGrid] = None,
    **overrides,
) -> Session:
    """Build a :class:`Session` — the one front door to the reconstruction.

    Parameters
    ----------
    config:
        Full reconstruction configuration.  Alternatively pass ``grid`` and
        keyword overrides and a default configuration is built.
    grid:
        Depth grid (required when *config* is not given).
    **overrides:
        Any :class:`~repro.core.config.ReconstructionConfig` field, applied
        on top of the defaults when *config* is not given.
    """
    if config is None:
        if grid is None:
            raise ValidationError(
                "either a ReconstructionConfig or a DepthGrid (grid=...) must be provided"
            )
        config = ReconstructionConfig(grid=grid, **overrides)
    elif overrides or grid is not None:
        raise ValidationError("pass either a full config or grid+overrides, not both")
    return Session(config=config)

"""The fluent front door: ``repro.session(...)`` → :class:`Session` → :class:`RunResult`.

One composable entry point replaces the three historical ones
(``DepthReconstructor.reconstruct``, ``pipeline.reconstruct_file``,
``pipeline.reconstruct_many``)::

    import repro

    run = (repro.session(grid=repro.DepthGrid.from_range(0, 120, 60))
                .on("gpusim", layout="pointer3d")
                .stream(rows_per_chunk=4)
                .run(repro.open("scan.h5lite")))
    print(run.report.summary())
    print(run.to_json())          # provenance: config, plan, timings, source

A :class:`Session` is an immutable builder over a
:class:`~repro.core.config.ReconstructionConfig`: every fluent method
(:meth:`Session.on`, :meth:`Session.stream`, ...) returns a *new* session, so
sessions can be shared and forked freely.  :meth:`Session.run` executes one
source through the shared engine and returns a :class:`RunResult` that always
carries the result cube, the report and a JSON-serializable provenance
record; :meth:`Session.run_many` is the batch scheduler (worker pool,
per-item error isolation, aggregated :class:`BatchRunResult`).

Any input :func:`repro.open` understands is accepted wherever a source is
expected — in-memory stacks, files, globs, directories, ndarray+geometry.

The results side is symmetric: :meth:`RunResult.save` writes the stack
*plus* the full run record into one h5lite file, :func:`load` reconstructs
the :class:`RunResult` losslessly, and :meth:`RunResult.analyze` /
``Session.run(analyze=...)`` chain the named analysis ops of
:mod:`repro.core.ops` onto fresh or reloaded results.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import CacheStats, ResultCache, compute_cache_key, resolve_cache
from repro.core.config import AUTO, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.engine import execute as engine_execute
from repro.core.pipeline import BatchItem, BatchReport
from repro.core.registry import get_backend
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.source import FileSource, InvalidSource, Source, open as open_source
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError
from repro.utils.version import package_version

__all__ = ["RunResult", "BatchRunResult", "Session", "session", "load"]

_LOG = get_logger(__name__)


# --------------------------------------------------------------------------- #
# run results
@dataclass
class RunResult:
    """Everything one :meth:`Session.run` produced.

    Always carries the report next to the result (the old
    ``reconstruct(return_report=False)`` shape silently dropped it) plus a
    provenance record — config snapshot, plan summary, timings and source
    identity — serializable with :meth:`to_json`.
    """

    result: DepthResolvedStack
    report: ReconstructionReport
    config: ReconstructionConfig
    source: Dict = field(default_factory=dict)
    created_unix: float = 0.0
    output_path: Optional[str] = None
    text_path: Optional[str] = None
    profile_pixels: Optional[List[List[int]]] = None
    analysis: Optional["object"] = None  # AnalysisResult of the last analyze()
    #: cache provenance of the run (None when no cache was consulted); a hit
    #: records the entry path, stored-at time and the digest re-verified
    #: before serving.  Deliberately NOT part of provenance(): a hit must be
    #: provenance-identical to the recompute it replaced.
    cache_stats: Optional[CacheStats] = None

    # ------------------------------------------------------------------ #
    @property
    def data(self):
        """The depth-resolved intensity cube ``(n_bins, n_rows, n_cols)``."""
        return self.result.data

    @property
    def wall_time(self) -> float:
        """Reconstruction wall time in seconds."""
        return self.report.wall_time

    @property
    def plan_summary(self) -> Optional[str]:
        """The engine's chunk-plan note for this run, if present."""
        return next((note for note in self.report.notes if note.startswith("plan[")), None)

    # ------------------------------------------------------------------ #
    def provenance(self) -> Dict:
        """JSON-safe record of what ran, on what, and how long it took."""
        return {
            "repro_version": package_version(),
            "created_unix": self.created_unix,
            "backend": self.report.backend,
            "config": self.config.to_dict(),
            "source": dict(self.source),
            "plan": self.plan_summary,
            "timings": {
                "wall_time": self.report.wall_time,
                "compute_time": self.report.compute_time,
                "transfer_time": self.report.transfer_time,
                "simulated_device_time": self.report.simulated_device_time,
            },
            "counters": {
                "n_chunks": self.report.n_chunks,
                "n_kernel_launches": self.report.n_kernel_launches,
                "n_threads_launched": self.report.n_threads_launched,
                "n_active_pixels": self.report.n_active_pixels,
                "n_steps": self.report.n_steps,
            },
            "notes": list(self.report.notes),
            "outputs": {
                "output_path": self.output_path,
                "text_path": self.text_path,
                "profile_pixels": self.profile_pixels,
            },
        }

    def to_dict(self) -> Dict:
        """Alias of :meth:`provenance` (the serializable view of the run)."""
        return self.provenance()

    def to_json(self, indent: int = 2) -> str:
        """The provenance record as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Human-readable run summary (report plus source identity)."""
        return f"source: {self.source}\n{self.report.summary()}"

    # ------------------------------------------------------------------ #
    def _run_record(self) -> Dict:
        """The provenance record plus the full report — everything a file
        needs to reconstruct this run (:func:`load` inverts it)."""
        record = self.provenance()
        record["report"] = self.report.to_dict()
        return record

    def save(self, output_path) -> "RunResult":
        """Write the depth-resolved stack *and* the full run record to an h5lite file.

        The provenance record (config snapshot, report, timings, source
        identity, output paths) is embedded as a JSON attribute next to the
        stack, so ``repro.load(run.save(path).output_path)`` reconstructs a
        lossless :class:`RunResult` — no provenance is dropped.
        """
        from repro.io.image_stack import save_depth_resolved

        # record the destination first so the embedded record round-trips it,
        # but roll back on a failed write — provenance must never claim an
        # output file that does not exist
        previous = self.output_path
        self.output_path = str(output_path)
        try:
            save_depth_resolved(output_path, self.result, run_record=self._run_record())
        except BaseException:
            self.output_path = previous
            raise
        _LOG.info("wrote depth-resolved stack + run record to %s", output_path)
        return self

    def write_profiles(self, text_path, pixels: Optional[Sequence[Tuple[int, int]]] = None) -> "RunResult":
        """Write per-pixel depth profiles as text (default: the brightest pixel).

        The selected pixels are recorded in the provenance ``outputs`` block,
        so a later :meth:`save` (or provenance export) keeps the full record
        of what was written where.
        """
        from repro.io.text_output import write_depth_profiles

        if pixels is None:
            totals = self.result.data.sum(axis=0)
            row, col = divmod(int(totals.argmax()), self.result.n_cols)
            pixels = [(row, col)]
        pixels = [[int(r), int(c)] for r, c in pixels]
        write_depth_profiles(text_path, self.result, pixels)
        self.text_path = str(text_path)
        self.profile_pixels = pixels
        _LOG.info("wrote %d depth profile(s) to %s", len(pixels), text_path)
        return self

    def analyze(self, *ops, **single_op_params) -> "object":
        """Run named analysis ops on this result (see :mod:`repro.core.ops`).

        ``run.analyze("peaks", "fwhm")`` chains the named ops into an
        immutable pipeline, applies it, keeps the outcome on
        :attr:`analysis` and returns it.  Keyword arguments parameterize a
        *single* op: ``run.analyze("peaks", min_relative_height=0.2)``; for
        per-op parameters build the pipeline explicitly with
        :func:`repro.analysis`.  A prebuilt
        :class:`~repro.analysisgraph.AnalysisGraph` (or
        :class:`~repro.core.ops.AnalysisPipeline`) is applied as-is:
        ``run.analyze(repro.graph(...))``.
        """
        from repro.analysisgraph import AnalysisGraph
        from repro.core.ops import AnalysisPipeline, analysis

        if len(ops) == 1 and isinstance(ops[0], (AnalysisGraph, AnalysisPipeline)):
            if single_op_params:
                raise ValidationError(
                    "keyword parameters do not combine with a prebuilt "
                    "pipeline/graph; bind parameters on its nodes instead"
                )
            self.analysis = self._apply_analysis(ops[0])
            return self.analysis
        if single_op_params and len(ops) != 1:
            raise ValidationError(
                "keyword parameters require exactly one op; build a pipeline "
                "with repro.analysis(...).then(op, **params) for per-op parameters"
            )
        if single_op_params:
            pipeline = analysis((ops[0], single_op_params))
        else:
            pipeline = analysis(*ops)
        self.analysis = self._apply_analysis(pipeline)
        return self.analysis

    # ------------------------------------------------------------------ #
    def bind_cache(self, cache: ResultCache) -> "RunResult":
        """Remember the cache this run went through (analysis memoization).

        Called by :class:`~repro.core.cache.ResultCache` on every hit and
        store; subsequent :meth:`analyze` calls memoize their outcome per
        (run key, pipeline signature) in the same cache root.
        """
        self._bound_cache = cache
        return self

    def _apply_analysis(self, pipeline):
        """Apply an analysis pipeline or graph, memoized when cache-bound.

        Pipelines memoize whole-outcome per (run key, pipeline signature) —
        the pre-DAG scheme, kept so existing memo entries still hit; graphs
        memoize per node inside the graph engine (the bound cache is picked
        up there), so a parameter change recomputes only its dirty subgraph.
        """
        from repro.analysisgraph import AnalysisGraph

        if isinstance(pipeline, AnalysisGraph):
            return pipeline.apply(self)
        cache = getattr(self, "_bound_cache", None)
        if cache is not None and self.cache_stats is not None:
            return cache.analyze(self, pipeline)
        return pipeline.apply(self)


def load(path) -> RunResult:
    """Reconstruct a :class:`RunResult` from a file written by :meth:`RunResult.save`.

    The inverse of ``run.save(path)``: the depth-resolved stack is read back
    bitwise-identical and the embedded run record rebuilds the config, the
    report and the provenance, so ``repro.load(run.save(p).output_path)`` is
    a lossless round-trip.  Raises :class:`~repro.utils.validation.ValidationError`
    for depth-resolved files without a run record (written by bare
    :func:`~repro.io.image_stack.save_depth_resolved`) — read those with
    :func:`~repro.io.image_stack.load_depth_resolved`.
    """
    from repro.io.image_stack import load_run_payload

    stack, record = load_run_payload(path)
    if record is None:
        raise ValidationError(
            f"{path} holds a depth-resolved stack but no run record; it was not "
            "written by RunResult.save() — load the bare stack with "
            "repro.io.image_stack.load_depth_resolved() instead"
        )
    return _run_result_from_record(stack, record, path)


def _run_result_from_record(stack: DepthResolvedStack, record: Dict, path) -> RunResult:
    """Rebuild a :class:`RunResult` from a loaded stack + run record."""
    try:
        config = ReconstructionConfig.from_dict(record["config"])
        report = ReconstructionReport.from_dict(record["report"])
    except KeyError as exc:
        raise ValidationError(f"run record in {path} is missing the {exc} block") from None
    outputs = record.get("outputs") or {}
    return RunResult(
        result=stack,
        report=report,
        config=config,
        source=dict(record.get("source") or {}),
        created_unix=float(record.get("created_unix", 0.0)),
        # the file it was just read from, not the recorded destination: a
        # copied/moved file must not claim an output path that may be gone
        output_path=str(path),
        text_path=outputs.get("text_path"),
        profile_pixels=outputs.get("profile_pixels"),
    )


@dataclass
class BatchRunResult(BatchReport):
    """A :class:`~repro.core.pipeline.BatchReport` plus run provenance.

    Everything the old batch scheduler reported (items, throughput,
    ``summary()``) is inherited unchanged; on top of it the batch carries the
    config snapshot and source identity, serializable with :meth:`to_json`.
    """

    config: Optional[ReconstructionConfig] = None
    source: Dict = field(default_factory=dict)
    #: outcome of the last :meth:`analyze` / ``run_many(analyze=...)`` —
    #: a BatchAnalysisResult (pipeline fan-out) or GraphBatchResult (DAG)
    analysis: Optional[object] = None

    def analyze(self, *specs, executor: str = "auto",
                max_workers: Optional[int] = None) -> "object":
        """Run a batch-scope analysis over this batch and return the outcome.

        A prebuilt :class:`~repro.analysisgraph.AnalysisGraph` executes with
        per-run nodes fanned out over the items (in parallel) and reduce
        nodes consuming the collected outputs; anything else builds a linear
        pipeline exactly like :meth:`RunResult.analyze` and fans it out
        item-wise.  The outcome is kept on :attr:`analysis` and returned.
        """
        from repro.analysisgraph import AnalysisGraph
        from repro.core.ops import AnalysisPipeline, analysis as build_analysis

        if len(specs) == 1 and isinstance(specs[0], AnalysisGraph):
            self.analysis = specs[0].apply(
                self, executor=executor, max_workers=max_workers
            )
        elif len(specs) == 1 and isinstance(specs[0], AnalysisPipeline):
            self.analysis = specs[0].apply(self)
        else:
            self.analysis = build_analysis(*specs).apply(self)
        return self.analysis

    def to_dict(self) -> Dict:
        """JSON-safe record of the batch run."""
        return {
            "repro_version": package_version(),
            "backend": self.backend,
            "streaming": self.streaming,
            "config": None if self.config is None else self.config.to_dict(),
            "source": dict(self.source),
            "max_workers": self.max_workers,
            "wall_time": self.wall_time,
            "n_files": self.n_files,
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "n_cached": self.n_cached,
            "throughput_files_per_second": self.throughput_files_per_second,
            "analysis": None if self.analysis is None else self.analysis.to_dict(),
            "items": [
                {
                    "input_path": item.input_path,
                    "ok": item.ok,
                    "cached": item.cached,
                    "wall_time": item.wall_time,
                    "output_path": item.output_path,
                    "error": item.error,
                }
                for item in self.items
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        """The batch provenance record as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    # ------------------------------------------------------------------ #
    def save_all(self, output_dir) -> List[str]:
        """Save every successful item's run (stack + record) into *output_dir*.

        Uses the same ``<stem>_depth.h5lite`` naming (with collision
        suffixes) as ``run_many(output_dir=...)``; each file embeds its
        item's full run record, so :meth:`load_dir` round-trips the batch.
        Requires the batch to have been run with ``keep_results=True``.
        """
        runs = [item.run for item in self.succeeded]
        if any(run is None for run in runs):
            raise ValidationError(
                "save_all() needs the per-item results; re-run the batch with "
                "keep_results=True (or pass output_dir= to run_many directly)"
            )
        os.makedirs(output_dir, exist_ok=True)
        stems = [
            os.path.splitext(os.path.basename(item.input_path))[0]
            for item in self.succeeded
        ]
        paths = _output_names(stems, str(output_dir))
        for item, run, path in zip(self.succeeded, runs, paths):
            run.save(path)
            item.output_path = run.output_path
        _LOG.info("saved %d run(s) to %s", len(paths), output_dir)
        return paths

    @classmethod
    def load_dir(cls, directory) -> "BatchRunResult":
        """Reconstruct a batch from the run files saved in *directory*.

        Every ``.h5lite`` file in the directory carrying a depth-resolved
        run record becomes one item.  Healthy files of *other* repro formats
        (e.g. wire-scan inputs sitting alongside) and record-less legacy
        depth-resolved files are skipped; a file that fails to load —
        corrupt, truncated, or with a malformed record — is captured as a
        failed item, mirroring ``run_many``'s per-item error isolation.
        The batch config is the items' shared config when they agree,
        ``None`` otherwise.
        """
        from repro.io.h5lite import H5LiteError
        from repro.io.image_stack import UnrecognizedFormatError, load_run_payload

        directory = str(directory)
        if not os.path.isdir(directory):
            raise ValidationError(f"load_dir() needs a directory, got {directory!r}")
        paths = sorted(
            os.path.join(directory, name)
            for name in os.listdir(directory)
            if name.endswith(".h5lite")
        )
        items: List[BatchItem] = []
        configs: List[ReconstructionConfig] = []
        backends: List[str] = []
        for path in paths:
            try:
                stack, record = load_run_payload(path)
                if record is None:
                    # a bare depth-resolved stack (pre-redesign output or
                    # save_depth_resolved without a record) is not a run
                    # file: skip it like any other foreign format
                    continue
                run = _run_result_from_record(stack, record, path)
            except UnrecognizedFormatError:
                continue  # healthy h5lite of another format: not ours
            except (H5LiteError, ValidationError, OSError) as exc:
                items.append(BatchItem(
                    input_path=path, ok=False, error=f"{type(exc).__name__}: {exc}",
                ))
                continue
            items.append(BatchItem(
                input_path=path,
                ok=True,
                wall_time=run.report.wall_time,
                output_path=path,
                report=run.report,
                result=run.result,
                run=run,
            ))
            configs.append(run.config)
            backends.append(run.report.backend)
        shared_config = configs[0] if configs and all(c == configs[0] for c in configs) else None
        return cls(
            items=items,
            wall_time=0.0,
            max_workers=0,
            backend=backends[0] if backends and all(b == backends[0] for b in backends) else "",
            streaming=shared_config.streaming if shared_config is not None else False,
            config=shared_config,
            source={"kind": "batch-dir", "directory": directory, "n_items": len(items)},
        )


def _analyze_batch(outcome: BatchRunResult, analyze) -> BatchRunResult:
    """Run the ``run_many(analyze=...)`` spec on a finished batch, if any."""
    if analyze is None:
        return outcome
    single_spec = (
        isinstance(analyze, tuple) and len(analyze) == 2
        and isinstance(analyze[0], str) and isinstance(analyze[1], dict)
    )
    if isinstance(analyze, (list, tuple)) and not single_spec:
        outcome.analyze(*analyze)
    else:
        outcome.analyze(analyze)
    return outcome


# --------------------------------------------------------------------------- #
# the fluent builder
def _output_names(stems: Sequence[str], output_dir: str) -> List[str]:
    """One ``<stem>_depth.h5lite`` per item; colliding names get a numeric suffix.

    Items from different directories may share a stem — without
    disambiguation their outputs would silently overwrite each other.  Every
    generated name is reserved, so a suffixed name can never collide with a
    later item whose stem happens to end in ``_<n>``.
    """
    used: set = set()
    out: List[str] = []
    for stem in stems:
        name = f"{stem}_depth.h5lite"
        suffix = 1
        while name in used:
            name = f"{stem}_{suffix}_depth.h5lite"
            suffix += 1
        used.add(name)
        out.append(os.path.join(output_dir, name))
    return out


def _item_path(source: Source) -> str:
    """The per-item identifier batch tables key on (path for files)."""
    if isinstance(source, FileSource):
        return source.path
    return source.label()


@dataclass(frozen=True)
class Session:
    """An immutable, fluent reconstruction front door.

    Build one with :func:`repro.session`, refine it with the fluent methods
    (each returns a **new** session) and execute with :meth:`run` /
    :meth:`run_many`::

        sess = repro.session(grid=grid).on("gpusim", layout="pointer3d").stream(4)
        run = sess.run(stack_or_path)
    """

    config: ReconstructionConfig
    #: session-level result cache (None: uncached); set with :meth:`cached`
    cache: Optional[ResultCache] = None

    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> DepthGrid:
        """The depth grid of this session."""
        return self.config.grid

    @property
    def backend_name(self) -> str:
        """Name of the configured backend."""
        return self.config.backend

    def _with_config(self, config: ReconstructionConfig) -> "Session":
        """A session with a new config and everything else (cache) kept."""
        return Session(config=config, cache=self.cache)

    def on(self, backend: str, **overrides) -> "Session":
        """A session running on a different backend (plus config overrides)."""
        return self._with_config(self.config.with_backend(backend, **overrides))

    def stream(self, rows_per_chunk: Optional[int] = None) -> "Session":
        """A session streaming file sources from disk (out-of-core mode)."""
        overrides: Dict = {"streaming": True}
        if rows_per_chunk is not None:
            overrides["rows_per_chunk"] = rows_per_chunk
        return self._with_config(self.config.with_overrides(**overrides))

    def in_memory(self) -> "Session":
        """A session loading file sources fully into host memory."""
        return self._with_config(self.config.with_overrides(streaming=False))

    def configure(self, **overrides) -> "Session":
        """A session with arbitrary config fields replaced.

        ``workers=`` is accepted as a convenience alias: an integer sets
        ``n_workers``; the string ``"auto"`` turns on the auto-tuner for both
        the worker count *and* the executor strategy
        (``Session.configure(workers="auto")`` is the one-stop surface for
        tuned host parallelism).
        """
        if "workers" in overrides:
            workers = overrides.pop("workers")
            if workers == AUTO:
                overrides.setdefault("n_workers", AUTO)
                overrides.setdefault("executor", AUTO)
            else:
                overrides.setdefault("n_workers", int(workers))
        return self._with_config(self.config.with_overrides(**overrides))

    def cached(self, cache=True) -> "Session":
        """A session whose runs consult a content-addressed result cache.

        ``cache`` accepts ``True`` (the default root: ``REPRO_CACHE_DIR`` or
        ``~/.cache/repro``), a cache-root path, a prebuilt
        :class:`~repro.core.cache.ResultCache`, or ``False`` to return an
        uncached session again.  Every :meth:`run` / :meth:`run_many` on the
        returned session checks the cache before scheduling and stores fresh
        results after computing them; a per-call ``cache=`` argument still
        overrides.
        """
        return Session(config=self.config, cache=resolve_cache(cache))

    # ------------------------------------------------------------------ #
    def cache_key(self, src) -> Optional[str]:
        """The content-addressed key a cached run of *src* would use.

        ``None`` when the source cannot promise a stable identity (and so
        bypasses the cache).  This is the admission probe of the serving
        layer: ``repro-serve`` keys its single-flight table and cache-first
        admission on exactly the key :meth:`run` would compute, without
        triggering the run itself.  Fingerprinting is cheap by contract
        (file sources never read the image cube).
        """
        source = open_source(src)
        if source.is_batch:
            raise ValidationError(
                "Session.cache_key() takes a single source, not a batch; "
                "batches fingerprint per item"
            )
        fingerprint = source.fingerprint()
        if fingerprint is None:
            return None
        return compute_cache_key(fingerprint, self.config)

    def run(
        self,
        src,
        *,
        output_path=None,
        text_path=None,
        text_pixels: Optional[Sequence[Tuple[int, int]]] = None,
        analyze=None,
        cache=None,
    ) -> RunResult:
        """Reconstruct one source and return the :class:`RunResult`.

        *src* is anything :func:`repro.open` accepts (except a batch — use
        :meth:`run_many`).  ``output_path`` / ``text_path`` optionally write
        the h5lite result and text depth profiles, exactly like the old file
        pipeline did.  ``analyze`` runs named analysis ops (an op name, a
        sequence of names/specs, or a prebuilt
        :class:`~repro.core.ops.AnalysisPipeline`) on the fresh result; the
        outcome lands on :attr:`RunResult.analysis`.  Text profiles are
        written before the h5lite save so the embedded run record carries
        every output path.

        ``cache`` overrides the session-level cache for this run (``True``,
        ``False``, a root path or a :class:`~repro.core.cache.ResultCache` —
        see :meth:`cached`).  With a cache active, a fingerprint-identical
        earlier result is served bitwise-identical instead of recomputed
        (``run.cache_stats`` records the hit) and fresh results are stored;
        requested outputs and analyses are produced either way.
        """
        source = open_source(src)
        if source.is_batch:
            raise ValidationError(
                f"Session.run() reconstructs a single source, got {source.label()}; "
                "use Session.run_many() for batches"
            )
        active_cache = resolve_cache(cache, self.cache)
        key: Optional[str] = None
        if active_cache is not None:
            fingerprint = source.fingerprint()
            if fingerprint is not None:
                key = compute_cache_key(fingerprint, self.config)
                hit = active_cache.get(key)
                if hit is not None:
                    _LOG.debug("session: cache hit %s for %s", key[:12], source.label())
                    return self._finish_run(
                        hit, output_path, text_path, text_pixels, analyze
                    )
        run = self._run_cold(source)
        if key is not None:
            active_cache.put(key, run)
        return self._finish_run(run, output_path, text_path, text_pixels, analyze)

    def _run_cold(self, source: Source) -> RunResult:
        """One uncached reconstruction of an already-opened single source."""
        created = time.time()
        chunk_source = source.chunk_source(self.config)
        # resolve "auto" markers against the tuner cache *before* the engine
        # runs: executors must only ever see concrete worker counts.  The
        # run's provenance keeps the user's config (the cache key was
        # computed from it); the resolution is recorded in the notes.
        config, decision = self._resolve_auto(chunk_source)
        backend = get_backend(config.backend)
        _LOG.debug("session: %s via %s", chunk_source.describe(), config.backend)
        result, report = engine_execute(
            chunk_source, config, backend.make_executor(config)
        )
        if decision is not None:
            report.notes.append(
                f"autotune: executor={decision.executor} n_workers={decision.n_workers} "
                f"({decision.reason})"
            )
        accounting_note = getattr(chunk_source, "accounting_note", None)
        if accounting_note is not None:
            report.notes.append(accounting_note())
        return RunResult(
            result=result,
            report=report,
            config=self.config,
            source=source.identity(),
            created_unix=created,
        )

    def _resolve_auto(self, chunk_source):
        """Concrete (config, decision) for this run; no-op without ``auto``."""
        if self.config.executor != AUTO and self.config.n_workers != AUTO:
            return self.config, None
        from repro.perf.autotune import resolve_auto_config

        root = self.cache.root if self.cache is not None else None
        return resolve_auto_config(
            self.config,
            chunk_source.n_positions,
            chunk_source.n_rows,
            chunk_source.n_cols,
            root=root,
        )

    @staticmethod
    def _finish_run(run: RunResult, output_path, text_path, text_pixels, analyze) -> RunResult:
        """Write the requested outputs / analysis; shared by hits and colds.

        Output writing comes *after* any cache store, so cache entries never
        embed a caller's output paths — a hit serves the reconstruction, the
        session serves this request's side effects.
        """
        if text_path is not None:
            run.write_profiles(text_path, pixels=text_pixels)
        if output_path is not None:
            run.save(output_path)
        if analyze is not None:
            from repro.analysisgraph import AnalysisGraph
            from repro.core.ops import as_pipeline

            if isinstance(analyze, AnalysisGraph):
                run.analysis = run._apply_analysis(analyze)
            else:
                run.analysis = run._apply_analysis(as_pipeline(analyze))
        return run

    def run_many(
        self,
        srcs,
        *,
        max_workers: Optional[int] = None,
        output_dir: Optional[str] = None,
        keep_results: bool = True,
        memory_budget: Optional[int] = None,
        cache=None,
        analyze=None,
    ) -> BatchRunResult:
        """Reconstruct a batch of sources with overlapping whole-file runs.

        Items are scheduled onto ``max_workers`` threads (default: up to 4,
        never more than the number of items), additionally gated by the
        host-memory budget: concurrency is clamped so the concurrently
        resident working sets (probed per item from file headers — see
        :func:`~repro.core.pipeline.plan_batch_concurrency`) fit
        *memory_budget*, the batch-level twin of the engine's streaming
        chunk budget.  A failure in one item is isolated: it is recorded on
        that item's :class:`~repro.core.pipeline.BatchItem` and the rest of
        the batch continues.

        Parameters
        ----------
        srcs:
            Anything :func:`repro.open` accepts — a list of paths/stacks, a
            glob, a directory, or a single source (a batch of one).
        max_workers:
            Concurrent reconstructions.  Thread-based: NumPy kernels and file
            I/O release the GIL for long stretches, and the multiprocess
            backend adds cross-process parallelism through the persistent
            :func:`repro.pool` worker pool, which every item reuses — a
            batch pays process-pool start-up once, not once per file.
        output_dir:
            When given, each item's depth-resolved result is written to
            ``<output_dir>/<stem>_depth.h5lite`` (the directory is created).
        keep_results:
            Keep each item's :class:`~repro.core.result.DepthResolvedStack`
            on its batch item.  Disable for very large batches where only
            the reports (or the written output files) are wanted.
        memory_budget:
            Host bytes the concurrently resident items may occupy
            (default :data:`~repro.core.pipeline.BATCH_MEMORY_BUDGET_BYTES`).
        cache:
            Per-call override of the session-level result cache (``True``,
            ``False``, a root path or a
            :class:`~repro.core.cache.ResultCache` — see :meth:`cached`).
            With a cache active the batch is **incremental**: every item's
            fingerprint is probed first, cached items are served without
            reconstruction (their :class:`~repro.core.pipeline.BatchItem`
            has ``cached=True``), and only the changed/unseen items are
            scheduled — worker count and the memory-budget gate are planned
            over the recomputed items alone.
        analyze:
            Batch-scope analysis to run on the finished batch — an
            :class:`~repro.analysisgraph.AnalysisGraph` (per-run nodes fan
            out, reduce nodes consume the collected outputs, values memoized
            per node when a cache is active), a prebuilt pipeline, or
            linear op specs.  The outcome lands on
            :attr:`BatchRunResult.analysis`.
        """
        if isinstance(srcs, (list, tuple)):
            # per-entry isolation: an entry that cannot even be normalized
            # (bad glob, empty directory, unsupported type) becomes a failed
            # item, and the rest of the batch still runs
            sources: List[Source] = []
            for entry in srcs:
                try:
                    sources.extend(open_source(entry).items())
                except ValidationError as exc:
                    sources.append(InvalidSource(entry, exc))
        else:
            sources = open_source(srcs).items()
        identity = {
            "kind": "batch", "n_items": len(sources),
            "items": [source.identity() for source in sources],
        }
        if not sources:
            empty = BatchRunResult(
                items=[], wall_time=0.0, max_workers=0,
                backend=self.config.backend, streaming=self.config.streaming,
                config=self.config, source=identity,
            )
            return _analyze_batch(empty, analyze)
        from repro.core.pipeline import plan_batch_concurrency, run_batch_jobs

        batch_start = time.perf_counter()
        output_paths: List[Optional[str]] = [None] * len(sources)
        if output_dir is not None:
            os.makedirs(output_dir, exist_ok=True)
            output_paths = _output_names([source.label() for source in sources], output_dir)

        # incremental recompute: probe every fingerprintable item against the
        # cache up front, so only the changed/unseen items reach the scheduler.
        # Keys are kept so a recomputed item stores its result without
        # fingerprinting (and probing) the same source a second time.
        active_cache = resolve_cache(cache, self.cache)
        hit_items: Dict[int, BatchItem] = {}
        keys: List[Optional[str]] = [None] * len(sources)
        if active_cache is not None:
            for index, source in enumerate(sources):
                fingerprint = source.fingerprint()
                if fingerprint is None:
                    continue
                keys[index] = compute_cache_key(fingerprint, self.config)
                hit = active_cache.get(keys[index])
                if hit is None:
                    continue
                hit_items[index] = self._serve_batch_hit(
                    hit, source, output_paths[index], keep_results
                )

        pending = [index for index in range(len(sources)) if index not in hit_items]

        # worker count and the memory-budget gate are planned over the items
        # that will actually reconstruct — cached hits occupy no slot
        if pending:
            if max_workers is None:
                max_workers = min(4, len(pending))
            max_workers = max(1, min(int(max_workers), len(pending)))
            max_workers = plan_batch_concurrency(
                [sources[index] for index in pending], self.config,
                max_workers, memory_budget=memory_budget,
            )
        else:
            max_workers = 0

        from concurrent.futures import CancelledError

        def run_one(job: Tuple[Source, Optional[str], Optional[str]]) -> BatchItem:
            source, item_output, key = job
            start = time.perf_counter()
            try:
                # cache=False: the up-front probe already established the miss
                # and computed the key — recompute cold and store it directly,
                # instead of fingerprinting the same source a second time
                outcome = self.run(source, output_path=item_output, cache=False)
                if key is not None:
                    active_cache.put(key, outcome)
            # per-item isolation: record, don't abort.  CancelledError is a
            # BaseException since 3.8 and can surface from a pool future that
            # was cancelled out from under the run — still one item's failure
            except (Exception, CancelledError) as exc:
                wall = time.perf_counter() - start
                _LOG.warning("batch: %s failed after %.3fs: %s", _item_path(source), wall, exc)
                return BatchItem(
                    input_path=_item_path(source),
                    ok=False,
                    wall_time=wall,
                    output_path=item_output,
                    error=f"{type(exc).__name__}: {exc}",
                )
            wall = time.perf_counter() - start
            return BatchItem(
                input_path=_item_path(source),
                ok=True,
                wall_time=wall,
                output_path=outcome.output_path,
                report=outcome.report,
                result=outcome.result if keep_results else None,
                run=outcome if keep_results else None,
            )

        jobs = [(sources[index], output_paths[index], keys[index]) for index in pending]
        computed = run_batch_jobs(jobs, run_one, max_workers) if jobs else []
        by_index = dict(zip(pending, computed))
        items = [
            hit_items[index] if index in hit_items else by_index[index]
            for index in range(len(sources))
        ]
        wall = time.perf_counter() - batch_start

        outcome = BatchRunResult(
            items=items,
            wall_time=wall,
            max_workers=max_workers,
            backend=self.config.backend,
            streaming=self.config.streaming,
            config=self.config,
            source=identity,
        )
        _LOG.info("batch finished: %s", outcome.summary().splitlines()[0])
        return _analyze_batch(outcome, analyze)

    def _serve_batch_hit(
        self,
        run: RunResult,
        source: Source,
        item_output: Optional[str],
        keep_results: bool,
    ) -> BatchItem:
        """One batch item served from the cache (output still written).

        A failing output write is that *item's* failure, mirroring the
        per-item isolation of the recompute path.
        """
        start = time.perf_counter()
        try:
            if item_output is not None:
                run.save(item_output)
        except Exception as exc:
            wall = time.perf_counter() - start
            _LOG.warning(
                "batch: cached %s failed to write its output after %.3fs: %s",
                _item_path(source), wall, exc,
            )
            return BatchItem(
                input_path=_item_path(source),
                ok=False,
                wall_time=wall,
                output_path=item_output,
                error=f"{type(exc).__name__}: {exc}",
                cached=True,
            )
        return BatchItem(
            input_path=_item_path(source),
            ok=True,
            wall_time=time.perf_counter() - start,
            output_path=run.output_path,
            report=run.report,
            result=run.result if keep_results else None,
            run=run if keep_results else None,
            cached=True,
        )

    # ------------------------------------------------------------------ #
    def compare(self, src, backends) -> Dict[str, RunResult]:
        """Run several backends on the same source and collect their runs.

        Returns a mapping ``backend name -> RunResult``; useful for
        correctness cross-checks and for the benchmark harness.

        Every backend name is validated (and each backend instantiated)
        *before* any reconstruction runs, so a typo in the last name cannot
        waste the runs before it.  Each report's notes additionally carry a
        reference engine plan summary for this source/config.  With
        ``config.rows_per_chunk`` fixed, every backend runs that exact
        chunking and the comparison is attributable to identical chunks;
        when it is unset the note says so explicitly and each backend's own
        plan note records what it actually ran.
        """
        source = open_source(src)
        if source.is_batch:
            raise ValidationError("Session.compare() takes a single source, not a batch")
        names = [str(name) for name in backends]
        for name in names:
            get_backend(name)  # validates (with did-you-mean) up front

        from repro.core.chunking import plan_row_chunks
        from repro.core.engine import HOST_MEMORY_BYTES

        # reference chunking for the notes; background (if any) is computed by
        # each run itself, so no extra pass over the data happens here.
        if isinstance(source, FileSource):
            if self.config.streaming:
                # header-only probe; each backend's run streams for itself
                from repro.io.streaming import StreamingWireScanSource

                probe = StreamingWireScanSource(source.path)
            else:
                # load the cube once and share it across every backend run,
                # instead of re-reading the file per backend
                from repro.core.source import StackSource
                from repro.io.image_stack import load_wire_scan

                source = StackSource(load_wire_scan(source.path))
                probe = source.chunk_source(self.config)
        else:
            probe = source.chunk_source(self.config)
        reference = plan_row_chunks(
            n_rows=probe.n_rows,
            n_cols=probe.n_cols,
            n_positions=probe.n_positions,
            n_depth_bins=self.config.grid.n_bins,
            device_memory_bytes=HOST_MEMORY_BYTES,
            layout=self.config.layout,
            rows_per_chunk=self.config.rows_per_chunk,
        )
        if self.config.rows_per_chunk is not None:
            shared_note = f"compare_backends shared plan: {reference.summary()}"
        else:
            shared_note = (
                f"compare_backends reference plan: {reference.summary()} "
                "(rows_per_chunk unset: backends may chunk differently; "
                "each report's own plan note is authoritative)"
            )

        out: Dict[str, RunResult] = {}
        for name in names:
            run = self.on(name).run(source)
            run.report.notes.append(shared_note)
            out[name] = run
        return out


def session(
    config: Optional[ReconstructionConfig] = None,
    grid: Optional[DepthGrid] = None,
    **overrides,
) -> Session:
    """Build a :class:`Session` — the one front door to the reconstruction.

    Parameters
    ----------
    config:
        Full reconstruction configuration.  Alternatively pass ``grid`` and
        keyword overrides and a default configuration is built.
    grid:
        Depth grid (required when *config* is not given).
    **overrides:
        Any :class:`~repro.core.config.ReconstructionConfig` field, applied
        on top of the defaults when *config* is not given.
    """
    if config is None:
        if grid is None:
            raise ValidationError(
                "either a ReconstructionConfig or a DepthGrid (grid=...) must be provided"
            )
        config = ReconstructionConfig(grid=grid, **overrides)
    elif overrides or grid is not None:
        raise ValidationError("pass either a full config or grid+overrides, not both")
    return Session(config=config)

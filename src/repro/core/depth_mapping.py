"""Mapping detector pixels to depths along the incident beam.

This module implements the geometric heart of the reconstruction — the
analogue of the paper's ``device_pixel_xyz_to_depth`` and
``device_index_to_beam_depth`` functions.

Given a detector pixel P, a wire centre C (radius r) and the choice of wire
edge, the ray that leaves the sample, grazes that edge of the wire and lands
on P is unique.  Extending that tangent ray back to the incident-beam line
gives the *critical depth*: source points shallower/deeper than it are
visible/occluded (or vice versa, depending on the edge).  Every quantity is
computed in the (y, z) plane perpendicular to the wire axis, using exactly
the intermediate quantities named in the paper's kernel
(``pixel_to_wireCenter_y``, ``pixel_to_wireCenter_z``,
``pixel_to_wireCenter_len``, ``wire_radius``, ``Dphi``, ``Depth``).

Scalar and fully vectorised (NumPy broadcasting) forms are provided; the
vectorised form is what the fast backends call, the scalar form mirrors the
CUDA per-thread code and is used by the reference backend and by tests that
cross-check the two.
"""

from __future__ import annotations

import math

import numpy as np

from repro.geometry.beam import Beam
from repro.geometry.wire import WireEdge
from repro.utils.validation import ValidationError

__all__ = [
    "pixel_yz_to_depth",
    "pixel_yz_to_depth_scalar",
    "pixel_xyz_to_depth",
    "index_to_beam_depth",
    "depth_to_index",
    "critical_wire_z_for_depth",
]


def pixel_yz_to_depth_scalar(
    pixel_y: float,
    pixel_z: float,
    wire_y: float,
    wire_z: float,
    wire_radius: float,
    edge: int = WireEdge.LEADING,
) -> float:
    """Scalar critical-depth computation (one pixel, one wire position).

    This is a line-for-line analogue of ``device_pixel_xyz_to_depth``: it is
    deliberately written with ``math`` scalars so that the reference backend
    performs the same operation count per (pixel, wire-position) pair as the
    original per-thread CUDA/CPU code.

    Parameters
    ----------
    pixel_y, pixel_z:
        Pixel-centre (or pixel-edge) coordinates in the (y, z) occlusion
        plane, micrometres.
    wire_y, wire_z:
        Wire-centre coordinates in the same plane.
    wire_radius:
        Wire radius, micrometres.
    edge:
        +1 for the leading (+z side) edge, -1 for the trailing edge.

    Returns
    -------
    float
        Depth along the beam (z of the intersection of the tangent ray with
        the beam line y = 0), or NaN if the tangent ray does not intersect
        the beam on the sample side.
    """
    pixel_to_wire_y = wire_y - pixel_y
    pixel_to_wire_z = wire_z - pixel_z
    pixel_to_wire_len = math.hypot(pixel_to_wire_y, pixel_to_wire_z)
    if pixel_to_wire_len <= wire_radius:
        return math.nan
    dphi = math.asin(wire_radius / pixel_to_wire_len)
    theta = math.atan2(pixel_to_wire_z, pixel_to_wire_y)
    angle = theta - float(int(edge)) * dphi
    u_y = math.cos(angle)
    u_z = math.sin(angle)
    if u_y >= 0.0:
        # the tangent ray does not travel downwards towards the beam
        return math.nan
    t = -pixel_y / u_y
    if t <= 0.0:
        return math.nan
    return pixel_z + t * u_z


def pixel_yz_to_depth(
    pixel_y: np.ndarray,
    pixel_z: np.ndarray,
    wire_y: np.ndarray,
    wire_z: np.ndarray,
    wire_radius: float,
    edge: int = WireEdge.LEADING,
) -> np.ndarray:
    """Vectorised critical-depth computation.

    All coordinate arguments broadcast against each other; the result has the
    broadcast shape.  Invalid geometries (pixel inside the wire, tangent ray
    missing the beam) yield NaN.
    """
    pixel_y = np.asarray(pixel_y, dtype=np.float64)
    pixel_z = np.asarray(pixel_z, dtype=np.float64)
    wire_y = np.asarray(wire_y, dtype=np.float64)
    wire_z = np.asarray(wire_z, dtype=np.float64)
    if wire_radius <= 0:
        raise ValidationError("wire_radius must be positive")

    pixel_to_wire_y = wire_y - pixel_y
    pixel_to_wire_z = wire_z - pixel_z
    pixel_to_wire_len = np.hypot(pixel_to_wire_y, pixel_to_wire_z)

    with np.errstate(invalid="ignore", divide="ignore"):
        ratio = np.where(pixel_to_wire_len > wire_radius, wire_radius / pixel_to_wire_len, np.nan)
        dphi = np.arcsin(ratio)
        theta = np.arctan2(pixel_to_wire_z, pixel_to_wire_y)
        angle = theta - float(int(edge)) * dphi
        u_y = np.cos(angle)
        u_z = np.sin(angle)
        t = np.where(u_y < 0.0, -pixel_y / u_y, np.nan)
        depth = np.where(t > 0.0, pixel_z + t * u_z, np.nan)
    return depth


def pixel_xyz_to_depth(
    pixel_xyz: np.ndarray,
    wire_center_yz: np.ndarray,
    wire_radius: float,
    edge: int = WireEdge.LEADING,
    beam: Beam | None = None,
) -> np.ndarray:
    """Critical depth from full 3-D pixel coordinates.

    The wire axis is along x, so only the (y, z) components of the pixel
    position enter the tangent construction; the x coordinate is ignored
    (an infinite-cylinder approximation, identical to the original code).

    Parameters
    ----------
    pixel_xyz:
        Array of shape ``(..., 3)`` with lab pixel coordinates.
    wire_center_yz:
        Array of shape ``(..., 2)`` with the wire-centre (y, z).
    wire_radius:
        Wire radius.
    edge:
        +1 leading, -1 trailing.
    beam:
        Only the canonical beam (+z through the origin) is supported by this
        fast path; a non-canonical beam raises ``ValidationError``.
    """
    if beam is not None and not beam.is_canonical():
        raise ValidationError(
            "pixel_xyz_to_depth requires the canonical beam (+z through the origin); "
            "transform coordinates into the beam frame first"
        )
    pixel_xyz = np.asarray(pixel_xyz, dtype=np.float64)
    wire_center_yz = np.asarray(wire_center_yz, dtype=np.float64)
    if pixel_xyz.shape[-1] != 3:
        raise ValidationError("pixel_xyz must have a trailing axis of length 3")
    if wire_center_yz.shape[-1] != 2:
        raise ValidationError("wire_center_yz must have a trailing axis of length 2")
    return pixel_yz_to_depth(
        pixel_xyz[..., 1],
        pixel_xyz[..., 2],
        wire_center_yz[..., 0],
        wire_center_yz[..., 1],
        wire_radius,
        edge,
    )


def index_to_beam_depth(index, depth_start: float, depth_step: float) -> np.ndarray:
    """Depth (bin centre) of depth-resolved image *index*.

    Functional form of ``device_index_to_beam_depth``; prefer
    :meth:`repro.core.depth_grid.DepthGrid.index_to_depth` in new code.
    """
    index = np.asarray(index, dtype=np.float64)
    return depth_start + (index + 0.5) * float(depth_step)


def depth_to_index(depth, depth_start: float, depth_step: float) -> np.ndarray:
    """Inverse of :func:`index_to_beam_depth` (floor to the containing bin)."""
    depth = np.asarray(depth, dtype=np.float64)
    return np.floor((depth - float(depth_start)) / float(depth_step)).astype(np.int64)


def critical_wire_z_for_depth(
    depth: np.ndarray,
    pixel_y: np.ndarray,
    pixel_z: np.ndarray,
    wire_y: float,
    wire_radius: float,
    edge: int = WireEdge.LEADING,
) -> np.ndarray:
    """Wire-centre z at which the ray (depth → pixel) grazes the given edge.

    This is the inverse problem of :func:`pixel_yz_to_depth` for a wire
    constrained to a horizontal trajectory at height *wire_y*: it answers
    "where must the wire centre be for the source at *depth* to be exactly on
    the shadow boundary of this pixel?".  The synthetic forward model and the
    scan-design helpers use it; it also gives a strong analytic test of
    :func:`pixel_yz_to_depth` (the two must be mutual inverses).
    """
    depth = np.asarray(depth, dtype=np.float64)
    pixel_y = np.asarray(pixel_y, dtype=np.float64)
    pixel_z = np.asarray(pixel_z, dtype=np.float64)

    # Ray from source (0, depth) to pixel (pixel_y, pixel_z):
    # point at height wire_y:  z_ray = depth + (pixel_z - depth) * wire_y / pixel_y
    # direction angle in (y, z): alpha = atan2(pixel_z - depth, pixel_y)
    # The wire centre must sit at perpendicular distance r from this ray, on
    # the +z side for the leading edge (-z for trailing):
    #   z_wire = z_ray + edge * r / cos(alpha_component)
    # where the offset along z of a point at distance r perpendicular to the
    # ray is r / sin(angle between ray and z axis) ... derived via the ray
    # normal n = (-sin(alpha), cos(alpha)) scaled so its y component is zero
    # at the wire height: offset_z = r / cos(alpha') with alpha' the angle of
    # the ray to the y axis.
    ray_dy = pixel_y  # from source to pixel
    ray_dz = pixel_z - depth
    ray_len = np.hypot(ray_dy, ray_dz)
    z_ray_at_wire = depth + ray_dz * (wire_y / pixel_y)
    # Moving the wire centre purely along z by Δ changes its perpendicular
    # distance to the ray by Δ * |dy| / len, so Δ = r * len / dy for
    # distance r.  For the leading (+z side) edge the ray passes on the +z
    # side of the centre, i.e. the centre sits at z_ray - Δ.
    offset = wire_radius * ray_len / ray_dy
    return z_ray_at_wire - float(int(edge)) * offset

"""Device array layouts: the Fig. 4 design choice.

The paper compares two ways of holding the image cube on the device:

* **flat 1-D** — a single contiguous allocation; threads compute their element
  offset with ``idx + idy*NX + idz*NX*NY`` (a little extra integer
  arithmetic per access, one ``cudaMalloc`` + one ``cudaMemcpy`` per chunk);
* **pointer-based 3-D** — one allocation per 2-D slab plus a table of slab
  pointers; element access is direct but the host must allocate and copy one
  buffer per slab *and* ship the pointer table, multiplying the per-transfer
  latency cost.

Both layouts implement the same interface so the GPU-sim backend can run the
identical kernel on either; they differ in how many device allocations and
transfers they perform and in the per-element index-arithmetic cost reported
to the performance model.  The experiment in ``benchmarks/bench_fig4_layouts``
sweeps the two, reproducing Fig. 4.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.cudasim.device import Device
from repro.cudasim.memory import DeviceBuffer
from repro.cudasim.transfer import memcpy_device_to_host, memcpy_host_to_device
from repro.utils.validation import ValidationError

__all__ = ["Flat1DLayout", "Pointer3DLayout", "get_layout", "LayoutUpload"]

_POINTER_BYTES = 8  # a device pointer


@dataclass
class LayoutUpload:
    """Result of uploading a host cube with a given layout."""

    buffers: List[DeviceBuffer]
    pointer_table: DeviceBuffer | None
    n_transfers: int
    bytes_transferred: int

    def free(self) -> None:
        """Release every device allocation of this upload."""
        for buf in self.buffers:
            buf.free()
        if self.pointer_table is not None:
            self.pointer_table.free()


class _BaseLayout:
    """Shared helpers for both layouts."""

    name: str = "base"
    #: extra floating/integer operations per element access charged by the
    #: performance model (index arithmetic for flat1d, none for pointer3d)
    index_arithmetic_flops: float = 0.0

    def device_bytes_for(self, shape: Tuple[int, int, int], itemsize: int = 8) -> int:
        """Device bytes needed to hold a cube of the given shape."""
        raise NotImplementedError

    def upload(self, device: Device, cube: np.ndarray) -> LayoutUpload:
        """Allocate device storage for *cube* and copy it host→device."""
        raise NotImplementedError

    def read_cube(self, upload: LayoutUpload, shape: Tuple[int, int, int]) -> np.ndarray:
        """Device-side view of the uploaded cube as a contiguous ndarray.

        (Used by the kernel bodies; on real hardware this would be the device
        pointer handed to the kernel.)
        """
        raise NotImplementedError

    def download(self, device: Device, upload: LayoutUpload, out: np.ndarray) -> int:
        """Copy the uploaded data back device→host into *out*; returns transfers."""
        raise NotImplementedError


class Flat1DLayout(_BaseLayout):
    """Single flat allocation, offsets computed per element."""

    name = "flat1d"
    index_arithmetic_flops = 6.0  # two multiplies, two adds, plus bounds math

    def device_bytes_for(self, shape: Tuple[int, int, int], itemsize: int = 8) -> int:
        n = int(np.prod([int(s) for s in shape], dtype=np.int64))
        return n * itemsize

    def upload(self, device: Device, cube: np.ndarray) -> LayoutUpload:
        cube = np.ascontiguousarray(cube)
        buf = device.memory.allocate((cube.size,), cube.dtype)
        memcpy_host_to_device(device, buf, cube.reshape(-1), label=f"{self.name}:H2D")
        return LayoutUpload(buffers=[buf], pointer_table=None, n_transfers=1,
                            bytes_transferred=int(cube.nbytes))

    def read_cube(self, upload: LayoutUpload, shape: Tuple[int, int, int]) -> np.ndarray:
        return upload.buffers[0].device_array().reshape(shape)

    def download(self, device: Device, upload: LayoutUpload, out: np.ndarray) -> int:
        flat = np.ascontiguousarray(out).reshape(-1)
        memcpy_device_to_host(device, flat, upload.buffers[0], label=f"{self.name}:D2H")
        out[...] = flat.reshape(out.shape)
        return 1


class Pointer3DLayout(_BaseLayout):
    """One allocation per leading-axis slab plus a pointer table."""

    name = "pointer3d"
    index_arithmetic_flops = 2.0  # pointer chase + column offset

    def device_bytes_for(self, shape: Tuple[int, int, int], itemsize: int = 8) -> int:
        n_slabs = int(shape[0])
        slab_elements = int(shape[1]) * int(shape[2])
        return n_slabs * slab_elements * itemsize + n_slabs * _POINTER_BYTES

    def upload(self, device: Device, cube: np.ndarray) -> LayoutUpload:
        cube = np.ascontiguousarray(cube)
        if cube.ndim != 3:
            raise ValidationError("Pointer3DLayout expects a 3-D cube")
        buffers: List[DeviceBuffer] = []
        total_bytes = 0
        for slab_index in range(cube.shape[0]):
            slab = cube[slab_index]
            buf = device.memory.allocate(slab.shape, slab.dtype)
            memcpy_host_to_device(device, buf, slab, label=f"{self.name}:H2D:slab{slab_index}")
            buffers.append(buf)
            total_bytes += int(slab.nbytes)
        # the pointer table itself must also be built on the host and shipped
        pointer_table = device.memory.allocate((cube.shape[0],), np.int64)
        handles = np.array([b.handle for b in buffers], dtype=np.int64)
        memcpy_host_to_device(device, pointer_table, handles, label=f"{self.name}:H2D:pointers")
        total_bytes += int(handles.nbytes)
        return LayoutUpload(
            buffers=buffers,
            pointer_table=pointer_table,
            n_transfers=cube.shape[0] + 1,
            bytes_transferred=total_bytes,
        )

    def read_cube(self, upload: LayoutUpload, shape: Tuple[int, int, int]) -> np.ndarray:
        slabs = [buf.device_array().reshape(shape[1], shape[2]) for buf in upload.buffers]
        return np.stack(slabs, axis=0)

    def download(self, device: Device, upload: LayoutUpload, out: np.ndarray) -> int:
        if out.shape[0] != len(upload.buffers):
            raise ValidationError("output leading axis does not match the number of slabs")
        for slab_index, buf in enumerate(upload.buffers):
            slab = np.ascontiguousarray(out[slab_index])
            memcpy_device_to_host(device, slab, buf, label=f"{self.name}:D2H:slab{slab_index}")
            out[slab_index] = slab
        return len(upload.buffers)


_LAYOUTS = {
    Flat1DLayout.name: Flat1DLayout,
    Pointer3DLayout.name: Pointer3DLayout,
}


def get_layout(name: str) -> _BaseLayout:
    """Return a layout instance by name (``'flat1d'`` or ``'pointer3d'``)."""
    try:
        return _LAYOUTS[name]()
    except KeyError:
        raise ValidationError(
            f"unknown layout {name!r}; available: {sorted(_LAYOUTS)}"
        ) from None

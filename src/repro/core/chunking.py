"""Row-chunk streaming planner.

The paper's data sets (2.1–5.2 GB) do not fit in the Tesla M2070's 6 GB
device memory together with the temporaries, so the image cube is streamed
to the device a few detector rows at a time (Fig. 2: "each time only
processing 2 rows"), and the per-chunk results are stitched back together on
the host.

``plan_row_chunks`` chooses the chunk size: either the caller fixes
``rows_per_chunk`` (as the original program does) or the planner picks the
largest number of rows whose device working set — input cube slab, output
histogram slab, geometry tables and layout overhead — fits in the available
device memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.layouts import get_layout
from repro.utils.validation import ValidationError

__all__ = [
    "ChunkPlan",
    "plan_row_chunks",
    "estimate_chunk_device_bytes",
    "DEFAULT_MIN_ELEMENTS_PER_DISPATCH",
    "DEFAULT_COMPUTE_PER_DISPATCH_RATIO",
    "min_elements_for_dispatch",
    "granularity_floor_rows",
    "plan_worker_bands",
]

_FLOAT_BYTES = 8
_MASK_BYTES = 1

#: Default floor on (step, row, col) elements per dispatched work unit.
#: Below this, dispatch overhead (a pool submit + a future wait, or a shm
#: lease + copy) rivals the kernel time of the unit itself and the scaling
#: curve bends down.  Calibrate it to a measured host with
#: :func:`min_elements_for_dispatch` (the auto-tuner does).
DEFAULT_MIN_ELEMENTS_PER_DISPATCH = 65536

#: How many times longer than the dispatch overhead a work unit's compute
#: should run.  10x keeps the overhead under ~10 % of each dispatch.
DEFAULT_COMPUTE_PER_DISPATCH_RATIO = 10.0


def min_elements_for_dispatch(
    dispatch_overhead_s: float,
    elements_per_second: float,
    target_ratio: float = DEFAULT_COMPUTE_PER_DISPATCH_RATIO,
) -> int:
    """Element floor per work unit from *measured* host throughput.

    A dispatch that costs ``dispatch_overhead_s`` seconds should carry at
    least ``target_ratio`` times that much kernel work, i.e.
    ``target_ratio * dispatch_overhead_s * elements_per_second`` elements.
    Falls back to :data:`DEFAULT_MIN_ELEMENTS_PER_DISPATCH` when the inputs
    are degenerate (non-positive measurements).
    """
    if dispatch_overhead_s <= 0.0 or elements_per_second <= 0.0 or target_ratio <= 0.0:
        return DEFAULT_MIN_ELEMENTS_PER_DISPATCH
    return max(1, int(target_ratio * dispatch_overhead_s * elements_per_second))


def granularity_floor_rows(
    n_cols: int,
    n_steps: int,
    min_elements_per_dispatch: int = DEFAULT_MIN_ELEMENTS_PER_DISPATCH,
) -> int:
    """Minimum rows per dispatched band so each band meets the element floor."""
    elements_per_row = max(1, int(n_cols) * int(n_steps))
    return max(1, -(-int(min_elements_per_dispatch) // elements_per_row))


def plan_worker_bands(
    n_rows: int,
    n_cols: int,
    n_steps: int,
    n_workers: int,
    min_elements_per_dispatch: int = DEFAULT_MIN_ELEMENTS_PER_DISPATCH,
) -> List[Tuple[int, int]]:
    """Contiguous row bands for parallel dispatch, coarsened to the element floor.

    Starts from one near-equal band per worker and merges bands until every
    band carries at least *min_elements_per_dispatch* ``(step, row, col)``
    elements (except when the whole problem is smaller than the floor, which
    collapses to a single band).  Guarantees: bands tile ``[0, n_rows)`` in
    order, and there are never more bands than ``n_workers``.
    """
    if n_rows < 1:
        raise ValidationError("n_rows must be >= 1")
    n_workers = max(1, int(n_workers))
    floor_rows = granularity_floor_rows(n_cols, n_steps, min_elements_per_dispatch)
    band_rows = max(floor_rows, -(-n_rows // n_workers))
    n_bands = max(1, -(-n_rows // band_rows))
    # near-equal split of n_rows over n_bands (same scheme as one-band-per-
    # worker: the first n_rows % n_bands bands get one extra row)
    base, extra = divmod(n_rows, n_bands)
    bands: List[Tuple[int, int]] = []
    start = 0
    for index in range(n_bands):
        size = base + (1 if index < extra else 0)
        if size == 0:
            continue
        bands.append((start, start + size))
        start += size
    return bands


def estimate_chunk_device_bytes(
    rows: int,
    n_cols: int,
    n_positions: int,
    n_depth_bins: int,
    layout: str = "flat1d",
) -> int:
    """Device bytes needed to process *rows* detector rows in one chunk.

    Working set per chunk:

    * the input image slab ``n_positions × rows × n_cols`` (uploaded with the
      selected layout, which may add pointer-table overhead);
    * the depth-resolved output slab ``n_depth_bins × rows × n_cols``
      (allocated flat regardless of the input layout, as in the original);
    * the pixel-mask slab ``rows × n_cols`` (one byte per pixel) — the chunk
      window of the detector's bad-pixel mask rides along with every slab;
    * the background terms: the per-image background levels
      (``n_positions`` floats) plus one image-sized slab ``rows × n_cols``
      resident while the levels are broadcast-subtracted from the chunk;
    * the wire-position table and per-row pixel-edge tables (small).

    The mask and background terms used to be omitted, which let the
    streaming planner pick chunks that overshot the declared device budget
    on masked/background-subtracted runs.
    """
    if rows < 1:
        raise ValidationError("rows must be >= 1")
    layout_obj = get_layout(layout)
    input_bytes = layout_obj.device_bytes_for((n_positions, rows, n_cols), _FLOAT_BYTES)
    output_bytes = n_depth_bins * rows * n_cols * _FLOAT_BYTES
    mask_bytes = rows * n_cols * _MASK_BYTES
    background_bytes = n_positions * _FLOAT_BYTES + rows * n_cols * _FLOAT_BYTES
    wire_table = (n_positions) * 2 * _FLOAT_BYTES
    edge_tables = rows * 4 * _FLOAT_BYTES
    return int(
        input_bytes + output_bytes + mask_bytes + background_bytes + wire_table + edge_tables
    )


@dataclass(frozen=True)
class ChunkPlan:
    """A row-streaming plan."""

    n_rows: int
    rows_per_chunk: int
    chunks: Tuple[Tuple[int, int], ...]
    bytes_per_chunk: int
    device_memory_bytes: int
    layout: str = "flat1d"
    notes: Tuple[str, ...] = field(default_factory=tuple)

    @property
    def n_chunks(self) -> int:
        """Number of row chunks."""
        return len(self.chunks)

    def covers_all_rows(self) -> bool:
        """True if the chunks tile ``[0, n_rows)`` exactly, in order, no overlap."""
        expected = 0
        for start, stop in self.chunks:
            if start != expected or stop <= start:
                return False
            expected = stop
        return expected == self.n_rows

    def summary(self) -> str:
        """One-line description of the plan."""
        return (
            f"{self.n_chunks} chunk(s) of up to {self.rows_per_chunk} row(s), "
            f"{self.bytes_per_chunk} device bytes per chunk "
            f"(limit {self.device_memory_bytes}), layout={self.layout}"
        )


def plan_row_chunks(
    n_rows: int,
    n_cols: int,
    n_positions: int,
    n_depth_bins: int,
    device_memory_bytes: int,
    layout: str = "flat1d",
    rows_per_chunk: Optional[int] = None,
    memory_safety_fraction: float = 0.9,
) -> ChunkPlan:
    """Build a :class:`ChunkPlan` for streaming the cube through the device.

    Parameters
    ----------
    n_rows, n_cols, n_positions, n_depth_bins:
        Problem dimensions.
    device_memory_bytes:
        Usable device memory.
    layout:
        Device array layout name (affects the per-chunk footprint).
    rows_per_chunk:
        Fixed chunk size; when ``None`` the planner picks the largest size
        that fits within ``memory_safety_fraction`` of device memory.
    memory_safety_fraction:
        Fraction of device memory the working set may occupy (head-room for
        kernel scratch space, as on a real card).

    Raises
    ------
    ValidationError
        If even a single row does not fit in device memory, or a requested
        fixed chunk size does not fit.
    """
    if n_rows < 1 or n_cols < 1 or n_positions < 2 or n_depth_bins < 1:
        raise ValidationError("invalid problem dimensions for chunk planning")
    if device_memory_bytes < 1:
        raise ValidationError("device_memory_bytes must be positive")
    if not (0.0 < memory_safety_fraction <= 1.0):
        raise ValidationError("memory_safety_fraction must lie in (0, 1]")

    budget = int(device_memory_bytes * memory_safety_fraction)
    notes: List[str] = []

    def fits(rows: int) -> bool:
        return estimate_chunk_device_bytes(rows, n_cols, n_positions, n_depth_bins, layout) <= budget

    if not fits(1):
        raise ValidationError(
            "a single detector row does not fit in device memory "
            f"({estimate_chunk_device_bytes(1, n_cols, n_positions, n_depth_bins, layout)} bytes "
            f"needed, {budget} available)"
        )

    if rows_per_chunk is not None:
        rows_per_chunk = int(rows_per_chunk)
        if rows_per_chunk < 1:
            raise ValidationError("rows_per_chunk must be >= 1")
        if not fits(min(rows_per_chunk, n_rows)):
            raise ValidationError(
                f"requested rows_per_chunk={rows_per_chunk} does not fit in device memory"
            )
        chosen = min(rows_per_chunk, n_rows)
        notes.append("rows_per_chunk fixed by caller")
    else:
        # binary search for the largest chunk that fits
        lo, hi = 1, n_rows
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if fits(mid):
                lo = mid
            else:
                hi = mid - 1
        chosen = lo
        notes.append("rows_per_chunk chosen by memory fit")

    chunks = tuple(
        (start, min(start + chosen, n_rows)) for start in range(0, n_rows, chosen)
    )
    return ChunkPlan(
        n_rows=n_rows,
        rows_per_chunk=chosen,
        chunks=chunks,
        bytes_per_chunk=estimate_chunk_device_bytes(chosen, n_cols, n_positions, n_depth_bins, layout),
        device_memory_bytes=int(device_memory_bytes),
        layout=layout,
        notes=tuple(notes),
    )

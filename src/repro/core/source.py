"""The polymorphic input layer: ``repro.open()``.

The engine consumes :class:`~repro.core.engine.ChunkSource` objects, but
users hold many different things: an in-memory
:class:`~repro.core.stack.WireScanStack`, an ``.h5lite`` path, a directory
or glob of paths, or a bare intensity cube plus its geometry.  ``open()``
normalizes all of them into a :class:`Source` — the one object
:meth:`~repro.core.session.Session.run` and
:meth:`~repro.core.session.Session.run_many` accept — the way h5py's
high-level ``File`` front door hides its low-level core.

A :class:`Source` knows three things:

* its **identity** (:meth:`Source.identity`) — a JSON-safe description used
  for run provenance;
* how to produce an **engine-ready chunk source**
  (:meth:`Source.chunk_source`) for a given configuration, which is where
  the in-memory / out-of-core split is absorbed: a file source serves a
  streamed :class:`~repro.io.streaming.StreamingWireScanSource` when
  ``config.streaming`` is set and a fully-loaded stack otherwise;
* its **items** (:meth:`Source.items`) — one entry per reconstructable unit,
  which is what the batch scheduler iterates;
* its **fingerprint** (:meth:`Source.fingerprint`) — a JSON-safe digest of
  the *input content identity*, from which :mod:`repro.core.cache` derives
  content-addressed cache keys.  File sources fingerprint cheaply (path,
  size, mtime, h5lite-header digest — never the image cube); in-memory
  sources digest their actual bytes.  ``None`` means "not cacheable".
"""

from __future__ import annotations

import abc
import glob as _glob
import hashlib
import os
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.engine import ChunkSource, StackChunkSource
from repro.core.stack import WireScanStack
from repro.utils.validation import ValidationError

__all__ = ["Source", "StackSource", "FileSource", "BatchSource", "InvalidSource", "open"]

_GLOB_CHARS = ("*", "?", "[")


class Source(abc.ABC):
    """A normalized reconstruction input (see :func:`open`)."""

    #: short kind tag ("stack", "file", "batch") used in provenance
    kind: str = ""

    @property
    def is_batch(self) -> bool:
        """True when this source holds more than one reconstructable unit."""
        return False

    @abc.abstractmethod
    def identity(self) -> Dict:
        """JSON-safe description of where the data came from."""

    @abc.abstractmethod
    def label(self) -> str:
        """Short human label (file stem / stack shape) for batch tables."""

    @abc.abstractmethod
    def chunk_source(self, config) -> ChunkSource:
        """Engine-ready chunk source honouring ``config.streaming``."""

    def items(self) -> List["Source"]:
        """The individual reconstructable units (itself, unless a batch)."""
        return [self]

    def fingerprint(self) -> Optional[Dict]:
        """JSON-safe content identity for cache keys, ``None`` if uncacheable.

        A fingerprint must change whenever the reconstruction input could
        change and must never require reading the full image cube of a file
        source (fingerprinting a batch item has to stay far cheaper than
        reconstructing it).  Sources that cannot promise a stable identity
        (invalid entries, batches — which fingerprint per item) return
        ``None`` and simply bypass the cache.
        """
        return None

    def describe(self) -> str:
        """One-line description for logs."""
        return f"{type(self).__name__}({self.label()})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()


class StackSource(Source):
    """An in-memory :class:`WireScanStack` (streaming has nothing to stream)."""

    kind = "stack"

    def __init__(self, stack: WireScanStack):
        if not isinstance(stack, WireScanStack):
            raise ValidationError(f"StackSource requires a WireScanStack, got {type(stack).__name__}")
        self.stack = stack

    def identity(self) -> Dict:
        return {
            "kind": self.kind,
            "shape": list(self.stack.shape),
            "nbytes": self.stack.nbytes,
            "masked": self.stack.pixel_mask is not None,
        }

    def label(self) -> str:
        return "stack" + "x".join(str(n) for n in self.stack.shape)

    def chunk_source(self, config) -> ChunkSource:
        return StackChunkSource(self.stack)

    def fingerprint(self) -> Optional[Dict]:
        """Digest of the actual bytes plus the geometry that shapes the run.

        An in-memory stack has no path/mtime identity, so the fingerprint
        hashes what the reconstruction consumes: the image cube, the pixel
        mask, the wire trajectory and the detector/beam parameters.  Hashing
        the cube costs one pass over memory — far cheaper than any backend's
        reconstruction of the same bytes.
        """
        stack = self.stack
        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(stack.images).tobytes())
        digest.update(b"|mask|")
        if stack.pixel_mask is not None:
            digest.update(np.ascontiguousarray(stack.pixel_mask).tobytes())
        digest.update(b"|scan|")
        digest.update(np.ascontiguousarray(stack.scan.positions).tobytes())
        geometry = (
            f"wire_radius={stack.scan.wire.radius!r};"
            f"detector={stack.detector.n_rows},{stack.detector.n_cols},"
            f"{stack.detector.pixel_size!r},{stack.detector.distance!r},"
            f"{tuple(stack.detector.center)!r};"
            f"beam={tuple(stack.beam.direction)!r},{tuple(stack.beam.origin)!r},"
            f"{stack.beam.energy_min_kev!r},{stack.beam.energy_max_kev!r}"
        )
        digest.update(geometry.encode("utf-8"))
        return {
            "kind": self.kind,
            "shape": list(stack.shape),
            "sha256": digest.hexdigest(),
        }


class FileSource(Source):
    """A wire-scan ``.h5lite`` file on disk."""

    kind = "file"

    def __init__(self, path):
        # existence is checked at load time, not here: a missing file inside a
        # batch must surface as that item's failure, not abort the whole batch
        self.path = str(path)

    def identity(self) -> Dict:
        identity = {"kind": self.kind, "path": self.path}
        if os.path.isfile(self.path):
            identity["bytes"] = os.path.getsize(self.path)
        return identity

    def label(self) -> str:
        return os.path.splitext(os.path.basename(self.path))[0]

    def chunk_source(self, config) -> ChunkSource:
        if config.streaming:
            from repro.io.streaming import StreamingWireScanSource

            return StreamingWireScanSource(self.path)
        from repro.io.image_stack import load_wire_scan

        return StackChunkSource(load_wire_scan(self.path))

    def fingerprint(self) -> Optional[Dict]:
        """Path + size + mtime + h5lite-header digest, never the image cube.

        The header digest pins the file's structure and metadata; data-only
        edits are caught by size/mtime (a rewrite bumps at least the mtime).
        An unreadable or non-h5lite file returns ``None`` — it cannot be
        cached, and the failure surfaces where it always did: when the item
        is actually reconstructed.
        """
        from repro.io.h5lite import H5LiteError, header_digest

        try:
            stat = os.stat(self.path)
            digest = header_digest(self.path)
        except (OSError, H5LiteError):
            return None
        return {
            "kind": self.kind,
            "path": os.path.abspath(self.path),
            "bytes": int(stat.st_size),
            "mtime_ns": int(stat.st_mtime_ns),
            "header_sha256": digest,
        }


class InvalidSource(Source):
    """Placeholder for a batch entry that could not be normalized.

    ``Session.run_many`` wraps each entry's :func:`open` failure in one of
    these instead of aborting the whole batch, preserving per-item error
    isolation: the stored error surfaces when the item is run and lands on
    that item's :class:`~repro.core.pipeline.BatchItem`.
    """

    kind = "invalid"

    def __init__(self, obj, error: Exception):
        self.input = str(obj)
        self.error = error

    def identity(self) -> Dict:
        return {"kind": self.kind, "input": self.input, "error": str(self.error)}

    def label(self) -> str:
        return self.input

    def chunk_source(self, config) -> ChunkSource:
        raise ValidationError(str(self.error))


class BatchSource(Source):
    """An ordered collection of single sources (the batch scheduler's input)."""

    kind = "batch"

    def __init__(self, sources: Sequence[Source]):
        flattened: List[Source] = []
        for source in sources:
            flattened.extend(source.items())
        self.sources = flattened

    @property
    def is_batch(self) -> bool:
        return True

    def __len__(self) -> int:
        return len(self.sources)

    def items(self) -> List[Source]:
        return list(self.sources)

    def identity(self) -> Dict:
        return {
            "kind": self.kind,
            "n_items": len(self.sources),
            "items": [source.identity() for source in self.sources],
        }

    def label(self) -> str:
        return f"batch of {len(self.sources)}"

    def chunk_source(self, config) -> ChunkSource:
        raise ValidationError(
            f"a batch source ({self.label()}) has no single chunk source; "
            "run it with Session.run_many()"
        )


def _open_path(path: str) -> Source:
    """Normalize one path string: glob pattern, directory, or single file.

    A path naming an existing file is always taken literally, even when it
    contains glob metacharacters (``scan[1].h5lite`` is a legal filename);
    only non-existent paths are interpreted as patterns.
    """
    if any(char in path for char in _GLOB_CHARS) and not os.path.isfile(path):
        matches = sorted(_glob.glob(path))
        if not matches:
            raise ValidationError(f"glob pattern {path!r} matched no files")
        return BatchSource([FileSource(match) for match in matches])
    if os.path.isdir(path):
        matches = sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.endswith(".h5lite")
        )
        if not matches:
            raise ValidationError(f"directory {path!r} contains no .h5lite files")
        return BatchSource([FileSource(match) for match in matches])
    return FileSource(path)


def open(
    obj,
    *,
    scan=None,
    detector=None,
    beam=None,
    pixel_mask: Optional[np.ndarray] = None,
    metadata: Optional[Dict] = None,
) -> Source:
    """Normalize *obj* into a :class:`Source`.

    Accepted inputs
    ---------------
    ``Source``
        Returned unchanged.
    :class:`WireScanStack`
        Wrapped as an in-memory :class:`StackSource`.
    ``str`` / ``os.PathLike``
        A single ``.h5lite`` file, a directory of them, or a glob pattern
        (``scans/*.h5lite``) — the latter two become a :class:`BatchSource`.
    ``numpy.ndarray``
        A raw ``(n_positions, n_rows, n_cols)`` intensity cube; requires the
        ``scan`` and ``detector`` keyword geometry (``beam``, ``pixel_mask``
        and ``metadata`` are optional), from which a
        :class:`WireScanStack` is assembled.
    list / tuple
        Each element is opened recursively and the result is a flattened
        :class:`BatchSource`.
    """
    geometry = {"scan": scan, "detector": detector, "beam": beam,
                "pixel_mask": pixel_mask, "metadata": metadata}
    if isinstance(obj, np.ndarray):
        if scan is None or detector is None:
            raise ValidationError(
                "opening a bare ndarray requires scan= and detector= geometry keywords"
            )
        from repro.geometry.beam import Beam

        stack = WireScanStack(
            images=obj,
            scan=scan,
            detector=detector,
            beam=beam if beam is not None else Beam(),
            pixel_mask=pixel_mask,
            metadata=dict(metadata or {}),
        )
        return StackSource(stack)
    if isinstance(obj, (list, tuple)):
        # geometry keywords apply to each ndarray element
        if not obj:
            return BatchSource([])
        return BatchSource([open(item, **geometry) for item in obj])
    if any(value is not None for value in geometry.values()):
        # geometry keywords only make sense for raw ndarrays — silently
        # ignoring e.g. pixel_mask= on a file path would reconstruct
        # unmasked data while the caller believes the mask applied
        raise ValidationError(
            "geometry keywords (scan=, detector=, beam=, pixel_mask=, metadata=) "
            f"apply to ndarray inputs only, not {type(obj).__name__}"
        )
    if isinstance(obj, Source):
        return obj
    if isinstance(obj, WireScanStack):
        return StackSource(obj)
    if isinstance(obj, (str, os.PathLike)):
        return _open_path(os.fspath(obj))
    raise ValidationError(
        f"cannot open {type(obj).__name__!r} as a reconstruction source; expected a "
        "WireScanStack, path, glob, directory, ndarray+geometry, or a sequence of those"
    )

"""Depth-resolved accumulation buffers.

``DepthHistogram`` owns the ``(n_depth_bins, n_rows, n_cols)`` accumulation
cube the kernels scatter into.  It supports two accumulation disciplines:

* **atomic** — every contribution is applied with atomic-add semantics
  (``np.add.at`` / the simulated ``atomicAdd``), the way the CUDA kernel
  must accumulate because many threads may target the same output element;
* **privatised** — per-chunk partial histograms that are merged at the end
  (the classic alternative to atomics; compared in an ablation benchmark).

Both produce identical results; only their cost profile differs on real
hardware.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.depth_grid import DepthGrid
from repro.cudasim.atomic import atomic_add
from repro.utils.validation import ValidationError

__all__ = ["DepthHistogram", "add_pixel_intensity_at_index"]


def add_pixel_intensity_at_index(
    depth_intensity: np.ndarray,
    flat_indices,
    values,
) -> np.ndarray:
    """Scatter-add intensities into the flattened depth-resolved cube.

    The analogue of ``device_add_pixel_intensity_at_index`` +
    ``device_atomicAdd``: *flat_indices* are linear offsets into the
    flattened output array (computed with the same ``x + y*NX + z*NX*NY``
    arithmetic as the CUDA kernel) and repeated offsets accumulate.
    """
    flat = np.asarray(depth_intensity).reshape(-1)
    atomic_add(flat, flat_indices, values)
    return depth_intensity


class DepthHistogram:
    """Accumulation buffer for depth-resolved intensity."""

    def __init__(self, grid: DepthGrid, n_rows: int, n_cols: int):
        if n_rows < 1 or n_cols < 1:
            raise ValidationError("DepthHistogram needs positive n_rows and n_cols")
        self.grid = grid
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self._data = np.zeros((grid.n_bins, self.n_rows, self.n_cols), dtype=np.float64)

    # ------------------------------------------------------------------ #
    @property
    def data(self) -> np.ndarray:
        """The accumulation cube (view, not a copy)."""
        return self._data

    @property
    def shape(self):
        """``(n_bins, n_rows, n_cols)``."""
        return self._data.shape

    def reset(self) -> None:
        """Zero the accumulation buffer."""
        self._data.fill(0.0)

    # ------------------------------------------------------------------ #
    def add_contributions(
        self,
        rows: np.ndarray,
        cols: np.ndarray,
        bin_weights: np.ndarray,
    ) -> None:
        """Accumulate per-pixel depth distributions.

        Parameters
        ----------
        rows, cols:
            Integer arrays of length ``n`` giving the target pixel of each
            contribution.
        bin_weights:
            Array of shape ``(n, n_bins)``; row ``i`` is added to
            ``data[:, rows[i], cols[i]]``.
        """
        rows = np.asarray(rows, dtype=np.int64)
        cols = np.asarray(cols, dtype=np.int64)
        bin_weights = np.asarray(bin_weights, dtype=np.float64)
        if bin_weights.ndim != 2 or bin_weights.shape[1] != self.grid.n_bins:
            raise ValidationError(
                f"bin_weights must have shape (n, {self.grid.n_bins}), got {bin_weights.shape}"
            )
        if rows.shape != cols.shape or rows.shape[0] != bin_weights.shape[0]:
            raise ValidationError("rows, cols and bin_weights must agree in length")
        if rows.size == 0:
            return
        if rows.min() < 0 or rows.max() >= self.n_rows or cols.min() < 0 or cols.max() >= self.n_cols:
            raise ValidationError("pixel indices out of range")

        # Each (row, col) pair may appear multiple times (different wire
        # steps), so accumulate with atomic semantics on the flattened cube.
        pixel_offset = rows * self.n_cols + cols  # (n,)
        bin_offsets = np.arange(self.grid.n_bins, dtype=np.int64) * (self.n_rows * self.n_cols)
        flat_indices = (pixel_offset[:, None] + bin_offsets[None, :]).reshape(-1)
        add_pixel_intensity_at_index(self._data, flat_indices, bin_weights.reshape(-1))

    def add_histogram(self, other: "DepthHistogram") -> None:
        """Merge another (privatised) histogram into this one."""
        if other.shape != self.shape or other.grid != self.grid:
            raise ValidationError("cannot merge histograms with different shapes/grids")
        self._data += other._data

    def merge_partial(self, partial: np.ndarray, row_start: int) -> None:
        """Merge a partial cube covering rows ``row_start:row_start+partial.shape[1]``.

        Used when the reconstruction is chunked or partitioned by detector
        rows: each chunk produces a small ``(n_bins, chunk_rows, n_cols)``
        cube which is placed back at the right row offset — the "put it back
        together" step of Fig. 2.
        """
        partial = np.asarray(partial, dtype=np.float64)
        if partial.ndim != 3 or partial.shape[0] != self.grid.n_bins or partial.shape[2] != self.n_cols:
            raise ValidationError(f"partial cube has incompatible shape {partial.shape}")
        row_stop = row_start + partial.shape[1]
        if row_start < 0 or row_stop > self.n_rows:
            raise ValidationError("partial cube rows out of range")
        self._data[:, row_start:row_stop, :] += partial

    # ------------------------------------------------------------------ #
    def to_result(self, metadata: Optional[dict] = None):
        """Wrap the accumulated cube in a :class:`DepthResolvedStack`."""
        from repro.core.result import DepthResolvedStack

        return DepthResolvedStack(data=self._data.copy(), grid=self.grid, metadata=metadata or {})

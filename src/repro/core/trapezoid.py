"""The trapezoidal depth-response function.

A detector pixel has finite extent, so the differential intensity measured
between two adjacent wire positions does not originate from a single depth
but from a small depth interval with a trapezoidal sensitivity profile.  The
four corner depths are the critical depths of the four (pixel edge, wire
position) combinations — exactly the ``partial_start`` / ``partial_end`` /
``full_start`` / ``full_end`` values the paper's ``setTwo`` kernel computes
before calling ``device_depth_resolve_pixel`` and
``device_get_trapezoid_height``.

The measured difference is distributed over the depth grid proportionally to
the overlap of the trapezoid with each depth bin, normalised by the total
trapezoid area so that intensity is conserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.depth_grid import DepthGrid
from repro.utils.validation import ValidationError

__all__ = [
    "Trapezoid",
    "MIN_TRAPEZOID_AREA",
    "trapezoid_from_depths",
    "trapezoid_height",
    "trapezoid_area",
    "trapezoid_overlap",
    "trapezoid_bin_overlaps",
    "distribute_intensity",
]

#: Trapezoids with less area than this are treated as degenerate and deposit
#: nothing: dividing overlaps by a near-zero area amplifies floating-point
#: noise into arbitrarily large weights.  Physical responses have areas on the
#: pixel-size scale (micrometres), many orders of magnitude above this cutoff.
#: Every kernel path (scalar, vectorised, simulated-CUDA) applies the same
#: cutoff so the backends stay bit-identical.
MIN_TRAPEZOID_AREA = 1e-9


@dataclass(frozen=True)
class Trapezoid:
    """A unit-height trapezoid on the depth axis.

    ``d1 <= d2 <= d3 <= d4``: the response ramps linearly from 0 at ``d1`` to
    1 at ``d2``, stays at 1 until ``d3`` and ramps back to 0 at ``d4``.
    Degenerate cases (triangle, box, zero width) are all representable.
    """

    d1: float
    d2: float
    d3: float
    d4: float

    def __post_init__(self):
        if not (self.d1 <= self.d2 <= self.d3 <= self.d4):
            raise ValidationError(
                f"trapezoid corners must be ordered, got {(self.d1, self.d2, self.d3, self.d4)}"
            )

    @property
    def area(self) -> float:
        """Integral of the unit-height trapezoid over depth."""
        return ((self.d4 - self.d1) + (self.d3 - self.d2)) / 2.0

    @property
    def support(self) -> Tuple[float, float]:
        """``(d1, d4)`` — the depth interval with non-zero response."""
        return (self.d1, self.d4)

    def height(self, depth: float) -> float:
        """Response height at *depth* (0 outside the support, 1 on the plateau)."""
        return trapezoid_height(depth, self.d1, self.d2, self.d3, self.d4)


def trapezoid_from_depths(
    partial_start: float, partial_end: float, full_start: float, full_end: float
) -> Trapezoid:
    """Build the response trapezoid from the four kernel depths.

    The four critical depths are computed from the two pixel edges and the
    two wire positions of a scan step; their sorted order gives the ramp-up,
    plateau and ramp-down breakpoints.  Sorting (rather than assuming an
    order) makes the construction robust to either scan direction and either
    wire edge, which is also what the original code effectively does by
    distinguishing "front edge trailing or back edge trailing" cases.
    """
    values = [float(partial_start), float(partial_end), float(full_start), float(full_end)]
    if any(math.isnan(v) for v in values):
        raise ValidationError("trapezoid corner depths must be finite (got NaN)")
    d1, d2, d3, d4 = sorted(values)
    return Trapezoid(d1, d2, d3, d4)


def trapezoid_height(depth, d1, d2, d3, d4):
    """Unit-height trapezoid evaluated at *depth* (vectorised).

    The direct analogue of ``device_get_trapezoid_height``.
    """
    depth = np.asarray(depth, dtype=np.float64)
    d1 = np.asarray(d1, dtype=np.float64)
    d2 = np.asarray(d2, dtype=np.float64)
    d3 = np.asarray(d3, dtype=np.float64)
    d4 = np.asarray(d4, dtype=np.float64)

    with np.errstate(invalid="ignore", divide="ignore"):
        rising = np.where(d2 > d1, (depth - d1) / (d2 - d1), 1.0)
        falling = np.where(d4 > d3, (d4 - depth) / (d4 - d3), 1.0)
    height = np.minimum(np.minimum(rising, falling), 1.0)
    height = np.where((depth < d1) | (depth > d4), 0.0, height)
    return np.clip(height, 0.0, 1.0)


def trapezoid_area(d1, d2, d3, d4):
    """Area under the unit-height trapezoid (vectorised)."""
    d1 = np.asarray(d1, dtype=np.float64)
    d2 = np.asarray(d2, dtype=np.float64)
    d3 = np.asarray(d3, dtype=np.float64)
    d4 = np.asarray(d4, dtype=np.float64)
    return ((d4 - d1) + (d3 - d2)) / 2.0


def _cumulative_integral(x, d1, d2, d3, d4):
    """∫_{-inf}^{x} h(t) dt for the unit-height trapezoid, vectorised.

    ``x`` broadcasts against the corner arrays.
    """
    x = np.asarray(x, dtype=np.float64)
    d1 = np.asarray(d1, dtype=np.float64)
    d2 = np.asarray(d2, dtype=np.float64)
    d3 = np.asarray(d3, dtype=np.float64)
    d4 = np.asarray(d4, dtype=np.float64)

    with np.errstate(invalid="ignore", divide="ignore"):
        # contribution of the rising ramp on [d1, d2]
        xr = np.clip(x, d1, d2)
        rise_width = d2 - d1
        rise = np.where(rise_width > 0, 0.5 * (xr - d1) ** 2 / rise_width, 0.0)
        # contribution of the plateau on [d2, d3]
        xp = np.clip(x, d2, d3)
        plateau = xp - d2
        # contribution of the falling ramp on [d3, d4]
        xf = np.clip(x, d3, d4)
        fall_width = d4 - d3
        fall = np.where(
            fall_width > 0,
            0.5 * fall_width - 0.5 * (d4 - xf) ** 2 / fall_width,
            0.0,
        )
    # Each piece is clipped to its own segment, so below d1 every term is 0
    # and above d4 the sum equals the full trapezoid area.
    return rise + plateau + fall


def trapezoid_overlap(lo, hi, d1, d2, d3, d4):
    """Exact integral of the unit-height trapezoid over ``[lo, hi]`` (vectorised).

    Scalar inputs give a scalar float; this is the single-interval primitive
    the per-thread kernel body uses so that the scalar and vectorised kernels
    agree to machine precision.
    """
    return np.asarray(
        _cumulative_integral(hi, d1, d2, d3, d4) - _cumulative_integral(lo, d1, d2, d3, d4)
    )


def trapezoid_bin_overlaps(
    grid: DepthGrid,
    d1,
    d2,
    d3,
    d4,
) -> np.ndarray:
    """Overlap integral of unit-height trapezoids with every grid bin.

    Parameters
    ----------
    grid:
        The depth grid.
    d1, d2, d3, d4:
        Corner-depth arrays of shape ``(n,)`` (one trapezoid per element;
        scalars are promoted).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n, grid.n_bins)`` with
        ``out[i, k] = ∫_bin_k h_i(t) dt``.
    """
    d1 = np.atleast_1d(np.asarray(d1, dtype=np.float64))
    d2 = np.atleast_1d(np.asarray(d2, dtype=np.float64))
    d3 = np.atleast_1d(np.asarray(d3, dtype=np.float64))
    d4 = np.atleast_1d(np.asarray(d4, dtype=np.float64))
    edges = grid.edges  # (n_bins + 1,)
    cumulative = _cumulative_integral(
        edges[None, :], d1[:, None], d2[:, None], d3[:, None], d4[:, None]
    )
    return np.diff(cumulative, axis=1)


def distribute_intensity(
    grid: DepthGrid,
    intensity,
    d1,
    d2,
    d3,
    d4,
) -> np.ndarray:
    """Distribute intensities over the grid proportionally to trapezoid overlap.

    Returns an array of shape ``(n, grid.n_bins)`` whose rows sum to the
    input intensity *times the fraction of the trapezoid inside the grid*
    (signal from depths outside the reconstructed range is dropped, exactly
    as the original code drops indices outside ``[0, maxDepth]``).
    """
    intensity = np.atleast_1d(np.asarray(intensity, dtype=np.float64))
    overlaps = trapezoid_bin_overlaps(grid, d1, d2, d3, d4)
    area = np.atleast_1d(trapezoid_area(d1, d2, d3, d4))
    with np.errstate(invalid="ignore", divide="ignore"):
        weights = np.where(area[:, None] > MIN_TRAPEZOID_AREA, overlaps / area[:, None], 0.0)
    return weights * intensity[:, None]

"""High-level reconstruction API.

``DepthReconstructor`` is the public entry point: configure it once (depth
grid, wire edge, backend, device constraints) and call
:meth:`DepthReconstructor.reconstruct` on any :class:`WireScanStack`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.core.backends import get_backend
from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.stack import WireScanStack
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = ["DepthReconstructor"]

_LOG = get_logger(__name__)


class DepthReconstructor:
    """Reconstructs depth-resolved intensity from wire-scan image stacks.

    Parameters
    ----------
    config:
        Full reconstruction configuration.  Alternatively pass ``grid`` and
        keyword overrides and a default configuration is built.
    grid:
        Depth grid (required when *config* is not given).
    **overrides:
        Any :class:`~repro.core.config.ReconstructionConfig` field, applied on
        top of the defaults when *config* is not given.

    Examples
    --------
    >>> from repro.core import DepthGrid, DepthReconstructor
    >>> grid = DepthGrid.from_range(0.0, 100.0, 50)
    >>> reconstructor = DepthReconstructor(grid=grid, backend="vectorized")
    >>> # result, report = reconstructor.reconstruct(stack)
    """

    def __init__(
        self,
        config: Optional[ReconstructionConfig] = None,
        grid: Optional[DepthGrid] = None,
        **overrides,
    ):
        if config is None:
            if grid is None:
                raise ValidationError("either a ReconstructionConfig or a DepthGrid must be provided")
            config = ReconstructionConfig(grid=grid, **overrides)
        elif overrides or grid is not None:
            raise ValidationError("pass either a full config or grid+overrides, not both")
        self.config = config

    # ------------------------------------------------------------------ #
    @property
    def grid(self) -> DepthGrid:
        """The depth grid of this reconstructor."""
        return self.config.grid

    @property
    def backend_name(self) -> str:
        """Name of the configured backend."""
        return self.config.backend

    def with_backend(self, backend: str, **overrides) -> "DepthReconstructor":
        """A copy of this reconstructor using a different backend."""
        return DepthReconstructor(config=self.config.with_backend(backend, **overrides))

    # ------------------------------------------------------------------ #
    def reconstruct(
        self, stack: WireScanStack, return_report: bool = True
    ) -> Tuple[DepthResolvedStack, ReconstructionReport] | DepthResolvedStack:
        """Run the reconstruction.

        Parameters
        ----------
        stack:
            The wire-scan image stack.
        return_report:
            When true (default) return ``(result, report)``; otherwise return
            only the result.
        """
        backend = get_backend(self.config.backend)
        _LOG.debug(
            "reconstructing %s stack with backend %s", stack.shape, self.config.backend
        )
        result, report = backend.reconstruct(stack, self.config)
        _LOG.debug("reconstruction finished: %s", report.summary().replace("\n", " | "))
        if return_report:
            return result, report
        return result

    def compare_backends(self, stack: WireScanStack, backends) -> dict:
        """Run several backends on the same stack and collect their reports.

        Returns a mapping ``backend name -> (result, report)``; useful for
        correctness cross-checks and for the benchmark harness.

        Every backend name is validated (and each backend instantiated)
        *before* any reconstruction runs, so a typo in the last name cannot
        waste the runs before it.  Each report's notes additionally carry a
        reference engine plan summary for this stack/config.  With
        ``config.rows_per_chunk`` fixed, every backend runs that exact
        chunking and the comparison is attributable to identical chunks;
        when it is unset the note says so explicitly and each backend's own
        plan note records what it actually ran.
        """
        names = [str(name) for name in backends]
        resolved = [get_backend(name) for name in names]  # validates up front

        from repro.core.chunking import plan_row_chunks
        from repro.core.engine import HOST_MEMORY_BYTES

        # reference chunking for the notes; background (if any) is computed by
        # each run itself, so no extra pass over the stack happens here
        reference = plan_row_chunks(
            n_rows=stack.n_rows,
            n_cols=stack.n_cols,
            n_positions=stack.n_positions,
            n_depth_bins=self.config.grid.n_bins,
            device_memory_bytes=HOST_MEMORY_BYTES,
            layout=self.config.layout,
            rows_per_chunk=self.config.rows_per_chunk,
        )
        if self.config.rows_per_chunk is not None:
            shared_note = f"compare_backends shared plan: {reference.summary()}"
        else:
            shared_note = (
                f"compare_backends reference plan: {reference.summary()} "
                "(rows_per_chunk unset: backends may chunk differently; "
                "each report's own plan note is authoritative)"
            )

        out = {}
        for name, backend in zip(names, resolved):
            result, report = backend.reconstruct(stack, self.config.with_backend(name))
            report.notes.append(shared_note)
            out[name] = (result, report)
        return out

"""Deprecated high-level API shim.

``DepthReconstructor`` was the original public entry point.  It is now a
thin, deprecated wrapper over the one front door —
:func:`repro.session` / :class:`~repro.core.session.Session` — kept so
existing callers keep working with bitwise-identical outputs::

    # old                                     # new
    DepthReconstructor(grid=g, backend="gpusim").reconstruct(stack)
    repro.session(grid=g).on("gpusim").run(stack)

Constructing a ``DepthReconstructor`` emits a :class:`DeprecationWarning`;
every method delegates to an internal :class:`~repro.core.session.Session`.
Unlike the historical implementation, the report is never lost: even
``reconstruct(return_report=False)`` keeps the full
:class:`~repro.core.session.RunResult` (report, provenance and all) on
:attr:`DepthReconstructor.last_run`.
"""

from __future__ import annotations

import warnings
from typing import Optional, Tuple

from repro.core.config import ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.result import DepthResolvedStack, ReconstructionReport
from repro.core.session import RunResult, Session, session
from repro.core.stack import WireScanStack
from repro.utils.validation import ValidationError

__all__ = ["DepthReconstructor"]

_DEPRECATION = (
    "DepthReconstructor is deprecated; use the Session front door instead: "
    "repro.session(grid=...).on(backend).run(repro.open(stack))"
)


class DepthReconstructor:
    """Deprecated: use :func:`repro.session` instead.

    Parameters
    ----------
    config:
        Full reconstruction configuration.  Alternatively pass ``grid`` and
        keyword overrides and a default configuration is built.
    grid:
        Depth grid (required when *config* is not given).
    **overrides:
        Any :class:`~repro.core.config.ReconstructionConfig` field, applied on
        top of the defaults when *config* is not given.
    """

    def __init__(
        self,
        config: Optional[ReconstructionConfig] = None,
        grid: Optional[DepthGrid] = None,
        **overrides,
    ):
        if config is None:
            if grid is None:
                raise ValidationError("either a ReconstructionConfig or a DepthGrid must be provided")
        elif overrides or grid is not None:
            raise ValidationError("pass either a full config or grid+overrides, not both")
        # the session constructor applies the same config/grid/overrides rules
        self._session = session(config=config, grid=grid, **overrides)
        warnings.warn(_DEPRECATION, DeprecationWarning, stacklevel=2)
        #: the full RunResult of the most recent reconstruct() call — the
        #: report is retained even with return_report=False
        self.last_run: Optional[RunResult] = None

    # ------------------------------------------------------------------ #
    @property
    def config(self) -> ReconstructionConfig:
        """The underlying configuration."""
        return self._session.config

    @config.setter
    def config(self, value: ReconstructionConfig) -> None:
        # the historical class exposed config as a writable attribute
        self._session = Session(config=value)

    @property
    def grid(self) -> DepthGrid:
        """The depth grid of this reconstructor."""
        return self._session.grid

    @property
    def backend_name(self) -> str:
        """Name of the configured backend."""
        return self._session.backend_name

    @property
    def session(self) -> Session:
        """The equivalent non-deprecated :class:`Session`."""
        return self._session

    def with_backend(self, backend: str, **overrides) -> "DepthReconstructor":
        """A copy of this reconstructor using a different backend."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)  # warned once already
            return DepthReconstructor(config=self.config.with_backend(backend, **overrides))

    # ------------------------------------------------------------------ #
    def reconstruct(
        self, stack: WireScanStack, return_report: bool = True
    ) -> Tuple[DepthResolvedStack, ReconstructionReport] | DepthResolvedStack:
        """Run the reconstruction (deprecated; use ``Session.run``).

        Parameters
        ----------
        stack:
            The wire-scan image stack.
        return_report:
            When true (default) return ``(result, report)``; otherwise return
            only the result — the report is still available on
            :attr:`last_run`.
        """
        run = self._session.run(stack)
        self.last_run = run
        if return_report:
            return run.result, run.report
        return run.result

    def compare_backends(self, stack: WireScanStack, backends) -> dict:
        """Run several backends on the same stack and collect their reports.

        Deprecated; use :meth:`~repro.core.session.Session.compare`, which
        returns :class:`~repro.core.session.RunResult` objects.  This shim
        keeps the historical ``name -> (result, report)`` mapping shape.
        """
        runs = self._session.compare(stack, backends)
        return {name: (run.result, run.report) for name, run in runs.items()}

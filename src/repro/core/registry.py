"""The pluggable backend registry.

Backends used to be a hard-coded string table inside ``backends/base.py``;
this module turns them into plugins.  A backend registers itself under a
name with a set of capability flags::

    from repro.core.registry import register_backend
    from repro.core.backends.base import Backend

    @register_backend("mybackend", supports_streaming=True,
                      description="my out-of-tree executor")
    class MyBackend(Backend):
        def make_executor(self, config):
            ...

and from that point on it is indistinguishable from a built-in: it resolves
through :func:`get_backend` (and therefore through
:class:`~repro.core.config.ReconstructionConfig` validation, the
:class:`~repro.core.session.Session` front door and the ``repro-backends``
CLI), and its capabilities are introspectable via :func:`backends`.

The registry is the single source of truth for backend names:
``ReconstructionConfig`` validates ``backend=`` against it at construction
time, so a typo fails fast with a did-you-mean suggestion instead of deep
inside a reconstruction run.

The four built-in backends live in :mod:`repro.core.backends` and are
registered lazily on first lookup, which keeps this module import-cycle-free
(it depends only on the validation utilities).
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.utils.validation import ValidationError

__all__ = [
    "BackendInfo",
    "register_backend",
    "register_backend_info",
    "unregister_backend",
    "get_backend",
    "backend_info",
    "available_backends",
    "backends",
]

_REGISTRY: Dict[str, "BackendInfo"] = {}
_BUILTINS_LOADED = False


@dataclass(frozen=True)
class BackendInfo:
    """Registry entry: a backend factory plus its declared capabilities.

    Parameters
    ----------
    name:
        Registry name the backend resolves under (``config.backend``).
    factory:
        Zero-argument callable returning a ready
        :class:`~repro.core.backends.base.Backend` instance (usually the
        backend class itself).
    supports_streaming:
        The backend can execute chunks pulled from an out-of-core
        :class:`~repro.core.engine.ChunkSource` (all built-ins can — they
        route through the shared engine).
    needs_workers:
        The backend spawns worker processes and honours
        ``config.n_workers``.
    description:
        One-line human description for the ``repro-backends`` CLI.
    """

    name: str
    factory: Callable[[], object]
    supports_streaming: bool = True
    needs_workers: bool = False
    description: str = ""

    @property
    def module(self) -> str:
        """Module the backend factory is defined in (provenance/CLI)."""
        return getattr(self.factory, "__module__", "?")

    def capabilities(self) -> Dict[str, bool]:
        """The capability flags as a plain dict."""
        return {
            "supports_streaming": self.supports_streaming,
            "needs_workers": self.needs_workers,
        }

    def to_dict(self) -> Dict:
        """JSON-safe summary (the ``repro-backends --json`` payload)."""
        return {
            "name": self.name,
            "module": self.module,
            "description": self.description,
            **self.capabilities(),
        }


def _ensure_builtin_backends() -> None:
    """Import the built-in backend package once, registering its backends."""
    global _BUILTINS_LOADED
    if not _BUILTINS_LOADED:
        # idempotent one-way latch: a racing double-set is harmless (both
        # writers store True) and the import below is serialized by the
        # interpreter's own import lock
        # repro-lint: ignore[thread-escape]
        _BUILTINS_LOADED = True
        import repro.core.backends  # noqa: F401  (registers the built-ins)


def register_backend_info(info: BackendInfo, replace: bool = False) -> BackendInfo:
    """Add a fully-built :class:`BackendInfo` to the registry.

    Duplicate names are rejected unless ``replace=True`` — silent shadowing
    of an existing backend is almost always a bug in a plugin.
    """
    if not info.name:
        raise ValidationError("backend registration requires a non-empty name")
    if not callable(info.factory):
        raise ValidationError(f"backend {info.name!r} factory must be callable")
    _ensure_builtin_backends()
    if not replace and info.name in _REGISTRY:
        raise ValidationError(
            f"backend {info.name!r} is already registered "
            f"(by {_REGISTRY[info.name].module}); pass replace=True to override"
        )
    _REGISTRY[info.name] = info
    return info


def register_backend(
    name=None,
    *,
    supports_streaming: bool = True,
    needs_workers: bool = False,
    description: str = "",
    replace: bool = False,
):
    """Class decorator registering a backend under *name*.

    Two forms are accepted::

        @register_backend("mybackend", supports_streaming=True)
        class MyBackend(Backend): ...

        @register_backend          # legacy: the class's own ``name`` is used
        class MyBackend(Backend):
            name = "mybackend"

    The decorator also sets ``cls.name`` when the named form is used, so the
    class and the registry can never disagree about the name.
    """

    def decorate(cls, backend_name):
        if not backend_name:
            raise ValidationError("backend classes must define a non-empty 'name'")
        if getattr(cls, "name", "") and cls.name != backend_name:
            raise ValidationError(
                f"backend class {cls.__name__} declares name={cls.name!r} but is "
                f"being registered as {backend_name!r}"
            )
        cls.name = backend_name
        about = description
        if not about and cls.__doc__:
            about = cls.__doc__.strip().splitlines()[0]
        register_backend_info(
            BackendInfo(
                name=backend_name,
                factory=cls,
                supports_streaming=supports_streaming,
                needs_workers=needs_workers,
                description=about,
            ),
            replace=replace,
        )
        return cls

    if isinstance(name, type):  # bare @register_backend on a class
        cls = name
        return decorate(cls, getattr(cls, "name", ""))
    return lambda cls: decorate(cls, name or getattr(cls, "name", ""))


def unregister_backend(name: str) -> BackendInfo:
    """Remove a backend from the registry, returning its entry.

    Intended for plugin teardown and tests; re-register the returned info
    with :func:`register_backend_info` to restore it.
    """
    _ensure_builtin_backends()
    info = _REGISTRY.pop(name, None)
    if info is None:
        raise ValidationError(f"cannot unregister unknown backend {name!r}")
    return info


def backend_info(name: str) -> BackendInfo:
    """Look up a backend's registry entry, failing fast with a suggestion."""
    _ensure_builtin_backends()
    try:
        return _REGISTRY[str(name)]
    except KeyError:
        known = sorted(_REGISTRY)
        message = f"unknown backend {name!r}; available: {known}"
        close = difflib.get_close_matches(str(name), known, n=1)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise ValidationError(message) from None


def get_backend(name: str):
    """Instantiate a backend by registry name."""
    return backend_info(name).factory()


def available_backends() -> List[str]:
    """Names of all registered backends, sorted."""
    _ensure_builtin_backends()
    return sorted(_REGISTRY)


def backends(name: Optional[str] = None):
    """Introspect the registry.

    With no argument, return every :class:`BackendInfo` sorted by name (the
    ``repro.backends()`` public API); with a name, return that single entry.
    """
    if name is not None:
        return backend_info(name)
    _ensure_builtin_backends()
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]

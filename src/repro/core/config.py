"""Reconstruction configuration."""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Union

from repro.core.depth_grid import DepthGrid
from repro.geometry.wire import WireEdge
from repro.utils.validation import ValidationError, ensure_non_negative

__all__ = ["DifferenceMode", "ReconstructionConfig", "EXECUTOR_CHOICES", "AUTO"]

#: Sentinel accepted by ``n_workers`` and ``executor`` for auto-tuned values.
AUTO = "auto"

#: Executor strategies for the host-parallel hot path: how the vectorised
#: compute is dispatched.  ``serial`` runs in the calling thread; ``threads``
#: fans row bands out to the shared thread pool (the fused kernels release
#: the GIL inside their ufunc loops); ``processes`` uses the persistent
#: process pool with shared-memory dispatch; ``auto`` lets the auto-tuner
#: pick from a cached throughput probe.
EXECUTOR_CHOICES = ("serial", "threads", "processes", AUTO)


class DifferenceMode(enum.Enum):
    """How adjacent-image differences are turned into depth contributions.

    ``SIGNED``
        Use the raw difference ``I[i] - I[i+1]`` (paper-faithful).  Correct
        when the scan geometry is such that only the selected wire edge
        crosses a pixel's line of sight during the scan.
    ``RECTIFIED``
        Clamp the difference at zero (occlusion events only for the leading
        edge, release events only for the trailing edge).  Robust when both
        edges cross during the scan, at the price of discarding half of the
        counting statistics.
    """

    SIGNED = "signed"
    RECTIFIED = "rectified"


@dataclass(frozen=True)
class ReconstructionConfig:
    """Parameters of a depth reconstruction run.

    Parameters
    ----------
    grid:
        Depth grid to reconstruct onto.
    wire_edge:
        Which wire edge the analysis uses (leading by default).
    difference_mode:
        See :class:`DifferenceMode`.
    intensity_cutoff:
        Differences with ``|dI|`` below this value are skipped (the
        ``d_cutoff`` parameter of the paper's kernel); pixels whose every
        step falls below the cutoff cost no reconstruction work, which is
        what the paper's "pixel percentage" experiments vary.
    backend:
        Execution backend name (``cpu_reference``, ``vectorized``,
        ``gpusim``, ``multiprocess``).
    layout:
        Device array layout for the gpusim backend (``flat1d`` or
        ``pointer3d``) — the Fig. 4 design choice.
    rows_per_chunk:
        Number of detector rows streamed to the device per chunk.  ``None``
        lets the chunk planner pick the largest chunk that fits device
        memory (the paper uses a fixed small number of rows).
    device_memory_limit:
        Optional override (bytes) of the simulated device memory, used to
        scale the 6 GB constraint down to laptop-sized problems.
    n_workers:
        Worker count for the multiprocess/threaded backends and the
        ``threads``/``processes`` executor strategies.  The string
        ``"auto"`` asks the auto-tuner for a calibrated count (resolved by
        the session before execution).
    executor:
        Executor strategy for the vectorized backend's hot path: one of
        ``serial`` (in the calling thread, the default), ``threads`` (row
        bands on the shared GIL-releasing thread pool), ``processes``
        (the persistent process pool) or ``auto`` (pick from the cached
        throughput probe of :mod:`repro.perf.autotune`).
    subtract_background:
        If true, a constant per-image background (the median of the whole
        image) is subtracted before distribution.  The levels are computed
        once per run over the full stack, so every chunking subtracts the
        same background.
    streaming:
        If true, :func:`repro.core.pipeline.reconstruct_file` streams row
        chunks straight from disk through the engine instead of loading the
        image cube into host memory first — the out-of-core mode for data
        sets larger than RAM.
    """

    grid: DepthGrid
    wire_edge: WireEdge = WireEdge.LEADING
    difference_mode: DifferenceMode = DifferenceMode.SIGNED
    intensity_cutoff: float = 0.0
    backend: str = "vectorized"
    layout: str = "flat1d"
    rows_per_chunk: Optional[int] = None
    device_memory_limit: Optional[int] = None
    n_workers: Union[int, str] = 2
    executor: str = "serial"
    subtract_background: bool = False
    streaming: bool = False

    def __post_init__(self):
        if not isinstance(self.grid, DepthGrid):
            raise ValidationError("grid must be a DepthGrid instance")
        if not isinstance(self.wire_edge, WireEdge):
            raise ValidationError("wire_edge must be a WireEdge")
        if not isinstance(self.difference_mode, DifferenceMode):
            raise ValidationError("difference_mode must be a DifferenceMode")
        ensure_non_negative(self.intensity_cutoff, "intensity_cutoff")
        if self.layout not in ("flat1d", "pointer3d"):
            raise ValidationError(f"layout must be 'flat1d' or 'pointer3d', got {self.layout!r}")
        if self.rows_per_chunk is not None and int(self.rows_per_chunk) < 1:
            raise ValidationError("rows_per_chunk must be >= 1 when given")
        if self.device_memory_limit is not None and int(self.device_memory_limit) < 1:
            raise ValidationError("device_memory_limit must be positive when given")
        if isinstance(self.n_workers, str):
            if self.n_workers != AUTO:
                raise ValidationError(
                    f"n_workers must be an int >= 1 or 'auto', got {self.n_workers!r}"
                )
        elif int(self.n_workers) < 1:
            raise ValidationError("n_workers must be >= 1")
        if self.executor not in EXECUTOR_CHOICES:
            raise ValidationError(
                f"unknown executor {self.executor!r}; expected one of {EXECUTOR_CHOICES}"
            )
        # fail fast on backend typos (with a did-you-mean suggestion) instead
        # of erroring deep inside reconstruct(); the registry is the single
        # source of truth for what names exist
        from repro.core.registry import backend_info

        info = backend_info(self.backend)
        if self.streaming and not info.supports_streaming:
            raise ValidationError(
                f"backend {self.backend!r} does not support streaming "
                "(supports_streaming=False in its registration)"
            )

    # ------------------------------------------------------------------ #
    def with_backend(self, backend: str, **overrides) -> "ReconstructionConfig":
        """Return a copy of this config with a different backend (and overrides)."""
        return replace(self, backend=backend, **overrides)

    def with_overrides(self, **overrides) -> "ReconstructionConfig":
        """Return a copy with arbitrary fields replaced."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-safe snapshot of every field (run provenance, CLI round-trips).

        Enums are stored by value/name string; the grid is expanded into its
        ``start``/``step``/``n_bins`` primitives.  :meth:`from_dict` inverts
        this exactly.
        """
        return {
            "grid": {"start": self.grid.start, "step": self.grid.step, "n_bins": self.grid.n_bins},
            "wire_edge": self.wire_edge.name.lower(),
            "difference_mode": self.difference_mode.value,
            "intensity_cutoff": float(self.intensity_cutoff),
            "backend": self.backend,
            "layout": self.layout,
            "rows_per_chunk": self.rows_per_chunk,
            "device_memory_limit": self.device_memory_limit,
            "n_workers": self.n_workers if isinstance(self.n_workers, str) else int(self.n_workers),
            "executor": self.executor,
            "subtract_background": bool(self.subtract_background),
            "streaming": bool(self.streaming),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ReconstructionConfig":
        """Rebuild a config from a :meth:`to_dict` snapshot.

        Unknown keys are rejected (a provenance file from a newer version
        should fail loudly, not half-apply), and the full constructor
        validation — including the registry backend check — runs as usual.
        """
        data = dict(data)
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(f"unknown config field(s): {unknown}; known: {sorted(known)}")
        if "grid" not in data:
            raise ValidationError("config dict requires a 'grid' entry")
        grid = data["grid"]
        if isinstance(grid, dict):
            data["grid"] = DepthGrid(**grid)
        wire_edge = data.get("wire_edge")
        if isinstance(wire_edge, str):
            try:
                data["wire_edge"] = WireEdge[wire_edge.upper()]
            except KeyError:
                raise ValidationError(
                    f"unknown wire_edge {wire_edge!r}; expected one of "
                    f"{[e.name.lower() for e in WireEdge]}"
                ) from None
        mode = data.get("difference_mode")
        if isinstance(mode, str):
            try:
                data["difference_mode"] = DifferenceMode(mode)
            except ValueError:
                raise ValidationError(
                    f"unknown difference_mode {mode!r}; expected one of "
                    f"{[m.value for m in DifferenceMode]}"
                ) from None
        return cls(**data)

"""The depth grid: discretisation of the beam path into depth bins.

Depth is measured along the incident beam from the beam origin (DESIGN.md
§5).  ``DepthGrid`` owns the ``[start, stop)`` range and bin width and
provides the two index conversions the paper's kernels use:
``index_to_beam_depth`` (bin index → depth at the bin centre) and
``depth_to_index``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.validation import ValidationError, ensure_positive

__all__ = ["DepthGrid"]


@dataclass(frozen=True)
class DepthGrid:
    """Uniform grid of depth bins along the beam.

    Parameters
    ----------
    start:
        Depth of the lower edge of the first bin (micrometres).
    step:
        Bin width ``dDepth`` (micrometres).
    n_bins:
        Number of depth bins (``maxDepth`` index in the paper's kernel is
        ``n_bins - 1``).
    """

    start: float
    step: float
    n_bins: int

    def __post_init__(self):
        ensure_positive(self.step, "step")
        if int(self.n_bins) < 1:
            raise ValidationError(f"n_bins must be >= 1, got {self.n_bins}")
        object.__setattr__(self, "n_bins", int(self.n_bins))
        object.__setattr__(self, "start", float(self.start))
        object.__setattr__(self, "step", float(self.step))

    # ------------------------------------------------------------------ #
    @classmethod
    def from_range(cls, start: float, stop: float, n_bins: int) -> "DepthGrid":
        """Build a grid covering ``[start, stop)`` with *n_bins* equal bins."""
        if stop <= start:
            raise ValidationError("stop must exceed start")
        if int(n_bins) < 1:
            raise ValidationError("n_bins must be >= 1")
        return cls(start=float(start), step=(float(stop) - float(start)) / int(n_bins), n_bins=int(n_bins))

    # ------------------------------------------------------------------ #
    @property
    def stop(self) -> float:
        """Depth of the upper edge of the last bin."""
        return self.start + self.step * self.n_bins

    @property
    def edges(self) -> np.ndarray:
        """Bin edges, shape ``(n_bins + 1,)``."""
        return self.start + self.step * np.arange(self.n_bins + 1, dtype=np.float64)

    @property
    def centers(self) -> np.ndarray:
        """Bin centres, shape ``(n_bins,)``."""
        return self.start + self.step * (np.arange(self.n_bins, dtype=np.float64) + 0.5)

    # ------------------------------------------------------------------ #
    def index_to_depth(self, index) -> np.ndarray:
        """Depth at the centre of bin *index* (``device_index_to_beam_depth``)."""
        index = np.asarray(index, dtype=np.float64)
        return self.start + (index + 0.5) * self.step

    def depth_to_index(self, depth) -> np.ndarray:
        """Bin index containing *depth* (may fall outside ``[0, n_bins)``)."""
        depth = np.asarray(depth, dtype=np.float64)
        return np.floor((depth - self.start) / self.step).astype(np.int64)

    def contains(self, depth) -> np.ndarray:
        """Boolean mask of depths falling inside the grid."""
        depth = np.asarray(depth, dtype=np.float64)
        return (depth >= self.start) & (depth < self.stop)

    def clip_indices(self, index) -> np.ndarray:
        """Clamp indices into the valid ``[0, n_bins - 1]`` range."""
        return np.clip(np.asarray(index, dtype=np.int64), 0, self.n_bins - 1)

    def __len__(self) -> int:
        return self.n_bins

"""Reconstruction outputs: the depth-resolved stack and the run report."""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.depth_grid import DepthGrid
from repro.utils.validation import ValidationError

__all__ = ["DepthResolvedStack", "ReconstructionReport"]


@dataclass
class DepthResolvedStack:
    """Depth-resolved intensity: one detector image per depth bin.

    Parameters
    ----------
    data:
        Array of shape ``(n_depth_bins, n_rows, n_cols)``; ``data[k, r, c]``
        is the intensity assigned to depth bin ``k`` at detector pixel
        ``(r, c)`` — the ``image_set.depth_resolved`` output of the original
        program.
    grid:
        The depth grid the first axis is defined on.
    metadata:
        Free-form metadata (propagated from the input stack plus run info).
    """

    data: np.ndarray
    grid: DepthGrid
    metadata: Dict = field(default_factory=dict)

    def __post_init__(self):
        self.data = np.asarray(self.data, dtype=np.float64)
        if self.data.ndim != 3:
            raise ValidationError(
                f"data must have shape (n_depth_bins, n_rows, n_cols), got {self.data.shape}"
            )
        if self.data.shape[0] != self.grid.n_bins:
            raise ValidationError(
                f"data first axis ({self.data.shape[0]}) must equal grid.n_bins ({self.grid.n_bins})"
            )

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int, int]:
        """``(n_depth_bins, n_rows, n_cols)``."""
        return tuple(self.data.shape)

    @property
    def n_rows(self) -> int:
        """Detector rows."""
        return self.data.shape[1]

    @property
    def n_cols(self) -> int:
        """Detector columns."""
        return self.data.shape[2]

    def depth_profile(self, row: int, col: int) -> np.ndarray:
        """Intensity versus depth for one detector pixel, shape ``(n_bins,)``."""
        return self.data[:, int(row), int(col)].copy()

    def integrated_profile(self) -> np.ndarray:
        """Depth profile integrated over the whole detector, shape ``(n_bins,)``."""
        return self.data.sum(axis=(1, 2))

    def total_intensity(self) -> float:
        """Sum of all depth-resolved intensity."""
        return float(self.data.sum())

    def content_digest(self) -> str:
        """SHA-256 of the cube bytes plus the grid definition.

        The integrity stamp the result cache stores with every entry and
        re-verifies on every hit: a truncated or bit-rotten entry can change
        its bytes, but it cannot keep this digest consistent, so corruption
        is always detected before a cached stack is served.
        """
        import hashlib

        digest = hashlib.sha256()
        digest.update(np.ascontiguousarray(self.data).tobytes())
        digest.update(
            f"|grid={self.grid.start!r},{self.grid.step!r},{self.grid.n_bins}".encode("utf-8")
        )
        return digest.hexdigest()

    def image_at_depth(self, depth: float) -> np.ndarray:
        """Detector image for the depth bin containing *depth*."""
        index = int(self.grid.depth_to_index(depth))
        if not (0 <= index < self.grid.n_bins):
            raise ValidationError(f"depth {depth} lies outside the grid [{self.grid.start}, {self.grid.stop})")
        return self.data[index].copy()

    def dominant_depth(self) -> np.ndarray:
        """Per-pixel depth (bin centre) with the largest intensity, shape ``(n_rows, n_cols)``.

        Pixels with no signal get NaN.
        """
        best = np.argmax(self.data, axis=0)
        has_signal = self.data.max(axis=0) > 0
        depths = self.grid.index_to_depth(best)
        return np.where(has_signal, depths, np.nan)

    def centroid_depth(self) -> np.ndarray:
        """Per-pixel intensity-weighted mean depth, shape ``(n_rows, n_cols)``.

        Pixels with no (or non-positive) total intensity get NaN.
        """
        weights = np.clip(self.data, 0.0, None)
        total = weights.sum(axis=0)
        centers = self.grid.centers[:, None, None]
        with np.errstate(invalid="ignore", divide="ignore"):
            centroid = (weights * centers).sum(axis=0) / total
        return np.where(total > 0, centroid, np.nan)

    def __add__(self, other: "DepthResolvedStack") -> "DepthResolvedStack":
        if not isinstance(other, DepthResolvedStack):
            return NotImplemented
        if other.grid != self.grid:
            raise ValidationError(
                "cannot add depth-resolved stacks defined on different depth grids: "
                f"(start={self.grid.start}, step={self.grid.step}, n_bins={self.grid.n_bins}) "
                f"vs (start={other.grid.start}, step={other.grid.step}, n_bins={other.grid.n_bins})"
            )
        if other.data.shape != self.data.shape:
            raise ValidationError(
                "cannot add depth-resolved stacks with different detector shapes: "
                f"{self.data.shape} vs {other.data.shape}"
            )
        return DepthResolvedStack(data=self.data + other.data, grid=self.grid, metadata=dict(self.metadata))

    def __radd__(self, other) -> "DepthResolvedStack":
        # sum(stacks) starts from 0; supporting it keeps batch/op reductions
        # one-liners while every stack+stack addition still validates grids
        if isinstance(other, (int, float)) and other == 0:
            return DepthResolvedStack(data=self.data.copy(), grid=self.grid, metadata=dict(self.metadata))
        return NotImplemented


@dataclass
class ReconstructionReport:
    """Timing and accounting information for one reconstruction run."""

    backend: str
    wall_time: float = 0.0
    compute_time: float = 0.0
    transfer_time: float = 0.0
    simulated_device_time: float = 0.0
    h2d_bytes: int = 0
    d2h_bytes: int = 0
    n_chunks: int = 1
    n_kernel_launches: int = 0
    n_threads_launched: int = 0
    n_active_pixels: int = 0
    n_steps: int = 0
    layout: Optional[str] = None
    notes: List[str] = field(default_factory=list)

    @property
    def transfer_fraction(self) -> float:
        """Fraction of simulated device time spent in transfers."""
        total = self.transfer_time + self.compute_time
        return self.transfer_time / total if total > 0 else 0.0

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """JSON-safe snapshot of every field; :meth:`from_dict` inverts it exactly."""
        return {
            "backend": self.backend,
            "wall_time": float(self.wall_time),
            "compute_time": float(self.compute_time),
            "transfer_time": float(self.transfer_time),
            "simulated_device_time": float(self.simulated_device_time),
            "h2d_bytes": int(self.h2d_bytes),
            "d2h_bytes": int(self.d2h_bytes),
            "n_chunks": int(self.n_chunks),
            "n_kernel_launches": int(self.n_kernel_launches),
            "n_threads_launched": int(self.n_threads_launched),
            "n_active_pixels": int(self.n_active_pixels),
            "n_steps": int(self.n_steps),
            "layout": self.layout,
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "ReconstructionReport":
        """Rebuild a report from a :meth:`to_dict` snapshot.

        Unknown keys fail loudly — a provenance record written by a newer
        version must not half-apply.
        """
        data = dict(data)
        known = {f.name for f in dataclass_fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValidationError(f"unknown report field(s): {unknown}; known: {sorted(known)}")
        if "backend" not in data:
            raise ValidationError("report dict requires a 'backend' entry")
        return cls(**data)

    def summary(self) -> str:
        """Human-readable one-paragraph summary."""
        lines = [
            f"backend={self.backend} wall={self.wall_time:.4f}s",
            f"  chunks={self.n_chunks} launches={self.n_kernel_launches} threads={self.n_threads_launched}",
            f"  active_pixels={self.n_active_pixels} steps={self.n_steps} layout={self.layout}",
        ]
        if self.simulated_device_time > 0:
            lines.append(
                f"  simulated: total={self.simulated_device_time:.4f}s "
                f"compute={self.compute_time:.4f}s transfer={self.transfer_time:.4f}s "
                f"(transfer fraction {self.transfer_fraction:.1%})"
            )
        if self.h2d_bytes or self.d2h_bytes:
            lines.append(f"  H2D={self.h2d_bytes} bytes D2H={self.d2h_bytes} bytes")
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)

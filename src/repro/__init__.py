"""repro — Laue wire-scan depth reconstruction with a simulated CUDA device.

A reproduction of *"Accelerating the Depth Reconstruction Algorithm with
CUDA/GPU"* (Yue, Schwarz, Tischler; CLUSTER 2015): the differential-aperture
(wire-scan) depth-reconstruction algorithm used at APS sector 34-ID,
re-implemented in Python with

* a clean reference implementation and a vectorised implementation of the
  reconstruction (``repro.core``);
* a software model of the CUDA execution environment the paper ports the
  algorithm to (``repro.cudasim``);
* the experiment geometry, a minimal crystallography layer and a synthetic
  wire-scan forward model that replaces the unavailable beamline data
  (``repro.geometry``, ``repro.crystallography``, ``repro.synthetic``);
* an HDF5-like container format and the file pipeline (``repro.io``);
* a benchmark harness that regenerates the paper's figures
  (``repro.perf`` + the ``benchmarks/`` directory).

Quick start::

    import repro
    from repro.synthetic import make_grain_sample_stack

    stack, source, sample = make_grain_sample_stack()
    run = (repro.session(grid=repro.DepthGrid.from_range(0, 120, 60))
                .on("gpusim")
                .run(repro.open(stack)))
    print(run.report.summary())
    print(run.to_json())  # provenance: config, plan, timings, source

``repro.open`` normalizes any input (stack, ``.h5lite`` path, glob,
directory, ndarray+geometry) and ``repro.session`` is the immutable fluent
builder; ``repro.backends()`` introspects the pluggable backend registry.
"""

from repro import core, cudasim, geometry, io, synthetic, utils
from repro.core import (
    BackendInfo,
    BatchRunResult,
    DepthGrid,
    DepthReconstructor,
    DepthResolvedStack,
    ReconstructionConfig,
    RunResult,
    Session,
    Source,
    WireScanStack,
    available_backends,
    backends,
    open,
    register_backend,
    session,
    unregister_backend,
)

__version__ = "1.1.0"

# NOTE: repro.open is public API but deliberately absent from __all__, so
# `from repro import *` never shadows the builtin open (gzip-style).
__all__ = [
    "core",
    "cudasim",
    "geometry",
    "io",
    "synthetic",
    "utils",
    "session",
    "Session",
    "Source",
    "RunResult",
    "BatchRunResult",
    "backends",
    "available_backends",
    "register_backend",
    "unregister_backend",
    "BackendInfo",
    "DepthGrid",
    "DepthReconstructor",
    "DepthResolvedStack",
    "ReconstructionConfig",
    "WireScanStack",
    "__version__",
]

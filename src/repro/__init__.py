"""repro — Laue wire-scan depth reconstruction with a simulated CUDA device.

A reproduction of *"Accelerating the Depth Reconstruction Algorithm with
CUDA/GPU"* (Yue, Schwarz, Tischler; CLUSTER 2015): the differential-aperture
(wire-scan) depth-reconstruction algorithm used at APS sector 34-ID,
re-implemented in Python with

* a clean reference implementation and a vectorised implementation of the
  reconstruction (``repro.core``);
* a software model of the CUDA execution environment the paper ports the
  algorithm to (``repro.cudasim``);
* the experiment geometry, a minimal crystallography layer and a synthetic
  wire-scan forward model that replaces the unavailable beamline data
  (``repro.geometry``, ``repro.crystallography``, ``repro.synthetic``);
* an HDF5-like container format and the file pipeline (``repro.io``);
* a benchmark harness that regenerates the paper's figures
  (``repro.perf`` + the ``benchmarks/`` directory).

Quick start::

    from repro.core import DepthGrid, DepthReconstructor
    from repro.synthetic import make_grain_sample_stack

    stack, source, sample = make_grain_sample_stack()
    reconstructor = DepthReconstructor(grid=DepthGrid.from_range(0, 120, 60),
                                       backend="gpusim")
    result, report = reconstructor.reconstruct(stack)
    print(report.summary())
"""

from repro import core, cudasim, geometry, io, synthetic, utils
from repro.core import (
    DepthGrid,
    DepthReconstructor,
    DepthResolvedStack,
    ReconstructionConfig,
    WireScanStack,
)

__version__ = "1.0.0"

__all__ = [
    "core",
    "cudasim",
    "geometry",
    "io",
    "synthetic",
    "utils",
    "DepthGrid",
    "DepthReconstructor",
    "DepthResolvedStack",
    "ReconstructionConfig",
    "WireScanStack",
    "__version__",
]

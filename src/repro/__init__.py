"""repro — Laue wire-scan depth reconstruction with a simulated CUDA device.

A reproduction of *"Accelerating the Depth Reconstruction Algorithm with
CUDA/GPU"* (Yue, Schwarz, Tischler; CLUSTER 2015): the differential-aperture
(wire-scan) depth-reconstruction algorithm used at APS sector 34-ID,
re-implemented in Python with

* a clean reference implementation and a vectorised implementation of the
  reconstruction (``repro.core``);
* a software model of the CUDA execution environment the paper ports the
  algorithm to (``repro.cudasim``);
* the experiment geometry, a minimal crystallography layer and a synthetic
  wire-scan forward model that replaces the unavailable beamline data
  (``repro.geometry``, ``repro.crystallography``, ``repro.synthetic``);
* an HDF5-like container format and the file pipeline (``repro.io``);
* a benchmark harness that regenerates the paper's figures
  (``repro.perf`` + the ``benchmarks/`` directory).

Quick start::

    import repro
    from repro.synthetic import make_grain_sample_stack

    stack, source, sample = make_grain_sample_stack()
    run = (repro.session(grid=repro.DepthGrid.from_range(0, 120, 60))
                .on("gpusim")
                .run(repro.open(stack)))
    print(run.report.summary())
    print(run.to_json())  # provenance: config, plan, timings, source

    run.save("depth.h5lite")              # stack + full run record in one file
    same = repro.load("depth.h5lite")     # lossless RunResult round-trip
    print(repro.analysis("peaks", "fwhm").apply(same).to_json())

``repro.open`` normalizes any input (stack, ``.h5lite`` path, glob,
directory, ndarray+geometry) and ``repro.session`` is the immutable fluent
builder.  The results side is symmetric: ``repro.load`` reconstructs saved
runs with their provenance, ``repro.analysis`` chains named analysis ops
into immutable pipelines, and ``repro.ops()`` / ``repro.backends()``
introspect the op and backend registries.
"""

from repro import core, cudasim, geometry, io, synthetic, utils
from repro.core import (
    AnalysisPipeline,
    AnalysisResult,
    BackendInfo,
    BatchAnalysisResult,
    BatchRunResult,
    CacheStats,
    DepthGrid,
    DepthReconstructor,
    DepthResolvedStack,
    OpInfo,
    ReconstructionConfig,
    ResultCache,
    RunResult,
    Session,
    Source,
    WireScanStack,
    available_backends,
    available_ops,
    backends,
    load,
    open,
    pool,
    register_backend,
    register_op,
    session,
    shutdown_shared_pool,
    unregister_backend,
    unregister_op,
    WorkerPool,
)

# imported from the ops module directly (not via repro.core) so the
# repro.core.analysis and repro.core.ops submodules stay reachable as
# attributes; at this level no submodule name collides
from repro.core.ops import analysis, ops, register_reduce_op

# the DAG analysis engine; importing it also registers the cross-run science
# ops (aperture_total, zernike_moments, integrated_estimate, scaling_fit,
# sample_stats) in the op registry
from repro import analysisgraph
from repro.analysisgraph import (
    AnalysisGraph,
    GraphAnalysisResult,
    GraphBatchResult,
    graph,
)

# the one version definition lives in repro._version (setup.py parses that
# file textually); this is a re-export, never a second definition
from repro._version import __version__


def __getattr__(name):
    # repro.serve is loaded lazily: the serving daemon is optional machinery
    # and `import repro` must stay light for library users
    if name == "serve":
        import importlib

        module = importlib.import_module("repro.serve")
        globals()["serve"] = module
        return module
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

# NOTE: repro.open is public API but deliberately absent from __all__, so
# `from repro import *` never shadows the builtin open (gzip-style).
__all__ = [
    "core",
    "cudasim",
    "geometry",
    "io",
    "synthetic",
    "utils",
    "serve",
    "session",
    "Session",
    "Source",
    "RunResult",
    "BatchRunResult",
    "ResultCache",
    "CacheStats",
    "pool",
    "WorkerPool",
    "shutdown_shared_pool",
    "load",
    "analysis",
    "AnalysisPipeline",
    "AnalysisResult",
    "BatchAnalysisResult",
    "analysisgraph",
    "graph",
    "AnalysisGraph",
    "GraphAnalysisResult",
    "GraphBatchResult",
    "ops",
    "available_ops",
    "register_op",
    "register_reduce_op",
    "unregister_op",
    "OpInfo",
    "backends",
    "available_backends",
    "register_backend",
    "unregister_backend",
    "BackendInfo",
    "DepthGrid",
    "DepthReconstructor",
    "DepthResolvedStack",
    "ReconstructionConfig",
    "WireScanStack",
    "__version__",
]

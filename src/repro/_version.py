"""The single source of truth for the package version.

Everything that stamps or compares a version reads this module:
``repro.__version__``, :func:`repro.utils.version.package_version` (run,
batch and analysis provenance records, ``BENCH_*.json`` artifacts) and
``setup.py`` (which parses this file textually so building metadata never
imports the package).  Cache keys in :mod:`repro.core.cache` incorporate the
version, so any drift between definitions would silently poison cache hits —
keep exactly one definition, here.
"""

from __future__ import annotations

__all__ = ["__version__"]

__version__ = "1.2.0"

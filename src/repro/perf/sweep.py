"""Parameter sweeps over workloads and backends."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.config import ReconstructionConfig
from repro.core.backends import get_backend
from repro.core.result import ReconstructionReport
from repro.synthetic.workloads import BenchmarkWorkload
from repro.utils.logging import get_logger

__all__ = ["SweepRecord", "run_backend_sweep"]

_LOG = get_logger(__name__)


@dataclass
class SweepRecord:
    """One (workload, backend) measurement."""

    workload: str
    backend: str
    pixel_fraction: float
    data_bytes: int
    n_elements: int
    wall_time: float
    simulated_time: float
    transfer_time: float
    compute_time: float
    layout: Optional[str] = None
    extra: Dict = field(default_factory=dict)

    def as_dict(self) -> Dict:
        """Flat dictionary form (for CSV-like dumps)."""
        row = {
            "workload": self.workload,
            "backend": self.backend,
            "pixel_fraction": self.pixel_fraction,
            "data_bytes": self.data_bytes,
            "n_elements": self.n_elements,
            "wall_time": self.wall_time,
            "simulated_time": self.simulated_time,
            "transfer_time": self.transfer_time,
            "compute_time": self.compute_time,
            "layout": self.layout,
        }
        row.update(self.extra)
        return row


def run_backend_sweep(
    workloads: Sequence[BenchmarkWorkload],
    backends: Iterable[str],
    base_config: Optional[ReconstructionConfig] = None,
    config_overrides: Optional[Dict[str, Dict]] = None,
    repeats: int = 1,
) -> List[SweepRecord]:
    """Run every backend on every workload and collect timing records.

    Parameters
    ----------
    workloads:
        The generated benchmark workloads.
    backends:
        Backend names to run.
    base_config:
        Configuration template; the workload's own grid replaces
        ``base_config.grid`` for each run.  When omitted, a default
        configuration is built from each workload's grid.
    config_overrides:
        Optional per-backend configuration overrides, e.g.
        ``{"gpusim": {"layout": "pointer3d"}}``.
    repeats:
        Number of repetitions; the fastest wall time is kept (the modelled
        device time is deterministic, so repetition only affects wall time).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    config_overrides = config_overrides or {}
    records: List[SweepRecord] = []

    for workload in workloads:
        for backend_name in backends:
            overrides = dict(config_overrides.get(backend_name, {}))
            if base_config is None:
                config = ReconstructionConfig(grid=workload.grid, backend=backend_name, **overrides)
            else:
                config = base_config.with_overrides(grid=workload.grid, backend=backend_name, **overrides)

            backend = get_backend(backend_name)
            best_wall = float("inf")
            report: ReconstructionReport | None = None
            for _ in range(repeats):
                start = time.perf_counter()
                _, report = backend.reconstruct(workload.stack, config)
                best_wall = min(best_wall, time.perf_counter() - start)

            assert report is not None
            record = SweepRecord(
                workload=workload.label,
                backend=backend_name,
                pixel_fraction=workload.pixel_fraction,
                data_bytes=workload.actual_bytes,
                n_elements=workload.n_elements,
                wall_time=best_wall,
                simulated_time=report.simulated_device_time,
                transfer_time=report.transfer_time,
                compute_time=report.compute_time,
                layout=report.layout,
                extra={"n_chunks": report.n_chunks, "n_kernel_launches": report.n_kernel_launches},
            )
            _LOG.info(
                "sweep: %s / %s -> %.3f s wall",
                workload.label,
                backend_name,
                best_wall,
            )
            records.append(record)
    return records

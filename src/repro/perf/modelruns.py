"""Paper-scale predictions from the analytic performance models.

The measured benchmarks run on cubes thousands of times smaller than the
paper's 2.1–5.2 GB data sets.  To compare against the paper's absolute
numbers, this module evaluates the analytic host/device models (calibrated
per element on the measured runs, or with their documented defaults) at the
paper's full problem sizes and produces the Fig. 8 / Fig. 9 series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.kernels import KERNEL_BYTES_PER_THREAD, KERNEL_FLOPS_PER_THREAD
from repro.cudasim.device import TESLA_M2070, DeviceProperties
from repro.cudasim.perfmodel import HostPerformanceModel, PerformanceModel
from repro.synthetic.workloads import PAPER_DATASET_SIZES_GB

__all__ = ["PaperScalePrediction", "paper_scale_prediction", "predict_figure8", "predict_figure9"]

#: Paper-reported total times in seconds (read off Fig. 8).
PAPER_FIG8_CPU_SECONDS = {"2.1G": 1138.0, "2.7G": 1397.0, "3.6G": 2181.0, "5.2G": 4286.0}
PAPER_FIG8_GPU_SECONDS = {"2.1G": 488.0, "2.7G": 505.0, "3.6G": 633.0, "5.2G": 1172.0}
#: Paper-reported total times in seconds (read off Fig. 9, 5.2 G data set).
PAPER_FIG9_CPU_SECONDS = {"25%": 1316.0, "50%": 2342.0, "100%": 4286.0}
PAPER_FIG9_GPU_SECONDS = {"25%": 503.0, "50%": 707.0, "100%": 1172.0}

#: Effective byte rate of the non-ported host portion (HDF5 reading, image
#: preprocessing, result writing).  Both versions pay this cost — the paper
#: explicitly keeps everything except the per-pixel reconstruction on the
#: CPU — and it is what keeps the GPU version's total time from collapsing
#: to the transfer+kernel time alone.
_SERIAL_HOST_BYTES_PER_SECOND = 8.0e6

#: Per-element scalar reconstruction cost of the original CPU program,
#: calibrated so the modelled CPU totals land in the range Fig. 8 reports.
_CPU_SECONDS_PER_ELEMENT = 3.5e-6


@dataclass(frozen=True)
class PaperScalePrediction:
    """Modelled end-to-end times for one paper-scale data set."""

    label: str
    data_bytes: float
    n_elements: float
    cpu_seconds: float
    gpu_seconds: float

    @property
    def gpu_over_cpu(self) -> float:
        """GPU time as a fraction of CPU time."""
        return self.gpu_seconds / self.cpu_seconds


def _elements_for_bytes(data_bytes: float, n_positions: int = 401) -> float:
    """Number of (pixel, step) elements in a cube of *data_bytes* bytes."""
    total_elements = data_bytes / 8.0
    pixels = total_elements / n_positions
    return pixels * (n_positions - 1)


def paper_scale_prediction(
    label: str,
    data_bytes: float,
    pixel_fraction: float = 1.0,
    host_model: Optional[HostPerformanceModel] = None,
    device: DeviceProperties = TESLA_M2070,
    device_model: Optional[PerformanceModel] = None,
    serial_seconds: Optional[float] = None,
) -> PaperScalePrediction:
    """Predict CPU and GPU end-to-end times for one paper-scale data set.

    The model composes three parts:

    * a serial host portion (file I/O and setup) common to both versions;
    * the reconstruction itself: per-element scalar cost on the CPU,
      roofline kernel time on the GPU;
    * for the GPU, the host↔device transfers of the full input cube and the
      depth-resolved output over PCIe.
    """
    host_model = host_model or HostPerformanceModel(time_per_element=_CPU_SECONDS_PER_ELEMENT)
    device_model = device_model or device.performance_model()

    n_elements = _elements_for_bytes(data_bytes) * pixel_fraction
    cpu_reconstruction = host_model.total_time(int(n_elements))
    if serial_seconds is None:
        serial_seconds = data_bytes / _SERIAL_HOST_BYTES_PER_SECOND
    cpu_total = serial_seconds + cpu_reconstruction

    output_bytes = 0.25 * data_bytes  # depth-resolved cube is smaller than the scan cube
    kernel_seconds = device_model.kernel_time(
        n_threads=int(n_elements),
        flops_per_thread=KERNEL_FLOPS_PER_THREAD,
        bytes_per_thread=KERNEL_BYTES_PER_THREAD,
    )
    transfer_seconds = device_model.transfer_time(data_bytes * pixel_fraction + output_bytes, n_transfers=64)
    gpu_total = serial_seconds + kernel_seconds + transfer_seconds

    return PaperScalePrediction(
        label=label,
        data_bytes=data_bytes,
        n_elements=n_elements,
        cpu_seconds=cpu_total,
        gpu_seconds=gpu_total,
    )


def predict_figure8(**kwargs) -> Dict[str, PaperScalePrediction]:
    """Modelled Fig. 8 series: CPU vs GPU time for the four data-set sizes."""
    return {
        label: paper_scale_prediction(label, size_gb * 1024**3, **kwargs)
        for label, size_gb in PAPER_DATASET_SIZES_GB.items()
    }


def predict_figure9(size_label: str = "5.2G", **kwargs) -> Dict[str, PaperScalePrediction]:
    """Modelled Fig. 9 series: CPU vs GPU time vs pixel percentage (largest set)."""
    data_bytes = PAPER_DATASET_SIZES_GB[size_label] * 1024**3
    out: Dict[str, PaperScalePrediction] = {}
    for percentage in (25, 50, 100):
        out[f"{percentage}%"] = paper_scale_prediction(
            size_label, data_bytes, pixel_fraction=percentage / 100.0, **kwargs
        )
    return out

"""Rendering benchmark results as paper-style tables.

Each of the paper's figures is a grouped bar chart: an x-axis category
(data-set size or pixel percentage) with one bar per variant (CPU vs GPU, or
1-D vs 3-D layout).  ``format_series_table`` prints the same information as a
fixed-width text table, which is what the benchmark harness and
``EXPERIMENTS.md`` use.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.perf.sweep import SweepRecord

__all__ = [
    "format_series_table",
    "format_figure_report",
    "format_batch_table",
    "format_backend_table",
    "format_ops_table",
    "format_analysis_failures",
    "records_to_series",
]


def records_to_series(
    records: Iterable[SweepRecord],
    x_key: str = "workload",
    variant_key: str = "backend",
    value_key: str = "wall_time",
) -> Dict[str, Dict[str, float]]:
    """Pivot sweep records into ``{x_value: {variant: value}}``."""
    series: Dict[str, Dict[str, float]] = {}
    for record in records:
        row = record.as_dict()
        x_value = str(row[x_key])
        variant = str(row[variant_key])
        series.setdefault(x_value, {})[variant] = float(row[value_key])
    return series


def format_series_table(
    series: Dict[str, Dict[str, float]],
    x_label: str,
    variants: Optional[Sequence[str]] = None,
    value_format: str = "{:10.3f}",
    value_label: str = "time (s)",
) -> str:
    """Format ``{x: {variant: value}}`` as a fixed-width table."""
    if variants is None:
        seen: List[str] = []
        for row in series.values():
            for name in row:
                if name not in seen:
                    seen.append(name)
        variants = seen
    header = f"{x_label:<16s}" + "".join(f"{v:>14s}" for v in variants)
    lines = [f"[{value_label}]", header, "-" * len(header)]
    for x_value, row in series.items():
        cells = []
        for variant in variants:
            if variant in row:
                cells.append(value_format.format(row[variant]).rjust(14))
            else:
                cells.append(f"{'-':>14s}")
        lines.append(f"{x_value:<16s}" + "".join(cells))
    return "\n".join(lines)


def format_batch_table(batch) -> str:
    """Fixed-width per-file table for a :class:`repro.core.pipeline.BatchReport`.

    One row per scheduled file with its status, wall time and (for successes)
    the reconstruction accounting; the footer aggregates batch throughput.
    """
    header = f"{'file':<40s}{'status':>8s}{'wall (s)':>12s}{'chunks':>8s}{'active':>12s}"
    lines = [header, "-" * len(header)]
    for item in batch.items:
        name = item.input_path
        if len(name) > 38:
            name = "..." + name[-35:]
        if item.ok and item.report is not None:
            status = "hit" if getattr(item, "cached", False) else "ok"
            lines.append(
                f"{name:<40s}{status:>8s}{item.wall_time:>12.4f}"
                f"{item.report.n_chunks:>8d}{item.report.n_active_pixels:>12d}"
            )
        else:
            lines.append(f"{name:<40s}{'FAIL':>8s}{item.wall_time:>12.4f}{'-':>8s}{'-':>12s}")
            lines.append(f"    error: {item.error}")
    lines.append("-" * len(header))
    footer = (
        f"{batch.n_ok}/{batch.n_files} ok in {batch.wall_time:.4f}s wall "
        f"({batch.max_workers} worker(s), {batch.throughput_files_per_second:.2f} files/s)"
    )
    n_cached = getattr(batch, "n_cached", 0)
    if n_cached:
        footer += f", {n_cached} cached"
    lines.append(footer)
    return "\n".join(lines)


def format_backend_table(infos) -> str:
    """Fixed-width capability table for the ``repro-backends`` CLI.

    One row per :class:`~repro.core.registry.BackendInfo` with its capability
    flags, defining module and description.
    """
    header = f"{'backend':<16s}{'streaming':>10s}{'workers':>9s}  {'module':<36s}description"
    lines = [header, "-" * max(len(header), 72)]
    for info in infos:
        lines.append(
            f"{info.name:<16s}"
            f"{'yes' if info.supports_streaming else 'no':>10s}"
            f"{'yes' if info.needs_workers else 'no':>9s}"
            f"  {info.module:<36s}{info.description}"
        )
    lines.append("-" * max(len(header), 72))
    lines.append(f"{len(infos)} backend(s) registered")
    return "\n".join(lines)


def format_ops_table(infos) -> str:
    """Fixed-width table for the ``repro-analyze --list`` CLI.

    One row per :class:`~repro.core.ops.OpInfo` with its kind (``run`` ops
    consume one depth-resolved result; ``reduce`` ops consume a whole batch),
    keyword parameters (and defaults) and description.
    """
    rendered = [
        ", ".join(f"{key}={value!r}" for key, value in info.parameters().items()) or "-"
        for info in infos
    ]
    name_width = max([20] + [len(info.name) + 2 for info in infos])
    params_width = max([12] + [len(params) for params in rendered])
    header = f"{'op':<{name_width}s}{'kind':<8s}{'parameters':<{params_width}s}  description"
    lines = [header, "-" * max(len(header), 72)]
    for info, params in zip(infos, rendered):
        lines.append(
            f"{info.name:<{name_width}s}{info.kind:<8s}"
            f"{params:<{params_width}s}  {info.description}"
        )
    lines.append("-" * max(len(header), 72))
    lines.append(f"{len(infos)} op(s) registered")
    return "\n".join(lines)


def format_analysis_failures(items) -> str:
    """Fixed-width per-item error table for a failed batch analysis.

    *items* are the ``failed`` entries of a
    :class:`~repro.core.ops.BatchAnalysisResult` or
    :class:`~repro.analysisgraph.GraphBatchResult` — anything with an
    ``input_path`` and an ``error``.  ``repro-analyze`` prints this on stderr
    before exiting nonzero.
    """
    header = f"{'input':<44s}error"
    lines = [header, "-" * max(len(header), 72)]
    for item in items:
        name = item.input_path
        if len(name) > 42:
            name = "..." + name[-39:]
        lines.append(f"{name:<44s}{item.error or '-'}")
    lines.append("-" * max(len(header), 72))
    return "\n".join(lines)


def format_figure_report(
    title: str,
    records: Iterable[SweepRecord],
    x_key: str = "workload",
    variant_key: str = "backend",
    value_key: str = "wall_time",
    extra_lines: Optional[Sequence[str]] = None,
) -> str:
    """Full text report for one reproduced figure."""
    records = list(records)
    series = records_to_series(records, x_key=x_key, variant_key=variant_key, value_key=value_key)
    lines = ["=" * 72, title, "=" * 72]
    lines.append(format_series_table(series, x_label=x_key, value_label=value_key))
    if extra_lines:
        lines.append("")
        lines.extend(extra_lines)
    return "\n".join(lines)

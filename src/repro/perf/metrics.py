"""Summary metrics for the benchmark reports."""

from __future__ import annotations

from typing import Dict, Iterable, Tuple

__all__ = ["speedup", "time_ratio", "summarize_ratio_range", "relative_change"]


def speedup(baseline_time: float, candidate_time: float) -> float:
    """Speed-up of the candidate over the baseline (>1 means faster)."""
    if candidate_time <= 0:
        raise ValueError("candidate_time must be positive")
    return baseline_time / candidate_time


def time_ratio(candidate_time: float, baseline_time: float) -> float:
    """Candidate time as a fraction of the baseline (the paper's 25 %–30 %)."""
    if baseline_time <= 0:
        raise ValueError("baseline_time must be positive")
    return candidate_time / baseline_time


def relative_change(old: float, new: float) -> float:
    """Relative change (new - old) / old."""
    if old == 0:
        raise ValueError("old value must be non-zero")
    return (new - old) / old


def summarize_ratio_range(pairs: Iterable[Tuple[float, float]]) -> Dict[str, float]:
    """Summarise candidate/baseline time ratios over several measurements.

    Parameters
    ----------
    pairs:
        Iterable of ``(candidate_time, baseline_time)`` tuples.

    Returns
    -------
    dict with ``min``, ``max`` and ``mean`` ratios — the form in which the
    paper states its headline result ("25 % to 30 % of the prior CPU
    design").
    """
    ratios = [time_ratio(candidate, baseline) for candidate, baseline in pairs]
    if not ratios:
        raise ValueError("at least one measurement pair is required")
    return {
        "min": min(ratios),
        "max": max(ratios),
        "mean": sum(ratios) / len(ratios),
        "count": len(ratios),
    }

"""Performance measurement, sweeps and paper-style reporting.

The benchmark harness is built from three layers:

* :mod:`repro.perf.timer` — wall-clock measurement helpers;
* :mod:`repro.perf.sweep` — runs a reconstruction configuration over a grid
  of workloads/backends and collects :class:`~repro.perf.sweep.SweepRecord`
  rows;
* :mod:`repro.perf.reporting` — renders those rows as the same series the
  paper's figures show (one column per variant, one row per x-axis point),
  and :mod:`repro.perf.metrics` computes the summary ratios (the "25 %–30 %
  of the CPU time" headline);
* :mod:`repro.perf.modelruns` — evaluates the analytic device/host models at
  the paper's full data-set sizes so measured laptop-scale trends can be put
  side by side with paper-scale predictions;
* :mod:`repro.perf.parallel` — the host-parallelism scaling suites
  (worker-count curve, shm vs pickle dispatch, pool reuse, and the
  executor-strategy matrix with the fused-kernel comparison) behind the
  ``repro-bench`` CLI and the ``BENCH_*.json`` perf-trajectory artifacts;
* :mod:`repro.perf.autotune` — the throughput microprobe that calibrates
  executor strategy and worker count per (machine, workload shape), cached
  in the result-cache root and surfaced as ``Session.configure(workers="auto")``.
"""

from repro.perf.timer import Timer, time_callable, time_stats
from repro.perf.sweep import SweepRecord, run_backend_sweep
from repro.perf.metrics import speedup, time_ratio, summarize_ratio_range
from repro.perf.reporting import format_series_table, format_figure_report
from repro.perf.modelruns import paper_scale_prediction, predict_figure8, predict_figure9
from repro.perf.parallel import (
    format_executor_report,
    format_parallel_report,
    run_executor_scaling,
    run_parallel_scaling,
    write_bench_record,
)
from repro.perf.autotune import TuningDecision, resolve_auto_config, run_throughput_probe, tune

__all__ = [
    "Timer",
    "time_callable",
    "time_stats",
    "SweepRecord",
    "run_backend_sweep",
    "speedup",
    "time_ratio",
    "summarize_ratio_range",
    "format_series_table",
    "format_figure_report",
    "paper_scale_prediction",
    "predict_figure8",
    "predict_figure9",
    "run_parallel_scaling",
    "run_executor_scaling",
    "write_bench_record",
    "format_parallel_report",
    "format_executor_report",
    "TuningDecision",
    "tune",
    "resolve_auto_config",
    "run_throughput_probe",
]

"""Throughput-driven auto-tuning of the executor strategy.

``Session.configure(workers="auto")`` (or ``executor="auto"``) needs a
worker count and an executor strategy that actually help on *this* machine —
BENCH_4 showed that guessing wrong makes parallelism a slowdown.  Instead of
guessing, the tuner runs a small throughput microprobe on first use:

1. reconstruct a synthetic point-source chunk serially with the fused
   kernel, establishing the single-thread element throughput;
2. re-run it with row bands fanned out to the shared thread pool at a few
   candidate widths, establishing the measured thread speedup;
3. time a no-op pool dispatch, converting the measured dispatch overhead
   into a minimum compute-per-dispatch element floor via
   :func:`repro.core.chunking.min_elements_for_dispatch`.

The resulting :class:`TuningDecision` — strategy, worker count, granularity
floor, and *why* — is cached as JSON per (machine fingerprint, workload
shape bucket) under ``<cache root>/autotune/`` (the same root the
:class:`~repro.core.cache.ResultCache` uses, so ``REPRO_CACHE_DIR`` governs
both), and later runs skip the probe entirely.

The tuner is deliberately conservative: threads are chosen only when the
probe shows at least :data:`MIN_PARALLEL_SPEEDUP` over serial, and a
single-CPU host short-circuits to serial without probing — there is no
parallel speedup to find, and the decision records that reason honestly.
"""

from __future__ import annotations

import hashlib
import json
import math
import os
import platform
import time
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.chunking import (
    DEFAULT_MIN_ELEMENTS_PER_DISPATCH,
    min_elements_for_dispatch,
    plan_worker_bands,
)
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = [
    "MIN_PARALLEL_SPEEDUP",
    "TUNE_FORMAT_VERSION",
    "TuningDecision",
    "machine_fingerprint",
    "workload_signature",
    "decision_path",
    "load_decision",
    "store_decision",
    "run_throughput_probe",
    "tune",
    "resolve_auto_config",
]

_LOG = get_logger(__name__)

#: On-disk decision format; bumping it orphans (never mis-serves) old entries.
TUNE_FORMAT_VERSION = 1

#: Minimum measured speedup over serial before a parallel strategy is chosen.
#: Below this the win is noise-sized and not worth the dispatch machinery.
MIN_PARALLEL_SPEEDUP = 1.15

#: Probe workload dimensions: big enough that the fused kernel dominates the
#: timing, small enough that a cold probe stays well under a second per arm.
_PROBE_ROWS = 32
_PROBE_COLS = 32
_PROBE_POSITIONS = 41
_PROBE_BINS = 32


@dataclass(frozen=True)
class TuningDecision:
    """What the tuner decided for one (machine, workload-shape) pair."""

    #: chosen strategy: ``serial`` or ``threads``
    executor: str
    #: chosen worker count (1 for serial)
    n_workers: int
    #: calibrated element floor per dispatched work unit
    min_elements_per_dispatch: int
    #: human-readable justification (recorded even when the answer is serial)
    reason: str
    #: machine fingerprint the decision is valid for
    machine: Dict = field(default_factory=dict)
    #: workload shape bucket the decision is valid for
    workload: Dict = field(default_factory=dict)
    #: raw probe measurements (empty when the probe was skipped)
    probe: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """JSON-safe snapshot (inverted by :meth:`from_dict`)."""
        data = asdict(self)
        data["format_version"] = TUNE_FORMAT_VERSION
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "TuningDecision":
        """Rebuild a decision from a :meth:`to_dict` snapshot."""
        data = dict(data)
        if data.pop("format_version", None) != TUNE_FORMAT_VERSION:
            raise ValidationError("tuning decision from an incompatible format version")
        return cls(
            executor=str(data["executor"]),
            n_workers=int(data["n_workers"]),
            min_elements_per_dispatch=int(data["min_elements_per_dispatch"]),
            reason=str(data["reason"]),
            machine=dict(data.get("machine") or {}),
            workload=dict(data.get("workload") or {}),
            probe=dict(data.get("probe") or {}),
        )


def machine_fingerprint() -> Dict:
    """What the decision depends on about the host (JSON-safe)."""
    return {
        "platform": platform.system(),
        "machine": platform.machine(),
        "cpu_count": int(os.cpu_count() or 1),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def workload_signature(
    n_positions: int, n_rows: int, n_cols: int, n_bins: int
) -> Dict:
    """Shape bucket a workload falls into (JSON-safe).

    Element counts are bucketed by powers of two: the right worker count
    depends on the order of magnitude of the work, not its exact shape, and
    bucketing lets every similarly-sized run share one cached decision.
    """
    elements = max(1, (int(n_positions) - 1) * int(n_rows) * int(n_cols))
    return {
        "elements_log2": int(math.floor(math.log2(elements))),
        "n_bins_log2": int(math.floor(math.log2(max(1, int(n_bins))))),
    }


# --------------------------------------------------------------------------- #
# the decision cache
def _autotune_root(root: Optional[str] = None) -> str:
    """The directory tuning decisions live in (inside the result-cache root)."""
    from repro.core.cache import default_cache_root

    return os.path.join(root if root else default_cache_root(), "autotune")


def decision_path(
    machine: Dict, workload: Dict, root: Optional[str] = None
) -> str:
    """Deterministic JSON path for one (machine, workload) decision."""
    payload = json.dumps(
        {"format": TUNE_FORMAT_VERSION, "machine": machine, "workload": workload},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(payload.encode("utf-8")).hexdigest()[:24]
    return os.path.join(_autotune_root(root), f"tune_{digest}.json")


def load_decision(
    machine: Dict, workload: Dict, root: Optional[str] = None
) -> Optional[TuningDecision]:
    """The cached decision for (machine, workload), or ``None``.

    A corrupt or incompatible file is treated as a miss (and removed), never
    an error — the tuner can always re-probe.
    """
    path = decision_path(machine, workload, root)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            return TuningDecision.from_dict(json.load(handle))
    except FileNotFoundError:
        return None
    except (ValueError, KeyError, TypeError, ValidationError):
        try:
            os.remove(path)
        except OSError:  # pragma: no cover - cleanup best-effort
            pass
        return None


def store_decision(decision: TuningDecision, root: Optional[str] = None) -> str:
    """Persist *decision*; returns the path written (atomic via rename)."""
    path = decision_path(decision.machine, decision.workload, root)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(decision.to_dict(), handle, indent=2, sort_keys=True)
    os.replace(tmp, path)
    return path


# --------------------------------------------------------------------------- #
# the microprobe
def _probe_context():
    """A synthetic kernel context the probe reconstructs repeatedly."""
    from repro.core.depth_grid import DepthGrid
    from repro.core.engine import StackChunkSource, build_chunk_context
    from repro.core.config import ReconstructionConfig
    from repro.synthetic.workloads import make_point_source_stack

    stack, _source = make_point_source_stack(
        n_rows=_PROBE_ROWS, n_cols=_PROBE_COLS, n_positions=_PROBE_POSITIONS
    )
    grid = DepthGrid.from_range(0.0, 100.0, _PROBE_BINS)
    config = ReconstructionConfig(grid=grid)
    source = StackChunkSource(stack)
    return build_chunk_context(source, config, 0, source.n_rows)


def _time_serial(ctx, repeats: int) -> float:
    """Best-of-*repeats* serial fused-kernel time over the probe chunk."""
    from repro.core.kernels import depth_resolve_chunk_fused

    out = np.zeros((ctx.grid.n_bins, ctx.n_rows, ctx.n_cols), dtype=np.float64)
    best = math.inf
    for _ in range(repeats):
        out[...] = 0.0
        start = time.perf_counter()
        depth_resolve_chunk_fused(ctx, out)
        best = min(best, time.perf_counter() - start)
    return best


def _time_threaded(ctx, n_workers: int, repeats: int) -> float:
    """Best-of-*repeats* thread-pool time over the same probe chunk."""
    from repro.core.backends.threaded import _band_context, _reconstruct_band
    from repro.core.workerpool import shared_thread_pool

    pool = shared_thread_pool(n_workers)
    # bands sized for the probe itself (no floor): the probe wants to see
    # raw thread scaling, the floor is calibrated separately from overhead
    bands = plan_worker_bands(
        ctx.n_rows, ctx.n_cols, ctx.n_steps, n_workers, min_elements_per_dispatch=1
    )
    best = math.inf
    for _ in range(repeats):
        start = time.perf_counter()
        futures = [
            pool.submit(_reconstruct_band, _band_context(ctx, b0, b1))
            for b0, b1 in bands
        ]
        for future in futures:
            future.result()
        best = min(best, time.perf_counter() - start)
    return best


def _time_dispatch_overhead(n_workers: int, repeats: int = 64) -> float:
    """Median round-trip of an empty thread-pool dispatch (seconds)."""
    from repro.core.workerpool import shared_thread_pool

    pool = shared_thread_pool(n_workers)
    pool.submit(_noop_task).result()  # warm the threads
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        pool.submit(_noop_task).result()
        samples.append(time.perf_counter() - start)
    return float(np.median(samples))


def _noop_task() -> None:
    """Empty task used to measure pure dispatch overhead."""


def run_throughput_probe(
    candidate_workers: Optional[List[int]] = None, repeats: int = 3
) -> Dict:
    """Measure serial vs threaded throughput on the synthetic probe chunk.

    Returns a JSON-safe record: serial time, per-width threaded times and
    speedups, the measured dispatch overhead, and the derived element floor.
    """
    cpu = int(os.cpu_count() or 1)
    if candidate_workers is None:
        candidate_workers = sorted({2, min(4, cpu), cpu} - {0, 1})
    ctx = _probe_context()
    elements = ctx.n_steps * ctx.n_rows * ctx.n_cols

    serial_s = _time_serial(ctx, repeats)
    threaded: Dict[str, float] = {}
    speedups: Dict[str, float] = {}
    for workers in candidate_workers:
        t = _time_threaded(ctx, int(workers), repeats)
        threaded[str(workers)] = t
        speedups[str(workers)] = serial_s / t if t > 0 else 0.0

    overhead_s = _time_dispatch_overhead(max(candidate_workers, default=2))
    elements_per_second = elements / serial_s if serial_s > 0 else 0.0
    floor = min_elements_for_dispatch(overhead_s, elements_per_second)
    return {
        "probe_elements": int(elements),
        "repeats": int(repeats),
        "serial_s": float(serial_s),
        "threaded_s": threaded,
        "thread_speedup": speedups,
        "dispatch_overhead_s": float(overhead_s),
        "elements_per_second": float(elements_per_second),
        "min_elements_per_dispatch": int(floor),
    }


# --------------------------------------------------------------------------- #
# the tuner
def tune(
    n_positions: int,
    n_rows: int,
    n_cols: int,
    n_bins: int,
    root: Optional[str] = None,
    force: bool = False,
) -> TuningDecision:
    """The tuning decision for a workload of this shape on this machine.

    Served from the decision cache when available (unless *force*); a fresh
    probe is run — and its decision stored — otherwise.  Single-CPU hosts
    skip the probe: the decision is serial by construction, with the reason
    recorded.
    """
    machine = machine_fingerprint()
    workload = workload_signature(n_positions, n_rows, n_cols, n_bins)
    if not force:
        cached = load_decision(machine, workload, root)
        if cached is not None:
            _LOG.debug("autotune: cached decision %s x%d", cached.executor, cached.n_workers)
            return cached

    cpu = machine["cpu_count"]
    if cpu <= 1:
        decision = TuningDecision(
            executor="serial",
            n_workers=1,
            min_elements_per_dispatch=DEFAULT_MIN_ELEMENTS_PER_DISPATCH,
            reason=(
                "single-CPU host: no parallel speedup is available, every "
                "dispatch is pure overhead"
            ),
            machine=machine,
            workload=workload,
        )
        store_decision(decision, root)
        return decision

    probe = run_throughput_probe()
    best_workers, best_speedup = 1, 1.0
    for workers, speedup in probe["thread_speedup"].items():
        if speedup > best_speedup:
            best_workers, best_speedup = int(workers), float(speedup)

    if best_speedup >= MIN_PARALLEL_SPEEDUP:
        decision = TuningDecision(
            executor="threads",
            n_workers=best_workers,
            min_elements_per_dispatch=probe["min_elements_per_dispatch"],
            reason=(
                f"threads won the probe: {best_speedup:.2f}x over serial at "
                f"{best_workers} workers (threshold {MIN_PARALLEL_SPEEDUP}x)"
            ),
            machine=machine,
            workload=workload,
            probe=probe,
        )
    else:
        decision = TuningDecision(
            executor="serial",
            n_workers=1,
            min_elements_per_dispatch=probe["min_elements_per_dispatch"],
            reason=(
                f"no parallel strategy beat serial by {MIN_PARALLEL_SPEEDUP}x "
                f"in the probe (best: {best_speedup:.2f}x at {best_workers} "
                "threads); defaulting to serial"
            ),
            machine=machine,
            workload=workload,
            probe=probe,
        )
    store_decision(decision, root)
    _LOG.info("autotune: %s", decision.reason)
    return decision


def resolve_auto_config(
    config,
    n_positions: int,
    n_rows: int,
    n_cols: int,
    root: Optional[str] = None,
) -> Tuple["object", Optional[TuningDecision]]:
    """Replace ``auto`` markers in *config* with tuned concrete values.

    Returns ``(resolved config, decision)``; a config with no ``auto``
    markers is returned unchanged with ``decision=None``.  The session calls
    this before handing the config to the engine, so executors only ever see
    concrete worker counts.
    """
    from repro.core.config import AUTO

    wants_auto = config.executor == AUTO or config.n_workers == AUTO
    if not wants_auto:
        return config, None
    decision = tune(n_positions, n_rows, n_cols, config.grid.n_bins, root=root)
    overrides: Dict = {}
    if config.executor == AUTO:
        overrides["executor"] = decision.executor
    if config.n_workers == AUTO:
        overrides["n_workers"] = decision.n_workers
    return config.with_overrides(**overrides), decision

"""Wall-clock timing helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

__all__ = ["Timer", "time_callable", "time_stats"]


@dataclass
class Timer:
    """A context-manager stopwatch that can be reused and accumulated.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: List[float] = field(default_factory=list)
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap

    def reset(self) -> None:
        """Zero the accumulated time and laps."""
        self.elapsed = 0.0
        self.laps.clear()

    @property
    def mean_lap(self) -> float:
        """Mean duration of the recorded laps (0 when none)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    @property
    def min_lap(self) -> float:
        """Fastest lap (0 when none)."""
        return min(self.laps) if self.laps else 0.0


def time_callable(func: Callable, *args, repeats: int = 1, **kwargs) -> Tuple[float, object]:
    """Call *func* ``repeats`` times; return (best wall time, last result)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result


def _quantile(sorted_samples: List[float], q: float) -> float:
    """Linear-interpolated quantile of already-sorted samples."""
    if not sorted_samples:
        return 0.0
    if len(sorted_samples) == 1:
        return sorted_samples[0]
    position = q * (len(sorted_samples) - 1)
    lo = int(position)
    hi = min(lo + 1, len(sorted_samples) - 1)
    fraction = position - lo
    return sorted_samples[lo] * (1.0 - fraction) + sorted_samples[hi] * fraction


def time_stats(
    func: Callable, *args, repeats: int = 5, warmup: int = 1, **kwargs
) -> Dict:
    """Robust wall-time statistics for *func*: median + IQR over *repeats*.

    Runs *warmup* untimed iterations first (first-touch page faults, pool
    spawns and cold caches land there, not in the samples), then times
    *repeats* calls and reports the **median** with the interquartile range —
    a mean over a few runs is dragged around by a single scheduler hiccup,
    while the median/IQR pair is stable and says how noisy the samples were.

    Returns a JSON-safe dict: ``median_s``, ``iqr_s``, ``q1_s``, ``q3_s``,
    ``min_s``, ``max_s``, ``samples_s`` (the raw timings, in order),
    ``repeats`` and ``warmup``.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    if warmup < 0:
        raise ValueError("warmup must be >= 0")
    for _ in range(warmup):
        func(*args, **kwargs)
    samples: List[float] = []
    for _ in range(repeats):
        start = time.perf_counter()
        func(*args, **kwargs)
        samples.append(time.perf_counter() - start)
    ordered = sorted(samples)
    q1 = _quantile(ordered, 0.25)
    median = _quantile(ordered, 0.5)
    q3 = _quantile(ordered, 0.75)
    return {
        "median_s": median,
        "iqr_s": q3 - q1,
        "q1_s": q1,
        "q3_s": q3,
        "min_s": ordered[0],
        "max_s": ordered[-1],
        "samples_s": samples,
        "repeats": int(repeats),
        "warmup": int(warmup),
    }

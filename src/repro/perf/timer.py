"""Wall-clock timing helpers."""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Tuple

__all__ = ["Timer", "time_callable"]


@dataclass
class Timer:
    """A context-manager stopwatch that can be reused and accumulated.

    Examples
    --------
    >>> timer = Timer()
    >>> with timer:
    ...     _ = sum(range(1000))
    >>> timer.elapsed > 0
    True
    """

    elapsed: float = 0.0
    laps: List[float] = field(default_factory=list)
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        lap = time.perf_counter() - self._start
        self.laps.append(lap)
        self.elapsed += lap

    def reset(self) -> None:
        """Zero the accumulated time and laps."""
        self.elapsed = 0.0
        self.laps.clear()

    @property
    def mean_lap(self) -> float:
        """Mean duration of the recorded laps (0 when none)."""
        return self.elapsed / len(self.laps) if self.laps else 0.0

    @property
    def min_lap(self) -> float:
        """Fastest lap (0 when none)."""
        return min(self.laps) if self.laps else 0.0


def time_callable(func: Callable, *args, repeats: int = 1, **kwargs) -> Tuple[float, object]:
    """Call *func* ``repeats`` times; return (best wall time, last result)."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = func(*args, **kwargs)
        best = min(best, time.perf_counter() - start)
    return best, result

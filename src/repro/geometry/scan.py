"""Wire scan trajectory.

A depth-resolved measurement records one detector image per wire position as
the wire steps across the diffracted beams.  ``WireScan`` holds the sequence
of wire-centre positions; step ``i`` of the reconstruction differences the
images at positions ``i`` and ``i+1``.

At 34-ID the wire is carried diagonally (roughly 45°) so that it cuts the
diffracted rays travelling up towards the detector; here the default
trajectory moves the wire along +z at constant height, which produces the
same occlusion sweep for the canonical geometry and keeps the synthetic
configuration easy to reason about.  Arbitrary trajectories in the (y, z)
plane are supported.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.geometry.wire import Wire
from repro.utils.validation import ValidationError, ensure_positive

__all__ = ["WireScan"]


@dataclass(frozen=True)
class WireScan:
    """Sequence of wire positions for a depth scan.

    Parameters
    ----------
    wire:
        The :class:`~repro.geometry.wire.Wire` being scanned.
    positions_yz:
        Array of shape ``(n_steps + 1, 2)`` with the (y, z) coordinates of
        the wire centre at each scan point.  ``n_steps`` image *differences*
        are produced from ``n_steps + 1`` images.
    """

    wire: Wire
    positions_yz: np.ndarray

    _pos: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        pos = np.asarray(self.positions_yz, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 2 or pos.shape[0] < 2:
            raise ValidationError(
                "positions_yz must have shape (n_points >= 2, 2), "
                f"got {pos.shape}"
            )
        if not np.all(np.isfinite(pos)):
            raise ValidationError("positions_yz contains non-finite values")
        object.__setattr__(self, "_pos", pos)

    # ------------------------------------------------------------------ #
    @classmethod
    def linear(
        cls,
        wire: Wire | None = None,
        n_points: int = 101,
        height: float = 1_500.0,
        z_start: float = -250.0,
        z_stop: float = 450.0,
    ) -> "WireScan":
        """Canonical linear scan: the wire moves along +z at fixed height.

        The defaults follow the real differential-aperture setup: the wire
        travels a few hundred micrometres just above the sample surface
        (``height`` is small compared with the detector distance), so the
        depth resolution is set by the wire step rather than by the wire
        diameter.

        Parameters
        ----------
        wire:
            Wire to scan (default 26 µm radius).
        n_points:
            Number of wire positions (images); ``n_points - 1`` differences.
        height:
            y coordinate of the wire centre (between sample and detector).
        z_start, z_stop:
            z range swept by the wire centre.
        """
        wire = wire if wire is not None else Wire()
        if n_points < 2:
            raise ValidationError("a scan needs at least 2 wire positions")
        ensure_positive(height, "height")
        if z_stop <= z_start:
            raise ValidationError("z_stop must exceed z_start")
        z = np.linspace(z_start, z_stop, int(n_points))
        y = np.full_like(z, float(height))
        return cls(wire=wire, positions_yz=np.stack([y, z], axis=-1))

    # ------------------------------------------------------------------ #
    @property
    def positions(self) -> np.ndarray:
        """Wire-centre (y, z) positions, shape ``(n_points, 2)``."""
        return self._pos.copy()

    @property
    def n_points(self) -> int:
        """Number of wire positions (= number of recorded images)."""
        return self._pos.shape[0]

    @property
    def n_steps(self) -> int:
        """Number of adjacent-position differences (= depth-resolving steps)."""
        return self._pos.shape[0] - 1

    def step_pair(self, step: int) -> Tuple[np.ndarray, np.ndarray]:
        """Wire positions bounding scan step *step* (``0 <= step < n_steps``)."""
        if not (0 <= step < self.n_steps):
            raise ValidationError(f"step {step} out of range [0, {self.n_steps})")
        return self._pos[step].copy(), self._pos[step + 1].copy()

    def step_size(self) -> float:
        """Mean distance between consecutive wire positions."""
        return float(np.mean(np.linalg.norm(np.diff(self._pos, axis=0), axis=1)))

"""Area detector geometry.

The detector is a regular grid of pixels on a plane above the sample.  In the
canonical configuration the plane is parallel to the x-z plane at height
``y = distance``; detector *columns* run along +x (parallel to the wire axis)
and detector *rows* run along +z (parallel to the beam), so every detector
row sees a distinct (y, z) occlusion geometry while all pixels of a row share
it.  This is the configuration the paper's row-chunked streaming exploits.

A tilt rotation can be applied for non-ideal mounts; the reconstruction only
requires the lab coordinates of each pixel, so tilted detectors work through
the same API (at the cost of per-pixel rather than per-row geometry).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.utils.validation import ValidationError, ensure_positive

__all__ = ["Detector"]


@dataclass(frozen=True)
class Detector:
    """Pixelated area detector.

    Parameters
    ----------
    n_rows, n_cols:
        Number of pixel rows (along +z) and columns (along +x).
    pixel_size:
        Pixel pitch (same for both axes), in micrometres.
    distance:
        Height of the detector plane above the beam (y coordinate), in
        micrometres.
    center:
        Lab (x, z) coordinates of the geometric centre of the pixel grid.
    tilt:
        Optional 3x3 rotation applied to the detector plane about its centre.
    """

    n_rows: int = 256
    n_cols: int = 256
    pixel_size: float = 200.0
    distance: float = 510_000.0
    center: Tuple[float, float] = (0.0, 0.0)
    tilt: np.ndarray | None = None

    _tilt_arr: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        if int(self.n_rows) <= 0 or int(self.n_cols) <= 0:
            raise ValidationError("detector must have positive n_rows and n_cols")
        object.__setattr__(self, "n_rows", int(self.n_rows))
        object.__setattr__(self, "n_cols", int(self.n_cols))
        ensure_positive(self.pixel_size, "pixel_size")
        ensure_positive(self.distance, "distance")
        if self.tilt is not None:
            tilt = np.asarray(self.tilt, dtype=np.float64)
            if tilt.shape != (3, 3):
                raise ValidationError("tilt must be a 3x3 rotation matrix")
            object.__setattr__(self, "_tilt_arr", tilt)

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, int]:
        """``(n_rows, n_cols)``."""
        return (self.n_rows, self.n_cols)

    @property
    def n_pixels(self) -> int:
        """Total pixel count."""
        return self.n_rows * self.n_cols

    @property
    def is_canonical(self) -> bool:
        """True if the detector is untilted (rows along +z, cols along +x)."""
        return self._tilt_arr is None

    # ------------------------------------------------------------------ #
    def pixel_positions(self, rows=None, cols=None) -> np.ndarray:
        """Lab coordinates of pixel centres.

        Parameters
        ----------
        rows, cols:
            Optional 1-D index arrays.  When omitted, the full grid is used.

        Returns
        -------
        numpy.ndarray
            Array of shape ``(len(rows), len(cols), 3)`` with lab xyz of each
            requested pixel centre.
        """
        rows = np.arange(self.n_rows) if rows is None else np.atleast_1d(np.asarray(rows))
        cols = np.arange(self.n_cols) if cols is None else np.atleast_1d(np.asarray(cols))
        self._check_indices(rows, self.n_rows, "row")
        self._check_indices(cols, self.n_cols, "col")

        cx, cz = self.center
        # pixel (row, col) centre before tilt
        x = cx + (cols - (self.n_cols - 1) / 2.0) * self.pixel_size
        z = cz + (rows - (self.n_rows - 1) / 2.0) * self.pixel_size
        xx = np.broadcast_to(x[None, :], (rows.size, cols.size))
        zz = np.broadcast_to(z[:, None], (rows.size, cols.size))
        yy = np.full_like(xx, self.distance, dtype=np.float64)
        pts = np.stack([xx, yy, zz], axis=-1).astype(np.float64)

        if self._tilt_arr is not None:
            centre = np.array([cx, self.distance, cz])
            pts = (pts - centre) @ self._tilt_arr.T + centre
        return pts

    def pixel_position(self, row: int, col: int) -> np.ndarray:
        """Lab coordinates of a single pixel centre, shape ``(3,)``."""
        return self.pixel_positions([row], [col])[0, 0]

    def row_yz(self, rows=None) -> np.ndarray:
        """(y, z) coordinates of pixel rows in the occlusion plane.

        Only valid for the canonical (untilted) detector, where all pixels of
        a row share the same (y, z); this is what the fast reconstruction
        kernels use.  Shape ``(len(rows), 2)``.
        """
        if not self.is_canonical:
            raise ValidationError("row_yz is only defined for untilted detectors")
        rows = np.arange(self.n_rows) if rows is None else np.atleast_1d(np.asarray(rows))
        self._check_indices(rows, self.n_rows, "row")
        cz = self.center[1]
        z = cz + (rows - (self.n_rows - 1) / 2.0) * self.pixel_size
        y = np.full_like(z, self.distance, dtype=np.float64)
        return np.stack([y, z], axis=-1)

    def row_edges_yz(self, rows=None) -> Tuple[np.ndarray, np.ndarray]:
        """(y, z) of the leading/trailing edges of each pixel row.

        The paper's kernel uses the *edges* of each pixel (``front_edge`` /
        ``back_edge``) rather than its centre so that the trapezoid response
        accounts for the finite pixel size.  For the canonical detector the
        edges differ from the centre only in z by half a pixel pitch.

        Returns
        -------
        (back_edges, front_edges):
            Two arrays of shape ``(len(rows), 2)`` holding (y, z); the back
            edge is the -z side, the front edge the +z side.
        """
        centres = self.row_yz(rows)
        half = self.pixel_size / 2.0
        back = centres.copy()
        back[:, 1] -= half
        front = centres.copy()
        front[:, 1] += half
        return back, front

    # ------------------------------------------------------------------ #
    def row_window(self, start: int, stop: int) -> "Detector":
        """Detector restricted to rows ``start:stop`` at the same lab position.

        The windowed detector's centre is shifted so that its pixels coincide
        exactly with rows ``start:stop`` of this detector — the geometry the
        row-chunk streaming and windowed file reads rely on.
        """
        if not (0 <= start < stop <= self.n_rows):
            raise ValidationError(f"invalid row window [{start}, {stop}) for {self.n_rows} rows")
        return Detector(
            n_rows=stop - start,
            n_cols=self.n_cols,
            pixel_size=self.pixel_size,
            distance=self.distance,
            center=(
                self.center[0],
                self.center[1]
                + ((start + stop - 1) / 2.0 - (self.n_rows - 1) / 2.0) * self.pixel_size,
            ),
            tilt=self.tilt,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_indices(indices: np.ndarray, bound: int, name: str) -> None:
        indices = np.asarray(indices)
        if indices.size and (indices.min() < 0 or indices.max() >= bound):
            raise ValidationError(
                f"{name} indices out of range [0, {bound}): "
                f"min {indices.min()}, max {indices.max()}"
            )

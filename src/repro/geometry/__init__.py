"""Experimental geometry for the wire-scan (DAXM) depth reconstruction.

Laboratory frame convention (see DESIGN.md §5):

* the incident X-ray beam travels along **+z**; depth ``d`` along the beam is
  measured from the lab origin, so the illuminated line inside the sample is
  ``(x=0, y=0, z=d)``;
* the occluding wire has its axis along **+x** and is scanned in the (y, z)
  plane between the sample and the detector;
* the area detector sits above the sample at ``y = distance`` with detector
  columns along **x** and detector rows along **z**.

Because the wire is an (effectively infinite) cylinder along x, all of the
occlusion geometry lives in the (y, z) plane — exactly the
``pixel_to_wireCenter_y / _z / _len`` formulation of the paper's CUDA kernel.
"""

from repro.geometry.vectors import normalize, perpendicular_distance_2d
from repro.geometry.rotations import (
    rotation_about_axis,
    rotation_from_euler,
    random_rotation,
)
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.wire import Wire, WireEdge
from repro.geometry.scan import WireScan

__all__ = [
    "normalize",
    "perpendicular_distance_2d",
    "rotation_about_axis",
    "rotation_from_euler",
    "random_rotation",
    "Beam",
    "Detector",
    "Wire",
    "WireEdge",
    "WireScan",
]

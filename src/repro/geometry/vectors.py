"""Small vector helpers used throughout the geometry package."""

from __future__ import annotations

import numpy as np

__all__ = [
    "normalize",
    "norm",
    "cross",
    "dot",
    "angle_between",
    "perpendicular_distance_2d",
    "project_point_on_segment_2d",
]


def norm(v: np.ndarray, axis: int = -1) -> np.ndarray:
    """Euclidean norm along *axis*."""
    return np.linalg.norm(np.asarray(v, dtype=np.float64), axis=axis)


def normalize(v: np.ndarray, axis: int = -1) -> np.ndarray:
    """Return *v* scaled to unit length along *axis*.

    Raises
    ------
    ValueError
        If any vector has (near) zero length.
    """
    v = np.asarray(v, dtype=np.float64)
    n = np.linalg.norm(v, axis=axis, keepdims=True)
    if np.any(n < 1e-300):
        raise ValueError("cannot normalize zero-length vector")
    return v / n


def cross(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Cross product (thin wrapper for API symmetry)."""
    return np.cross(np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64))


def dot(a: np.ndarray, b: np.ndarray, axis: int = -1) -> np.ndarray:
    """Dot product along *axis*."""
    return np.sum(np.asarray(a, dtype=np.float64) * np.asarray(b, dtype=np.float64), axis=axis)


def angle_between(a: np.ndarray, b: np.ndarray) -> float:
    """Angle in radians between two 3-vectors, numerically stable near 0/pi."""
    a = normalize(np.asarray(a, dtype=np.float64))
    b = normalize(np.asarray(b, dtype=np.float64))
    # atan2 form is stable for nearly (anti)parallel vectors.
    return float(np.arctan2(np.linalg.norm(np.cross(a, b)), np.dot(a, b)))


def perpendicular_distance_2d(
    point_y: np.ndarray,
    point_z: np.ndarray,
    a_y: np.ndarray,
    a_z: np.ndarray,
    b_y: np.ndarray,
    b_z: np.ndarray,
) -> np.ndarray:
    """Perpendicular distance from a 2-D point to the infinite line through A and B.

    All arguments broadcast; coordinates are given in the (y, z) plane used by
    the wire-occlusion geometry.
    """
    point_y = np.asarray(point_y, dtype=np.float64)
    point_z = np.asarray(point_z, dtype=np.float64)
    dy = np.asarray(b_y, dtype=np.float64) - np.asarray(a_y, dtype=np.float64)
    dz = np.asarray(b_z, dtype=np.float64) - np.asarray(a_z, dtype=np.float64)
    length = np.hypot(dy, dz)
    # 2-D cross product magnitude / segment length
    cross_mag = np.abs(dy * (np.asarray(a_z) - point_z) - dz * (np.asarray(a_y) - point_y))
    with np.errstate(invalid="ignore", divide="ignore"):
        dist = np.where(length > 0, cross_mag / length, np.hypot(point_y - a_y, point_z - a_z))
    return dist


def project_point_on_segment_2d(
    point_y: np.ndarray,
    point_z: np.ndarray,
    a_y: np.ndarray,
    a_z: np.ndarray,
    b_y: np.ndarray,
    b_z: np.ndarray,
) -> np.ndarray:
    """Normalised parameter ``t`` of the projection of a point onto segment AB.

    ``t = 0`` at A, ``t = 1`` at B; values outside [0, 1] mean the foot of the
    perpendicular lies outside the segment.
    """
    ay = np.asarray(a_y, dtype=np.float64)
    az = np.asarray(a_z, dtype=np.float64)
    dy = np.asarray(b_y, dtype=np.float64) - ay
    dz = np.asarray(b_z, dtype=np.float64) - az
    denom = dy * dy + dz * dz
    num = (np.asarray(point_y, dtype=np.float64) - ay) * dy + (
        np.asarray(point_z, dtype=np.float64) - az
    ) * dz
    with np.errstate(invalid="ignore", divide="ignore"):
        t = np.where(denom > 0, num / denom, 0.0)
    return t

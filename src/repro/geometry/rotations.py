"""Rotation utilities (matrices, axis-angle, Euler, quaternions).

Used by the crystallography subpackage to orient grains and by the geometry
subpackage to allow tilted detectors.  Only the pieces the reconstruction and
the synthetic forward model need are implemented — this is not a general
orientation library.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ValidationError

__all__ = [
    "rotation_about_axis",
    "rotation_from_euler",
    "random_rotation",
    "quaternion_to_matrix",
    "matrix_to_quaternion",
    "is_rotation_matrix",
    "misorientation_angle",
]


def rotation_about_axis(axis, angle: float) -> np.ndarray:
    """Rodrigues rotation matrix for a rotation of *angle* radians about *axis*."""
    axis = np.asarray(axis, dtype=np.float64)
    n = np.linalg.norm(axis)
    if n == 0:
        raise ValidationError("rotation axis must be non-zero")
    x, y, z = axis / n
    c, s = np.cos(angle), np.sin(angle)
    one_c = 1.0 - c
    return np.array(
        [
            [c + x * x * one_c, x * y * one_c - z * s, x * z * one_c + y * s],
            [y * x * one_c + z * s, c + y * y * one_c, y * z * one_c - x * s],
            [z * x * one_c - y * s, z * y * one_c + x * s, c + z * z * one_c],
        ],
        dtype=np.float64,
    )


def rotation_from_euler(phi1: float, theta: float, phi2: float) -> np.ndarray:
    """Rotation matrix from Bunge Euler angles (Z-X-Z convention, radians)."""
    rz1 = rotation_about_axis((0.0, 0.0, 1.0), phi1)
    rx = rotation_about_axis((1.0, 0.0, 0.0), theta)
    rz2 = rotation_about_axis((0.0, 0.0, 1.0), phi2)
    return rz1 @ rx @ rz2


def random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniformly distributed random rotation matrix (Shoemake's method)."""
    u1, u2, u3 = rng.random(3)
    q = np.array(
        [
            np.sqrt(1.0 - u1) * np.sin(2.0 * np.pi * u2),
            np.sqrt(1.0 - u1) * np.cos(2.0 * np.pi * u2),
            np.sqrt(u1) * np.sin(2.0 * np.pi * u3),
            np.sqrt(u1) * np.cos(2.0 * np.pi * u3),
        ]
    )
    return quaternion_to_matrix(q)


def quaternion_to_matrix(q) -> np.ndarray:
    """Rotation matrix from quaternion ``(x, y, z, w)`` (normalised internally)."""
    q = np.asarray(q, dtype=np.float64)
    if q.shape != (4,):
        raise ValidationError(f"quaternion must have shape (4,), got {q.shape}")
    n = np.linalg.norm(q)
    if n == 0:
        raise ValidationError("quaternion must be non-zero")
    x, y, z, w = q / n
    return np.array(
        [
            [1 - 2 * (y * y + z * z), 2 * (x * y - z * w), 2 * (x * z + y * w)],
            [2 * (x * y + z * w), 1 - 2 * (x * x + z * z), 2 * (y * z - x * w)],
            [2 * (x * z - y * w), 2 * (y * z + x * w), 1 - 2 * (x * x + y * y)],
        ],
        dtype=np.float64,
    )


def matrix_to_quaternion(rot: np.ndarray) -> np.ndarray:
    """Quaternion ``(x, y, z, w)`` from a rotation matrix (Shepperd's method)."""
    rot = np.asarray(rot, dtype=np.float64)
    if rot.shape != (3, 3):
        raise ValidationError(f"rotation matrix must be 3x3, got {rot.shape}")
    trace = np.trace(rot)
    if trace > 0:
        s = 2.0 * np.sqrt(1.0 + trace)
        w = 0.25 * s
        x = (rot[2, 1] - rot[1, 2]) / s
        y = (rot[0, 2] - rot[2, 0]) / s
        z = (rot[1, 0] - rot[0, 1]) / s
    else:
        i = int(np.argmax(np.diag(rot)))
        if i == 0:
            s = 2.0 * np.sqrt(1.0 + rot[0, 0] - rot[1, 1] - rot[2, 2])
            x = 0.25 * s
            y = (rot[0, 1] + rot[1, 0]) / s
            z = (rot[0, 2] + rot[2, 0]) / s
            w = (rot[2, 1] - rot[1, 2]) / s
        elif i == 1:
            s = 2.0 * np.sqrt(1.0 + rot[1, 1] - rot[0, 0] - rot[2, 2])
            x = (rot[0, 1] + rot[1, 0]) / s
            y = 0.25 * s
            z = (rot[1, 2] + rot[2, 1]) / s
            w = (rot[0, 2] - rot[2, 0]) / s
        else:
            s = 2.0 * np.sqrt(1.0 + rot[2, 2] - rot[0, 0] - rot[1, 1])
            x = (rot[0, 2] + rot[2, 0]) / s
            y = (rot[1, 2] + rot[2, 1]) / s
            z = 0.25 * s
            w = (rot[1, 0] - rot[0, 1]) / s
    q = np.array([x, y, z, w], dtype=np.float64)
    return q / np.linalg.norm(q)


def is_rotation_matrix(rot: np.ndarray, atol: float = 1e-8) -> bool:
    """True if *rot* is a proper rotation (orthogonal, determinant +1)."""
    rot = np.asarray(rot, dtype=np.float64)
    if rot.shape != (3, 3):
        return False
    if not np.allclose(rot @ rot.T, np.eye(3), atol=atol):
        return False
    return bool(np.isclose(np.linalg.det(rot), 1.0, atol=atol))


def misorientation_angle(rot_a: np.ndarray, rot_b: np.ndarray) -> float:
    """Rotation angle (radians) between two orientations."""
    delta = np.asarray(rot_a, dtype=np.float64) @ np.asarray(rot_b, dtype=np.float64).T
    cos_angle = (np.trace(delta) - 1.0) / 2.0
    return float(np.arccos(np.clip(cos_angle, -1.0, 1.0)))

"""Occluding wire geometry.

The differential-aperture wire is a polished platinum cylinder (~50 µm
diameter at 34-ID) whose axis is parallel to the detector columns (+x in our
convention).  Only the projection of the wire into the (y, z) plane matters
for occlusion: a circle of radius ``radius`` centred at ``(y, z)``.

``WireEdge`` selects which tangent of the pixel→wire-circle pencil is used:
the *leading* edge is the tangent on the +z side (the edge that first starts
occluding rays from shallow depths as the wire advances), the *trailing* edge
the one on the -z side.  The paper passes the same choice around as the
``wire_edge`` integer.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.utils.validation import ValidationError, ensure_positive

__all__ = ["Wire", "WireEdge"]


class WireEdge(enum.IntEnum):
    """Which tangent edge of the wire a ray grazes.

    The integer values (+1 / -1) are used directly as the sign of the
    ``Dphi`` tangent-angle offset in the depth mapping, mirroring the
    ``wire_edge`` parameter of the paper's kernels.
    """

    LEADING = 1
    TRAILING = -1


@dataclass(frozen=True)
class Wire:
    """The occluding wire.

    Parameters
    ----------
    radius:
        Wire radius in micrometres (default 26 µm, i.e. a 52 µm Pt wire).
    axis:
        Wire axis direction; must be (anti)parallel to +x for the canonical
        geometry used by the fast kernels.
    """

    radius: float = 26.0
    axis: Tuple[float, float, float] = (1.0, 0.0, 0.0)

    def __post_init__(self):
        ensure_positive(self.radius, "radius")
        axis = np.asarray(self.axis, dtype=np.float64)
        if axis.shape != (3,):
            raise ValidationError("wire axis must be a 3-vector")
        n = np.linalg.norm(axis)
        if n == 0:
            raise ValidationError("wire axis must be non-zero")
        axis = axis / n
        if not (abs(abs(axis[0]) - 1.0) < 1e-9):
            raise ValidationError(
                "only wires with axis along x are supported by the canonical geometry"
            )

    # ------------------------------------------------------------------ #
    def occludes(
        self,
        source_yz: np.ndarray,
        pixel_yz: np.ndarray,
        center_yz: np.ndarray,
    ) -> np.ndarray:
        """Whether the wire blocks the ray from *source* to *pixel*.

        All inputs are (…, 2) arrays of (y, z) coordinates that broadcast
        against each other.  A ray is blocked when the wire circle intersects
        the open segment between source and pixel.

        This is the geometric ground truth the synthetic forward model uses;
        the reconstruction never calls it (it uses the tangent-depth mapping
        instead), which makes round-trip tests meaningful.
        """
        source_yz = np.asarray(source_yz, dtype=np.float64)
        pixel_yz = np.asarray(pixel_yz, dtype=np.float64)
        center_yz = np.asarray(center_yz, dtype=np.float64)

        sy, sz = source_yz[..., 0], source_yz[..., 1]
        py, pz = pixel_yz[..., 0], pixel_yz[..., 1]
        cy, cz = center_yz[..., 0], center_yz[..., 1]

        dy = py - sy
        dz = pz - sz
        seg_len_sq = dy * dy + dz * dz
        # parameter of the closest point on the segment to the wire centre
        with np.errstate(invalid="ignore", divide="ignore"):
            t = np.where(seg_len_sq > 0, ((cy - sy) * dy + (cz - sz) * dz) / seg_len_sq, 0.0)
        t = np.clip(t, 0.0, 1.0)
        closest_y = sy + t * dy
        closest_z = sz + t * dz
        dist_sq = (closest_y - cy) ** 2 + (closest_z - cz) ** 2
        return dist_sq < self.radius * self.radius

    def tangent_angles(
        self, pixel_yz: np.ndarray, center_yz: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Return (theta, dphi) of the pixel→wire tangent construction.

        ``theta`` is the angle of the pixel→centre direction in the (y, z)
        plane (measured from +y towards +z) and ``dphi`` the half-opening
        angle of the tangent pencil, ``asin(radius / |pixel - centre|)``.
        These are the ``Dphi`` / direction quantities of the paper's
        ``device_pixel_xyz_to_depth``.
        """
        pixel_yz = np.asarray(pixel_yz, dtype=np.float64)
        center_yz = np.asarray(center_yz, dtype=np.float64)
        dy = center_yz[..., 0] - pixel_yz[..., 0]
        dz = center_yz[..., 1] - pixel_yz[..., 1]
        length = np.hypot(dy, dz)
        if np.any(length <= self.radius):
            raise ValidationError(
                "pixel lies on or inside the wire; tangent construction undefined"
            )
        theta = np.arctan2(dz, dy)
        dphi = np.arcsin(self.radius / length)
        return theta, dphi

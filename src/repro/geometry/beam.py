"""Incident beam description.

The depth axis of the reconstruction is the incident-beam path inside the
sample: depth ``d`` corresponds to the lab point ``origin + d * direction``.
For the canonical 34-ID-style configuration used throughout this library the
beam travels along +z from the lab origin, so depth is simply the z
coordinate of the emitting point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ValidationError, ensure_positive

__all__ = ["Beam"]


@dataclass(frozen=True)
class Beam:
    """Polychromatic incident micro-beam.

    Parameters
    ----------
    direction:
        Unit propagation direction in the lab frame.  Default ``(0, 0, 1)``.
    origin:
        Point on the beam from which depth is measured (typically where the
        beam enters the sample).  Default lab origin.
    energy_min_kev, energy_max_kev:
        Energy band of the polychromatic beam; only used by the Laue forward
        model, not by the reconstruction itself.
    """

    direction: tuple = (0.0, 0.0, 1.0)
    origin: tuple = (0.0, 0.0, 0.0)
    energy_min_kev: float = 7.0
    energy_max_kev: float = 30.0

    _dir_arr: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        d = np.asarray(self.direction, dtype=np.float64)
        if d.shape != (3,):
            raise ValidationError(f"beam direction must be a 3-vector, got shape {d.shape}")
        n = np.linalg.norm(d)
        if n == 0:
            raise ValidationError("beam direction must be non-zero")
        object.__setattr__(self, "_dir_arr", d / n)
        o = np.asarray(self.origin, dtype=np.float64)
        if o.shape != (3,):
            raise ValidationError(f"beam origin must be a 3-vector, got shape {o.shape}")
        ensure_positive(self.energy_min_kev, "energy_min_kev")
        ensure_positive(self.energy_max_kev, "energy_max_kev")
        if self.energy_max_kev <= self.energy_min_kev:
            raise ValidationError("energy_max_kev must exceed energy_min_kev")

    @property
    def unit_direction(self) -> np.ndarray:
        """Unit propagation direction as a float64 array."""
        return self._dir_arr.copy()

    @property
    def origin_array(self) -> np.ndarray:
        """Beam origin as a float64 array."""
        return np.asarray(self.origin, dtype=np.float64)

    def point_at_depth(self, depth) -> np.ndarray:
        """Lab coordinates of the beam point(s) at the given depth(s).

        Parameters
        ----------
        depth:
            Scalar or array of depths (same length unit as the geometry,
            micrometres by convention).

        Returns
        -------
        numpy.ndarray
            Shape ``(3,)`` for scalar input, ``(n, 3)`` for array input.
        """
        depth = np.asarray(depth, dtype=np.float64)
        pts = self.origin_array + np.multiply.outer(depth, self._dir_arr)
        return pts

    def depth_of_point(self, point) -> np.ndarray:
        """Signed depth of the orthogonal projection of *point* onto the beam."""
        point = np.asarray(point, dtype=np.float64)
        return (point - self.origin_array) @ self._dir_arr

    def is_canonical(self, atol: float = 1e-12) -> bool:
        """True if the beam is the canonical +z beam through the origin.

        The fast vectorised kernels assume this configuration (as does the
        original 34-ID code); the general-geometry path handles the rest.
        """
        return bool(
            np.allclose(self._dir_arr, (0.0, 0.0, 1.0), atol=atol)
            and np.allclose(self.origin_array, (0.0, 0.0, 0.0), atol=atol)
        )

"""Command-line entry points.

Ten small tools mirror the original workflow:

``repro-generate``
    Produce a synthetic wire-scan data set (h5lite file) with known ground
    truth — the stand-in for acquiring data at the beamline.
``repro-reconstruct``
    Run the depth reconstruction on a wire-scan file and write the
    depth-resolved output (the original program's job).  ``--streaming``
    selects the out-of-core mode that never loads the full cube;
    ``--provenance`` writes the run's JSON provenance record.
``repro-batch``
    Schedule many wire-scan files (or globs/directories) across a worker
    pool and print the aggregated batch report.
``repro-backends``
    Introspect the pluggable backend registry: names, capability flags and
    where each backend is defined.
``repro-analyze``
    Apply named analysis ops (``repro.analysis`` pipelines) to saved
    depth-resolved run files and emit the JSON analysis record — for a
    single file, byte-identical to
    ``repro.analysis(...).apply(path).to_json()``.  A glob or directory
    input analyses the whole sample (per-item error table on stderr and a
    nonzero exit when any item fails); ``--graph`` switches the specs to
    DAG node objects, unlocking batch-scope reduce ops such as
    ``scaling_fit`` and ``integrated_estimate``.
``repro-cache``
    Administer the content-addressed result cache: ``stats``, ``prune``
    (``--max-bytes`` / ``--older-than``), ``clear`` and ``verify`` (which
    deletes — never serves — unverifiable entries).
``repro-benchmark``
    Run the paper's figure sweeps from the command line.
``repro-bench``
    Run the host-parallelism scaling suite (worker-count curve, shm vs
    pickle dispatch, pool reuse vs cold start) and write the
    ``BENCH_<issue>.json`` perf-trajectory artifact.
``repro-serve``
    Run the reconstruction service: an asyncio HTTP daemon with a bounded
    fair priority queue, cache-first admission (single-flight collapsed),
    per-job timeouts/retries, graceful SIGTERM drain and a ``/metrics``
    endpoint.  See the README's *Serving* section.
``repro-lint``
    Run the project-invariant static analysis (registry contracts, async
    purity, resource lifecycles, kernel determinism, type discipline, the
    public-API snapshot).  Lives in :mod:`repro.staticcheck.cli` — a
    development tool, deliberately not imported here so the runtime CLI
    never pays for the linter.

Everything routes through the ``repro.open()`` / ``repro.session()`` front
door, so the CLI exercises exactly the code path library users get.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Optional, Sequence

import numpy as np

from repro.core.config import DifferenceMode, ReconstructionConfig
from repro.core.depth_grid import DepthGrid
from repro.core.registry import available_backends, backends
from repro.core.session import session
from repro.geometry.wire import WireEdge
from repro.utils.logging import configure as configure_logging

__all__ = [
    "main_generate",
    "main_reconstruct",
    "main_batch",
    "main_backends",
    "main_analyze",
    "main_cache",
    "main_benchmark",
    "main_bench",
    "main_serve",
]


def _add_reconstruction_args(parser: argparse.ArgumentParser) -> None:
    """Reconstruction-configuration flags shared by the single-file and batch tools."""
    parser.add_argument("--depth-start", type=float, default=0.0)
    parser.add_argument("--depth-stop", type=float, default=100.0)
    parser.add_argument("--depth-bins", type=int, default=50)
    parser.add_argument("--backend", default="vectorized", choices=available_backends())
    parser.add_argument("--layout", default="flat1d", choices=["flat1d", "pointer3d"])
    parser.add_argument("--rows-per-chunk", type=int, default=None)
    parser.add_argument("--edge", default="leading", choices=["leading", "trailing"])
    parser.add_argument("--difference-mode", default="signed", choices=["signed", "rectified"])
    parser.add_argument("--cutoff", type=float, default=0.0)
    parser.add_argument("--streaming", action="store_true",
                        help="stream row chunks from disk instead of loading the cube")
    # two flags, not one optional-argument flag: `--cache ROOT` with nargs="?"
    # would greedily swallow a following positional input file as the root
    parser.add_argument("--cache", action="store_true",
                        help="serve fingerprint-identical requests from the result "
                             "cache (root: $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument("--cache-root", default=None, metavar="ROOT",
                        help="result-cache root directory (implies --cache)")


def _cache_from_args(args: argparse.Namespace):
    """The ``cache=`` session argument the shared CLI flags select."""
    if args.cache_root is not None:
        return args.cache_root
    return bool(args.cache)


def _config_from_args(args: argparse.Namespace) -> ReconstructionConfig:
    """Build a :class:`ReconstructionConfig` from the shared CLI flags."""
    return ReconstructionConfig(
        grid=DepthGrid.from_range(args.depth_start, args.depth_stop, args.depth_bins),
        backend=args.backend,
        layout=args.layout,
        rows_per_chunk=args.rows_per_chunk,
        wire_edge=WireEdge.LEADING if args.edge == "leading" else WireEdge.TRAILING,
        difference_mode=DifferenceMode(args.difference_mode),
        intensity_cutoff=args.cutoff,
        streaming=args.streaming,
    )


# --------------------------------------------------------------------------- #
def main_generate(argv: Optional[Sequence[str]] = None) -> int:
    """Generate a synthetic wire-scan data set."""
    parser = argparse.ArgumentParser(
        prog="repro-generate", description="Generate a synthetic wire-scan data set (h5lite)."
    )
    parser.add_argument("output", help="output .h5lite file path")
    parser.add_argument("--kind", choices=["grains", "benchmark"], default="grains")
    parser.add_argument("--material", default="Cu")
    parser.add_argument("--grains", type=int, default=3)
    parser.add_argument("--rows", type=int, default=32)
    parser.add_argument("--cols", type=int, default=32)
    parser.add_argument("--positions", type=int, default=101)
    parser.add_argument("--size-label", default="2.1G", help="paper size label for --kind benchmark")
    parser.add_argument("--pixel-fraction", type=float, default=1.0)
    parser.add_argument("--noise", action="store_true")
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args(argv)
    configure_logging()

    from repro.io.image_stack import save_wire_scan
    from repro.synthetic.workloads import make_benchmark_workload, make_grain_sample_stack

    if args.kind == "grains":
        stack, _source, sample = make_grain_sample_stack(
            material=args.material,
            n_grains=args.grains,
            n_rows=args.rows,
            n_cols=args.cols,
            n_positions=args.positions,
            seed=args.seed,
            noise=args.noise,
        )
        boundaries = ", ".join(f"{b:.1f}" for b in sample.true_grain_boundaries())
        print(f"generated grain sample stack {stack.shape}; grain boundaries at {boundaries} um")
    else:
        workload = make_benchmark_workload(
            args.size_label, pixel_fraction=args.pixel_fraction, noise=args.noise, seed=args.seed
        )
        stack = workload.stack
        print(workload.describe())

    save_wire_scan(args.output, stack)
    print(f"wrote {args.output} ({stack.nbytes / 1e6:.2f} MB of image data)")
    return 0


# --------------------------------------------------------------------------- #
def main_reconstruct(argv: Optional[Sequence[str]] = None) -> int:
    """Reconstruct a wire-scan file."""
    parser = argparse.ArgumentParser(
        prog="repro-reconstruct", description="Depth-reconstruct a wire-scan h5lite file."
    )
    parser.add_argument("input", help="input wire-scan .h5lite file")
    parser.add_argument("-o", "--output", help="output depth-resolved .h5lite file")
    parser.add_argument("--text", help="optional text output of depth profiles")
    parser.add_argument("--provenance",
                        help="write the run's JSON provenance record to this path")
    _add_reconstruction_args(parser)
    args = parser.parse_args(argv)
    configure_logging()

    config = _config_from_args(args)
    run = session(config=config).run(
        args.input, output_path=args.output, text_path=args.text,
        cache=_cache_from_args(args),
    )
    if run.cache_stats is not None and run.cache_stats.hit:
        print(f"cache hit ({run.cache_stats.key[:12]}…, verified digest "
              f"{run.cache_stats.digest[:12]}…)")
    print(run.report.summary())
    integrated = run.result.integrated_profile()
    peak_bin = int(np.argmax(integrated))
    print(
        f"integrated depth profile peaks at {run.result.grid.index_to_depth(peak_bin):.2f} um "
        f"({integrated[peak_bin]:.3g} intensity)"
    )
    if args.provenance:
        with open(args.provenance, "w", encoding="utf-8") as fh:
            fh.write(run.to_json())
        print(f"wrote provenance record to {args.provenance}")
    return 0


# --------------------------------------------------------------------------- #
def main_batch(argv: Optional[Sequence[str]] = None) -> int:
    """Reconstruct a batch of wire-scan files on a worker pool."""
    parser = argparse.ArgumentParser(
        prog="repro-batch",
        description="Depth-reconstruct many wire-scan h5lite files concurrently.",
    )
    parser.add_argument("inputs", nargs="+",
                        help="input wire-scan .h5lite files, globs or directories")
    parser.add_argument("-d", "--output-dir",
                        help="directory for per-file depth-resolved outputs (<stem>_depth.h5lite)")
    parser.add_argument("-j", "--max-workers", type=int, default=None,
                        help="concurrent reconstructions (default: min(4, n_files))")
    _add_reconstruction_args(parser)
    args = parser.parse_args(argv)
    configure_logging()

    from repro.perf.reporting import format_batch_table

    config = _config_from_args(args)
    batch = session(config=config).run_many(
        list(args.inputs),
        max_workers=args.max_workers,
        output_dir=args.output_dir,
        keep_results=False,
        cache=_cache_from_args(args),
    )
    print(format_batch_table(batch))
    return 0 if batch.n_failed == 0 else 1


# --------------------------------------------------------------------------- #
def main_backends(argv: Optional[Sequence[str]] = None) -> int:
    """Introspect the backend registry."""
    parser = argparse.ArgumentParser(
        prog="repro-backends",
        description="List registered reconstruction backends and their capabilities.",
    )
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the registry as JSON instead of a table")
    args = parser.parse_args(argv)

    from repro.perf.reporting import format_backend_table

    infos = backends()
    if args.as_json:
        print(json.dumps([info.to_dict() for info in infos], indent=2, sort_keys=True))
    else:
        print(format_backend_table(infos))
    return 0


# --------------------------------------------------------------------------- #
def _parse_op_spec(token: str):
    """Parse a CLI op token: ``name`` or ``name:{"param": value}``."""
    if ":" not in token:
        return token
    name, _, raw = token.partition(":")
    try:
        params = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"invalid JSON parameters for op {name!r}: {exc}") from None
    if not isinstance(params, dict):
        raise SystemExit(f"op {name!r} parameters must be a JSON object, got {raw!r}")
    return (name, params)


def _parse_node_spec(token: str):
    """Parse a CLI graph-node token: a JSON node object or an op-name sugar."""
    if token.lstrip().startswith("{"):
        try:
            spec = json.loads(token)
        except json.JSONDecodeError as exc:
            raise SystemExit(f"invalid JSON node spec {token!r}: {exc}") from None
        if not isinstance(spec, dict):
            raise SystemExit(f"graph node spec must be a JSON object, got {token!r}")
        return spec
    return _parse_op_spec(token)


def _analyze_inputs(input_token: str):
    """``(paths, is_batch)`` for the analyze CLI's input token.

    A directory or a glob is a batch (every matching ``.h5lite``); a plain
    path is the historical single-file mode.
    """
    import glob as globmod

    if os.path.isdir(input_token):
        paths = sorted(
            os.path.join(input_token, name)
            for name in os.listdir(input_token)
            if name.endswith(".h5lite")
        )
        if not paths:
            raise SystemExit(f"no .h5lite files in directory {input_token!r}")
        return paths, True
    if globmod.has_magic(input_token):
        paths = sorted(globmod.glob(input_token))
        if not paths:
            raise SystemExit(f"glob {input_token!r} matched no files")
        return paths, True
    return [input_token], False


def main_analyze(argv: Optional[Sequence[str]] = None) -> int:
    """Apply analysis ops (or a DAG graph) to saved depth-resolved run files."""
    parser = argparse.ArgumentParser(
        prog="repro-analyze",
        description="Run named analysis ops on saved depth-resolved .h5lite files "
                    "(a file, a glob or a directory) and emit the JSON analysis "
                    "record.  With --graph, specs are DAG node objects and batch "
                    "inputs may include reduce ops over the whole sample.",
    )
    parser.add_argument("input", nargs="?",
                        help="a depth-resolved .h5lite file (as written by RunResult.save "
                             "or repro-reconstruct -o), a glob, or a directory of runs")
    parser.add_argument("ops", nargs="*",
                        help="op names, optionally parameterized as "
                             "name:'{\"param\": value}' (see --list); with --graph, "
                             "JSON node specs like "
                             "'{\"name\": \"fit\", \"op\": \"scaling_fit\", \"inputs\": [...]}'")
    parser.add_argument("--graph", action="store_true", dest="as_graph",
                        help="treat the specs as DAG node specs (named nodes, "
                             "declared inputs, reduce ops at batch scope)")
    parser.add_argument("--list", action="store_true", dest="list_ops",
                        help="list the registered analysis ops and exit")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="with --list, emit the op registry as JSON")
    parser.add_argument("-o", "--output",
                        help="write the JSON analysis record here instead of stdout")
    # intermixed: `repro-analyze runs/ tot --graph` parses like `--graph runs/ tot`
    args = parser.parse_intermixed_args(argv)
    configure_logging()

    from repro.core.ops import analysis, ops as list_ops

    if args.list_ops:
        infos = list_ops()
        if args.as_json:
            print(json.dumps([info.to_dict() for info in infos], indent=2, sort_keys=True))
        else:
            from repro.perf.reporting import format_ops_table

            print(format_ops_table(infos))
        return 0
    if not args.input:
        parser.error("an input file is required (or --list)")
    if not args.ops:
        parser.error("at least one op name is required (see --list)")

    if args.as_graph:
        from repro.analysisgraph import graph as build_graph
        from repro.utils.validation import ValidationError

        try:
            analyzer = build_graph(*[_parse_node_spec(token) for token in args.ops])
        except ValidationError as exc:
            raise SystemExit(str(exc)) from None
    else:
        analyzer = analysis(*[_parse_op_spec(token) for token in args.ops])

    paths, is_batch = _analyze_inputs(args.input)
    if is_batch:
        from repro.core.pipeline import BatchItem
        from repro.core.session import BatchRunResult

        # each item analyses (and error-isolates) from its saved file
        batch = BatchRunResult(
            items=[BatchItem(input_path=path, ok=True, output_path=path) for path in paths],
            wall_time=0.0,
            max_workers=0,
            source={"kind": "analyze-batch", "n_items": len(paths)},
        )
        outcome = analyzer.apply(batch)
        failures = outcome.failed
    else:
        outcome = analyzer.apply(paths[0])
        failures = []

    document = outcome.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(document)
        print(f"wrote analysis record ({len(paths)} input(s)) to {args.output}")
    else:
        print(document)
    if failures:
        from repro.perf.reporting import format_analysis_failures

        print(format_analysis_failures(failures), file=sys.stderr)
        print(f"repro-analyze: {len(failures)} of {len(paths)} item(s) failed",
              file=sys.stderr)
        return 1
    return 0


# --------------------------------------------------------------------------- #
def _format_cache_stats(stats: dict) -> str:
    """Human rendering of :meth:`~repro.core.cache.ResultCache.stats`."""
    lines = [
        f"cache root: {stats['root']}",
        f"  run entries:      {stats['n_runs']}",
        f"  analysis memos:   {stats['n_analyses']}",
        f"  total size:       {stats['total_bytes'] / 1e6:.2f} MB",
    ]
    if stats["oldest_unix"] is not None:
        import datetime

        def _when(ts: float) -> str:
            return datetime.datetime.fromtimestamp(ts).isoformat(sep=" ", timespec="seconds")

        lines.append(f"  oldest entry:     {_when(stats['oldest_unix'])}")
        lines.append(f"  newest entry:     {_when(stats['newest_unix'])}")
    return "\n".join(lines)


def main_cache(argv: Optional[Sequence[str]] = None) -> int:
    """Administer the content-addressed result cache."""
    parser = argparse.ArgumentParser(
        prog="repro-cache",
        description="Inspect and maintain the content-addressed result cache "
                    "(default root: $REPRO_CACHE_DIR or ~/.cache/repro).",
    )
    # shared flags parse on either side of the subcommand (`repro-cache
    # stats --json` and `repro-cache --json stats`): they are declared on the
    # main parser *and* on a parent for the subparsers, with SUPPRESS
    # defaults so a subparser's default can never clobber a value that was
    # given before the subcommand
    def _add_common(target: argparse.ArgumentParser) -> None:
        target.add_argument("--root", default=argparse.SUPPRESS,
                            help="cache root directory (overrides REPRO_CACHE_DIR)")
        target.add_argument("--json", action="store_true", dest="as_json",
                            default=argparse.SUPPRESS,
                            help="emit the command's outcome as JSON")

    _add_common(parser)
    common = argparse.ArgumentParser(add_help=False)
    _add_common(common)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("stats", parents=[common],
                   help="show entry counts, total size and age range")
    prune = sub.add_parser("prune", parents=[common],
                           help="delete old entries (oldest first)")
    prune.add_argument("--max-bytes", type=int, default=None,
                       help="evict oldest entries until the total fits this many bytes")
    prune.add_argument("--older-than", type=float, default=None, metavar="DAYS",
                       help="delete entries last written more than DAYS days ago")
    sub.add_parser("clear", parents=[common], help="delete every cache entry")
    sub.add_parser("verify", parents=[common],
                   help="load and digest-check every entry; delete the unverifiable")

    args = parser.parse_args(argv)
    args.root = getattr(args, "root", None)
    args.as_json = getattr(args, "as_json", False)
    configure_logging()

    from repro.core.cache import ResultCache

    cache = ResultCache(args.root)
    if args.command == "stats":
        stats = cache.stats()
        print(json.dumps(stats, indent=2, sort_keys=True) if args.as_json
              else _format_cache_stats(stats))
        return 0
    if args.command == "prune":
        if args.max_bytes is None and args.older_than is None:
            prune.error("prune requires --max-bytes and/or --older-than")
        outcome = cache.prune(
            max_bytes=args.max_bytes,
            older_than_s=None if args.older_than is None else args.older_than * 86400.0,
        )
        print(json.dumps(outcome, indent=2, sort_keys=True) if args.as_json
              else f"pruned {outcome['removed']} entr(ies), "
                   f"freed {outcome['freed_bytes'] / 1e6:.2f} MB")
        return 0
    if args.command == "clear":
        outcome = cache.clear()
        print(json.dumps(outcome, indent=2, sort_keys=True) if args.as_json
              else f"cleared {outcome['removed']} entr(ies), "
                   f"freed {outcome['freed_bytes'] / 1e6:.2f} MB")
        return 0
    # verify
    outcome = cache.verify()
    if args.as_json:
        print(json.dumps(outcome, indent=2, sort_keys=True))
    else:
        print(f"verified {outcome['checked']} entr(ies), "
              f"repaired (deleted) {outcome['n_repaired']}")
        for path in outcome["repaired"]:
            print(f"  repaired {path}")
    return 0 if outcome["n_repaired"] == 0 else 1


# --------------------------------------------------------------------------- #
def main_benchmark(argv: Optional[Sequence[str]] = None) -> int:
    """Run the paper's figure sweeps."""
    parser = argparse.ArgumentParser(
        prog="repro-benchmark", description="Run the paper-figure benchmark sweeps."
    )
    parser.add_argument(
        "figure", choices=["fig4", "fig8", "fig9", "headline"], help="which paper artifact to regenerate"
    )
    parser.add_argument("--scale", type=float, default=None, help="byte-scale factor relative to the paper sizes")
    parser.add_argument("--repeats", type=int, default=1)
    args = parser.parse_args(argv)
    configure_logging()

    from repro.perf.reporting import format_figure_report
    from repro.perf.metrics import summarize_ratio_range
    from repro.perf.sweep import run_backend_sweep
    from repro.synthetic.workloads import DEFAULT_BENCH_SCALE, make_benchmark_workload

    scale = args.scale if args.scale is not None else DEFAULT_BENCH_SCALE

    if args.figure == "fig4":
        workload = make_benchmark_workload("5.2G", scale=scale)
        records = []
        for fraction in (0.25, 0.5, 1.0):
            w = make_benchmark_workload("5.2G", pixel_fraction=fraction, scale=scale)
            w.label = f"{int(fraction * 100)}%"
            for layout in ("pointer3d", "flat1d"):
                recs = run_backend_sweep([w], ["gpusim"], config_overrides={"gpusim": {"layout": layout}},
                                         repeats=args.repeats)
                for r in recs:
                    r.backend = layout
                records.extend(recs)
        print(format_figure_report("Fig. 4: 1-D vs 3-D array layout (GPU-sim)", records,
                                   x_key="workload", variant_key="backend"))
        return 0

    if args.figure in ("fig8", "headline"):
        workloads = [make_benchmark_workload(label, scale=scale) for label in ("2.1G", "2.7G", "3.6G", "5.2G")]
        records = run_backend_sweep(workloads, ["cpu_reference", "gpusim"], repeats=args.repeats)
        print(format_figure_report("Fig. 8: CPU vs GPU across data-set sizes", records))
        if args.figure == "headline":
            by_workload = {}
            for r in records:
                by_workload.setdefault(r.workload, {})[r.backend] = r.wall_time
            pairs = [(v["gpusim"], v["cpu_reference"]) for v in by_workload.values()]
            summary = summarize_ratio_range(pairs)
            print(
                f"GPU/CPU time ratio: min {summary['min']:.2f}, max {summary['max']:.2f} "
                f"(paper reports 0.25-0.30)"
            )
        return 0

    # fig9
    workloads = []
    for fraction in (0.25, 0.5, 1.0):
        w = make_benchmark_workload("5.2G", pixel_fraction=fraction, scale=scale)
        w.label = f"{int(fraction * 100)}%"
        workloads.append(w)
    records = run_backend_sweep(workloads, ["cpu_reference", "gpusim"], repeats=args.repeats)
    print(format_figure_report("Fig. 9: CPU vs GPU across pixel percentages", records))
    return 0


# --------------------------------------------------------------------------- #
def main_bench(argv: Optional[Sequence[str]] = None) -> int:
    """Run the parallel-scaling suites and emit the BENCH_<issue>.json artifacts."""
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Measure host-parallel scaling and write the BENCH_*.json "
                    "artifacts.  --suite dispatch covers worker counts, shm vs "
                    "pickle dispatch and pool reuse (BENCH_4); --suite executors "
                    "covers the fused kernel and the serial/threads/processes "
                    "matrix with the 2x-at-4-workers gate (BENCH_6).",
    )
    parser.add_argument("--suite", choices=("dispatch", "executors", "all"),
                        default="executors",
                        help="which measurement suite to run (default: executors)")
    parser.add_argument("--size-label", default=None,
                        help="workload size label, e.g. '24MB' or '2.1G' "
                             "(default: the medium synthetic workload)")
    parser.add_argument("--workers", default="1,2,4",
                        help="comma-separated worker counts for the scaling curve")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats per point")
    parser.add_argument("--files", type=int, default=3,
                        help="files in the pool-reuse measurement (dispatch suite)")
    parser.add_argument("--pixel-fraction", type=float, default=None,
                        help="active-pixel fraction of the workload (default 0.25)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("-o", "--output", default=None,
                        help="artifact path (default: BENCH_<issue>.json in the "
                             "current directory; ignored with --suite all)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when a perf check fails")
    args = parser.parse_args(argv)
    configure_logging()

    from repro.perf.parallel import (
        DEFAULT_PIXEL_FRACTION,
        DEFAULT_SIZE_LABEL,
        format_executor_report,
        format_parallel_report,
        run_executor_scaling,
        run_parallel_scaling,
        write_bench_record,
    )

    try:
        workers = tuple(int(w) for w in str(args.workers).split(",") if w.strip())
    except ValueError:
        parser.error(f"invalid --workers {args.workers!r}; expected e.g. '1,2,4'")
    if not workers:
        parser.error("--workers must name at least one worker count")
    if args.output is not None and args.suite == "all":
        parser.error("--output cannot name a single file with --suite all")

    size_label = args.size_label or DEFAULT_SIZE_LABEL
    pixel_fraction = (
        DEFAULT_PIXEL_FRACTION if args.pixel_fraction is None else args.pixel_fraction
    )

    records = []
    if args.suite in ("dispatch", "all"):
        record = run_parallel_scaling(
            size_label=size_label,
            workers=workers,
            repeats=args.repeats,
            n_files=args.files,
            pixel_fraction=pixel_fraction,
            seed=args.seed,
        )
        path = write_bench_record(record, args.output)
        print(format_parallel_report(record))
        print(f"wrote {path}")
        records.append(record)
    if args.suite in ("executors", "all"):
        record = run_executor_scaling(
            size_label=size_label,
            workers=workers,
            repeats=args.repeats,
            pixel_fraction=pixel_fraction,
            seed=args.seed,
        )
        path = write_bench_record(record, args.output)
        print(format_executor_report(record))
        print(f"wrote {path}")
        records.append(record)

    if args.strict:
        for record in records:
            checks = dict(record["checks"])
            # the 2x gate is a measurement, not a defect: an honest serial
            # fallback (reason recorded) is a passing outcome for --strict
            if record["benchmark"] == "executor_scaling" and not checks["two_x_at_4_workers"]:
                if checks["fallback_reason_recorded"]:
                    checks.pop("two_x_at_4_workers")
            if not all(checks.values()):
                return 1
    return 0


# --------------------------------------------------------------------------- #
def main_serve(argv: Optional[Sequence[str]] = None) -> int:
    """Run the reconstruction-serving daemon."""
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve reconstructions over HTTP: an asyncio job daemon "
                    "with a bounded fair priority queue, cache-first admission "
                    "(identical in-flight requests collapse onto one "
                    "computation), per-job timeouts, graceful SIGTERM drain "
                    "and a JSON /metrics endpoint.",
    )
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: loopback only)")
    parser.add_argument("--port", type=int, default=8750,
                        help="listening port (0 picks a free port)")
    parser.add_argument("-j", "--workers", type=int, default=None,
                        help="concurrent computations (default: CPU-derived, >= 2)")
    parser.add_argument("--queue-depth", type=int, default=64,
                        help="admission-queue capacity; beyond it submissions "
                             "get 429 + Retry-After")
    parser.add_argument("--job-timeout", type=float, default=300.0, metavar="SECONDS",
                        help="default per-job wall-clock budget")
    parser.add_argument("--retries", type=int, default=1,
                        help="re-runs granted when a worker dies mid-job")
    parser.add_argument("--drain-timeout", type=float, default=30.0, metavar="SECONDS",
                        help="budget for finishing work after SIGTERM")
    parser.add_argument("--retry-after", type=float, default=1.0, metavar="SECONDS",
                        help="Retry-After floor on queue-full rejections")
    parser.add_argument("--cache-root", default=None, metavar="ROOT",
                        help="result-cache root (default: $REPRO_CACHE_DIR or "
                             "~/.cache/repro)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable cache-first admission (every job computes)")
    args = parser.parse_args(argv)
    configure_logging()

    from repro.serve.app import ServeSettings, default_workers, run_server
    from repro.utils.validation import ValidationError

    cache: object = True
    if args.no_cache:
        cache = False
    elif args.cache_root is not None:
        cache = args.cache_root
    try:
        settings = ServeSettings(
            host=args.host,
            port=args.port,
            workers=args.workers if args.workers is not None else default_workers(),
            queue_depth=args.queue_depth,
            job_timeout_s=args.job_timeout,
            max_retries=args.retries,
            drain_timeout_s=args.drain_timeout,
            retry_after_s=args.retry_after,
            cache=cache,
        )
    except ValidationError as exc:
        parser.error(str(exc))
    return run_server(settings)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main_reconstruct())

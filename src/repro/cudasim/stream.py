"""Streams and events on the simulated clock.

Only the pieces needed for timing experiments are modelled: events record a
point on the device's simulated clock, and ``Event.elapsed_time`` mirrors
``cudaEventElapsedTime`` (returning milliseconds).  Streams are sequential —
the paper's implementation uses the default stream and does not overlap
transfers with compute, which is exactly the behaviour reproduced here (and
one of the extensions the related-work section discusses).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.cudasim.device import Device

__all__ = ["Event", "Stream"]


@dataclass
class Event:
    """A recorded point on the simulated device timeline."""

    name: str = "event"
    timestamp: Optional[float] = None

    def record(self, device: Device) -> "Event":
        """Record the event at the device's current simulated time."""
        self.timestamp = device.simulated_time
        return self

    def elapsed_time(self, later: "Event") -> float:
        """Milliseconds between this event and *later* (``cudaEventElapsedTime``)."""
        if self.timestamp is None or later.timestamp is None:
            raise RuntimeError("both events must be recorded before measuring elapsed time")
        return (later.timestamp - self.timestamp) * 1e3


@dataclass
class Stream:
    """A sequential work queue on the simulated device."""

    device: Device
    name: str = "default"
    _events: List[Event] = field(default_factory=list)

    def record_event(self, name: str = "event") -> Event:
        """Create and record an event at the stream's current position."""
        event = Event(name=name).record(self.device)
        self._events.append(event)
        return event

    def synchronize(self) -> float:
        """Return the simulated time at which all queued work has finished.

        Work is executed eagerly in this simulation, so synchronisation simply
        reports the current simulated clock.
        """
        return self.device.simulated_time

    @property
    def events(self) -> List[Event]:
        """Events recorded on this stream, in order."""
        return list(self._events)

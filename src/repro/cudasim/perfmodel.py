"""Analytic performance models for the simulated device and the host CPU.

The models are intentionally simple — a roofline-style decomposition into
data movement and arithmetic — because their purpose is to reproduce the
*shape* of the paper's timing figures (which configuration wins, by roughly
what factor, and how the gap evolves with data size), not to predict absolute
hardware timings.

Device kernel time
    ``max(compute_time, memory_time)`` where compute time is
    ``flops / peak_flops`` and memory time is ``bytes_touched /
    memory_bandwidth`` — the kernel is modelled as perfectly overlapping
    arithmetic with device-memory traffic.

Transfer time
    ``latency + bytes / pcie_bandwidth`` per ``cudaMemcpy``; the pointer-table
    layout of Fig. 4 pays this once per image row (one pointer array per 2-D
    slab) while the flat 1-D layout pays it once per chunk.

Host time
    ``elements * time_per_element`` with a per-element cost calibrated from
    the scalar reference implementation; an optional multi-core factor allows
    modelling a parallel CPU baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils.validation import ensure_positive

__all__ = ["PerformanceModel", "HostPerformanceModel"]


@dataclass(frozen=True)
class PerformanceModel:
    """Cost model of the simulated GPU.

    Parameters
    ----------
    peak_flops:
        Peak double-precision throughput in FLOP/s.
    memory_bandwidth:
        Device (global) memory bandwidth in bytes/s.
    pcie_bandwidth:
        Effective host<->device bandwidth in bytes/s.
    pcie_latency:
        Fixed per-transfer latency in seconds (driver + DMA setup).
    kernel_launch_overhead:
        Fixed per-launch overhead in seconds.
    """

    peak_flops: float = 515e9
    memory_bandwidth: float = 150e9
    pcie_bandwidth: float = 6e9
    pcie_latency: float = 20e-6
    kernel_launch_overhead: float = 8e-6

    def __post_init__(self):
        ensure_positive(self.peak_flops, "peak_flops")
        ensure_positive(self.memory_bandwidth, "memory_bandwidth")
        ensure_positive(self.pcie_bandwidth, "pcie_bandwidth")
        ensure_positive(self.pcie_latency + 1e-300, "pcie_latency")
        ensure_positive(self.kernel_launch_overhead + 1e-300, "kernel_launch_overhead")

    # ------------------------------------------------------------------ #
    def transfer_time(self, n_bytes: float, n_transfers: int = 1) -> float:
        """Modelled time for moving *n_bytes* split over *n_transfers* memcpys."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        if n_transfers < 1:
            raise ValueError("n_transfers must be >= 1")
        return n_transfers * self.pcie_latency + n_bytes / self.pcie_bandwidth

    def kernel_time(self, n_threads: int, flops_per_thread: float, bytes_per_thread: float) -> float:
        """Modelled execution time of one kernel launch."""
        if n_threads < 0:
            raise ValueError("n_threads must be non-negative")
        compute = n_threads * flops_per_thread / self.peak_flops
        memory = n_threads * bytes_per_thread / self.memory_bandwidth
        return self.kernel_launch_overhead + max(compute, memory)

    def total_time(
        self,
        h2d_bytes: float,
        d2h_bytes: float,
        n_threads: int,
        flops_per_thread: float,
        bytes_per_thread: float,
        n_h2d_transfers: int = 1,
        n_d2h_transfers: int = 1,
        n_launches: int = 1,
    ) -> float:
        """End-to-end modelled time: transfers in + kernels + transfers out."""
        if n_launches < 1:
            raise ValueError("n_launches must be >= 1")
        per_launch_threads = max(1, n_threads // n_launches)
        kernel = sum(
            self.kernel_time(per_launch_threads, flops_per_thread, bytes_per_thread)
            for _ in range(n_launches)
        )
        return (
            self.transfer_time(h2d_bytes, n_h2d_transfers)
            + kernel
            + self.transfer_time(d2h_bytes, n_d2h_transfers)
        )


@dataclass(frozen=True)
class HostPerformanceModel:
    """Cost model of the host-CPU reference implementation.

    Parameters
    ----------
    time_per_element:
        Seconds of CPU time spent reconstructing one (pixel, wire-step)
        element in the scalar reference code.
    cores:
        Number of cores used (the original program is single-threaded).
    parallel_efficiency:
        Fraction of ideal speed-up achieved when ``cores > 1``.
    """

    time_per_element: float = 8.0e-7
    cores: int = 1
    parallel_efficiency: float = 0.85

    def __post_init__(self):
        ensure_positive(self.time_per_element, "time_per_element")
        if self.cores < 1:
            raise ValueError("cores must be >= 1")
        if not (0.0 < self.parallel_efficiency <= 1.0):
            raise ValueError("parallel_efficiency must lie in (0, 1]")

    def total_time(self, n_elements: int) -> float:
        """Modelled host time to process *n_elements* (pixel, step) pairs."""
        if n_elements < 0:
            raise ValueError("n_elements must be non-negative")
        speedup = 1.0 if self.cores == 1 else 1.0 + (self.cores - 1) * self.parallel_efficiency
        return n_elements * self.time_per_element / speedup

"""A software model of the CUDA execution environment.

The paper runs the depth-reconstruction kernel on an NVIDIA Tesla M2070 with
CUDA C.  No GPU is available in this reproduction, so this subpackage models
the pieces of the CUDA programming model that shape the paper's design:

* a **device** with fixed memory capacity (6 GB on the M2070) and launch
  limits (threads per block, block/grid dimensions) — these force the
  row-chunked streaming of Fig. 2 and constrain launch configurations;
* explicit **device memory allocation** and ``cudaMemcpy``-style host↔device
  transfers whose cost is modelled with a PCIe bandwidth/latency model — the
  transfer-vs-compute trade-off behind the Fig. 4 layout study;
* **kernel launches** over a ``grid × block`` thread lattice with the same
  ``(threadIdx + blockIdx * blockDim)`` index arithmetic as the CUDA kernel,
  executable either one simulated thread at a time (faithful, slow) or in a
  vectorised data-parallel form (fast);
* **atomicAdd** accumulation including the double-precision
  compare-and-swap emulation the paper mentions;
* an analytic **performance model** used to extrapolate laptop-scale runs to
  the paper's hardware scale.

The simulated device keeps a *simulated clock*: every transfer and kernel
launch advances it by the modelled cost, so experiments can report both the
measured wall-clock of this Python process and the modelled device time.
"""

from repro.cudasim.errors import (
    CudaSimError,
    DeviceMemoryError,
    LaunchConfigError,
    TransferError,
)
from repro.cudasim.device import Device, DeviceProperties, TESLA_M2070, GENERIC_LAPTOP_GPU
from repro.cudasim.memory import DeviceBuffer, MemoryPool
from repro.cudasim.transfer import MemcpyKind
from repro.cudasim.kernel import Kernel, LaunchConfig
from repro.cudasim.atomic import atomic_add, atomic_add_double_cas
from repro.cudasim.perfmodel import PerformanceModel, HostPerformanceModel
from repro.cudasim.stream import Event, Stream
from repro.cudasim.profiler import Profiler, ProfileRecord

__all__ = [
    "CudaSimError",
    "DeviceMemoryError",
    "LaunchConfigError",
    "TransferError",
    "Device",
    "DeviceProperties",
    "TESLA_M2070",
    "GENERIC_LAPTOP_GPU",
    "DeviceBuffer",
    "MemoryPool",
    "MemcpyKind",
    "Kernel",
    "LaunchConfig",
    "atomic_add",
    "atomic_add_double_cas",
    "PerformanceModel",
    "HostPerformanceModel",
    "Event",
    "Stream",
    "Profiler",
    "ProfileRecord",
]

"""Host <-> device transfers (the ``cudaMemcpy`` analogue).

Every copy validates shapes/dtypes, moves the data, and advances the device's
simulated clock by the PCIe-model cost.  The per-transfer latency term is why
the pointer-based 3-D layout of Fig. 4 — which requires one copy per 2-D
slab plus the pointer tables — is slower end-to-end than a single flat copy.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.cudasim.device import Device
from repro.cudasim.errors import TransferError
from repro.cudasim.memory import DeviceBuffer

__all__ = ["MemcpyKind", "memcpy_host_to_device", "memcpy_device_to_host", "memcpy"]


class MemcpyKind(enum.Enum):
    """Direction of a memcpy, mirroring ``cudaMemcpyKind``."""

    HOST_TO_DEVICE = "cudaMemcpyHostToDevice"
    DEVICE_TO_HOST = "cudaMemcpyDeviceToHost"
    DEVICE_TO_DEVICE = "cudaMemcpyDeviceToDevice"


def _check_compatible(host_array: np.ndarray, buffer: DeviceBuffer) -> None:
    if host_array.dtype != buffer.dtype:
        raise TransferError(
            f"dtype mismatch: host {host_array.dtype} vs device {buffer.dtype}"
        )
    if host_array.size != int(np.prod(buffer.shape, dtype=np.int64)):
        raise TransferError(
            f"size mismatch: host has {host_array.size} elements, "
            f"device buffer has shape {buffer.shape}"
        )


def memcpy_host_to_device(
    device: Device,
    dst: DeviceBuffer,
    src: np.ndarray,
    label: str = "H2D",
) -> float:
    """Copy a host array into a device buffer; returns modelled seconds."""
    src = np.ascontiguousarray(src)
    _check_compatible(src, dst)
    dst.device_array()[...] = src.reshape(dst.shape)
    seconds = device.perf.transfer_time(src.nbytes)
    device.advance_clock(seconds, label=label, kind="memcpy_h2d", detail={"bytes": int(src.nbytes)})
    return seconds


def memcpy_device_to_host(
    device: Device,
    dst: np.ndarray,
    src: DeviceBuffer,
    label: str = "D2H",
) -> float:
    """Copy a device buffer into a (preallocated) host array; returns modelled seconds."""
    if not isinstance(dst, np.ndarray):
        raise TransferError("destination of a device-to-host copy must be a numpy array")
    if not dst.flags["C_CONTIGUOUS"]:
        raise TransferError("destination host array must be C-contiguous")
    _check_compatible(dst, src)
    dst.reshape(src.shape)[...] = src.device_array()
    seconds = device.perf.transfer_time(dst.nbytes)
    device.advance_clock(seconds, label=label, kind="memcpy_d2h", detail={"bytes": int(dst.nbytes)})
    return seconds


def memcpy_device_to_device(
    device: Device,
    dst: DeviceBuffer,
    src: DeviceBuffer,
    label: str = "D2D",
) -> float:
    """Device-to-device copy (costed against device memory bandwidth)."""
    if dst.dtype != src.dtype or np.prod(dst.shape) != np.prod(src.shape):
        raise TransferError("device-to-device copy requires matching size and dtype")
    dst.device_array()[...] = src.device_array().reshape(dst.shape)
    seconds = 2.0 * src.nbytes / device.perf.memory_bandwidth if hasattr(device.perf, "memory_bandwidth") else 0.0
    device.advance_clock(seconds, label=label, kind="memcpy_d2d", detail={"bytes": int(src.nbytes)})
    return seconds


def memcpy(device: Device, dst, src, kind: MemcpyKind, label: str | None = None) -> float:
    """Dispatching memcpy in the style of the CUDA runtime API."""
    if kind is MemcpyKind.HOST_TO_DEVICE:
        return memcpy_host_to_device(device, dst, src, label or "H2D")
    if kind is MemcpyKind.DEVICE_TO_HOST:
        return memcpy_device_to_host(device, dst, src, label or "D2H")
    if kind is MemcpyKind.DEVICE_TO_DEVICE:
        return memcpy_device_to_device(device, dst, src, label or "D2D")
    raise TransferError(f"unsupported memcpy kind: {kind!r}")

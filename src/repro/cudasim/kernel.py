"""Kernel launches on the simulated device.

A :class:`Kernel` bundles two implementations of the same thread body:

``per_thread(tx, ty, tz, *args)``
    Executed once per simulated thread, exactly like the CUDA ``__global__``
    function with ``(idx, idy, idz)`` already resolved.  Faithful but slow —
    used for small problems and for cross-checking the vectorised form.

``vectorized(ix, iy, iz, *args)``
    Receives flat int arrays holding the coordinates of *all* threads in the
    launch and must perform the same work data-parallel.  This is how the
    simulation achieves useful speed while preserving the thread-lattice
    semantics (each element of the index arrays is one CUDA thread).

``LaunchConfig`` performs the ``gridDim``/``blockDim`` arithmetic, including
the ceiling-division used to cover a data volume, and the launch validates
the configuration against the device limits as the CUDA driver would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Tuple

import numpy as np

from repro.cudasim.device import Device
from repro.cudasim.errors import LaunchConfigError

__all__ = ["LaunchConfig", "Kernel", "launch"]


@dataclass(frozen=True)
class LaunchConfig:
    """A ``<<<grid, block>>>`` launch configuration."""

    grid_dim: Tuple[int, int, int]
    block_dim: Tuple[int, int, int]

    def __post_init__(self):
        if len(self.grid_dim) != 3 or len(self.block_dim) != 3:
            raise LaunchConfigError("grid_dim and block_dim must be 3-tuples")
        if any(int(v) < 1 for v in self.grid_dim) or any(int(v) < 1 for v in self.block_dim):
            raise LaunchConfigError("grid and block dimensions must be >= 1")

    # ------------------------------------------------------------------ #
    @classmethod
    def for_volume(
        cls,
        shape_xyz: Tuple[int, int, int],
        block_dim: Tuple[int, int, int] = (8, 8, 8),
    ) -> "LaunchConfig":
        """Cover an ``(nx, ny, nz)`` data volume with ceiling-divided blocks."""
        nx, ny, nz = (int(v) for v in shape_xyz)
        bx, by, bz = (int(v) for v in block_dim)
        if min(nx, ny, nz) < 1:
            raise LaunchConfigError(f"data volume must be non-empty, got {shape_xyz}")
        if min(bx, by, bz) < 1:
            raise LaunchConfigError(f"block dimensions must be >= 1, got {block_dim}")
        grid = (-(-nx // bx), -(-ny // by), -(-nz // bz))
        return cls(grid_dim=grid, block_dim=(bx, by, bz))

    @property
    def threads_per_block(self) -> int:
        """Product of the block dimensions."""
        bx, by, bz = self.block_dim
        return int(bx) * int(by) * int(bz)

    @property
    def total_threads(self) -> int:
        """Total number of threads in the launch (including overhang)."""
        gx, gy, gz = self.grid_dim
        return self.threads_per_block * int(gx) * int(gy) * int(gz)

    def thread_extent(self) -> Tuple[int, int, int]:
        """Extent of the thread lattice along each axis (grid * block)."""
        return (
            int(self.grid_dim[0]) * int(self.block_dim[0]),
            int(self.grid_dim[1]) * int(self.block_dim[1]),
            int(self.grid_dim[2]) * int(self.block_dim[2]),
        )

    def thread_indices(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Flat arrays of (x, y, z) coordinates of every thread in the launch.

        The ordering is x fastest, then y, then z — matching the
        ``idx + idy*NX + idz*NX*NY`` linearisation in the paper's kernel.
        """
        ex, ey, ez = self.thread_extent()
        ix = np.arange(ex, dtype=np.int64)
        iy = np.arange(ey, dtype=np.int64)
        iz = np.arange(ez, dtype=np.int64)
        gz, gy, gx = np.meshgrid(iz, iy, ix, indexing="ij")
        return gx.ravel(), gy.ravel(), gz.ravel()


@dataclass
class Kernel:
    """A simulated ``__global__`` function.

    Parameters
    ----------
    name:
        Kernel name used in profiles.
    per_thread:
        Callable executed once per thread: ``per_thread(tx, ty, tz, *args)``.
    vectorized:
        Optional data-parallel form: ``vectorized(ix, iy, iz, *args)`` with
        flat int64 coordinate arrays.
    flops_per_thread, bytes_per_thread:
        Cost-model parameters used to advance the simulated clock.
    """

    name: str
    per_thread: Optional[Callable] = None
    vectorized: Optional[Callable] = None
    flops_per_thread: float = 100.0
    bytes_per_thread: float = 64.0

    def __post_init__(self):
        if self.per_thread is None and self.vectorized is None:
            raise ValueError("a Kernel needs at least one of per_thread / vectorized")


def launch(
    device: Device,
    kernel: Kernel,
    config: LaunchConfig,
    *args,
    mode: str = "auto",
) -> float:
    """Launch *kernel* on *device* with the given configuration.

    Parameters
    ----------
    device:
        Target simulated device.
    kernel:
        The kernel to run.
    config:
        Grid/block configuration; validated against the device limits.
    args:
        Passed through to the kernel body (device buffers, scalars, ...).
    mode:
        ``"auto"`` (prefer the vectorised body), ``"vectorized"`` or
        ``"per_thread"`` (force a specific body — per-thread execution is
        used by tests to prove the two forms agree).

    Returns
    -------
    float
        The modelled kernel execution time in seconds.
    """
    device.validate_launch(config.grid_dim, config.block_dim)

    if mode not in ("auto", "vectorized", "per_thread"):
        raise ValueError(f"unknown launch mode {mode!r}")
    use_vectorized = kernel.vectorized is not None and mode in ("auto", "vectorized")
    if mode == "vectorized" and kernel.vectorized is None:
        raise LaunchConfigError(f"kernel {kernel.name!r} has no vectorized body")
    if mode == "per_thread" and kernel.per_thread is None:
        raise LaunchConfigError(f"kernel {kernel.name!r} has no per-thread body")
    if mode == "per_thread":
        use_vectorized = False

    ix, iy, iz = config.thread_indices()
    if use_vectorized:
        kernel.vectorized(ix, iy, iz, *args)
    else:
        for tx, ty, tz in zip(ix.tolist(), iy.tolist(), iz.tolist()):
            kernel.per_thread(tx, ty, tz, *args)

    seconds = device.perf.kernel_time(
        n_threads=config.total_threads,
        flops_per_thread=kernel.flops_per_thread,
        bytes_per_thread=kernel.bytes_per_thread,
    )
    device.advance_clock(
        seconds,
        label=kernel.name,
        kind="kernel",
        detail={
            "grid_dim": tuple(config.grid_dim),
            "block_dim": tuple(config.block_dim),
            "threads": config.total_threads,
            "mode": "vectorized" if use_vectorized else "per_thread",
        },
    )
    return seconds

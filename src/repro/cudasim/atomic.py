"""Atomic accumulation primitives.

The reconstruction kernel has many threads adding intensity into the same
depth-resolved output arrays, which in CUDA requires ``atomicAdd``.  Fermi
GPUs (the Tesla M2070) only provide a hardware ``atomicAdd`` for 32-bit
types, so the original code implements the well-known double-precision
emulation with ``atomicCAS`` on the 64-bit integer reinterpretation of the
value.  Both the plain accumulation (what NumPy's ``np.add.at`` gives us) and
a faithful step-by-step CAS emulation are provided here; they must produce
identical results, which the test-suite asserts.
"""

from __future__ import annotations

import numpy as np

__all__ = ["atomic_add", "atomic_add_double_cas", "scatter_add"]


def atomic_add(array: np.ndarray, indices, values) -> np.ndarray:
    """Atomically add *values* into ``array`` at (possibly repeated) *indices*.

    This is the semantic equivalent of every simulated thread performing
    ``atomicAdd(&array[index], value)``: repeated indices accumulate rather
    than overwrite.  Implemented with :func:`numpy.ufunc.at`, which applies
    the addition unbuffered and therefore matches atomic semantics.

    Parameters
    ----------
    array:
        Flat (1-D) float64 accumulation buffer, modified in place.
    indices:
        Integer array of target offsets (one per simulated thread).
    values:
        Array of addends, broadcast-compatible with *indices*.
    """
    array = np.asarray(array)
    if array.ndim != 1:
        raise ValueError("atomic_add expects a flat accumulation buffer")
    indices = np.asarray(indices, dtype=np.int64)
    values = np.asarray(values, dtype=array.dtype)
    if indices.size and (indices.min() < 0 or indices.max() >= array.shape[0]):
        raise IndexError("atomic_add index out of range")
    np.add.at(array, indices, values)
    return array


def atomic_add_double_cas(array: np.ndarray, index: int, value: float, max_iterations: int = 64) -> float:
    """Faithful model of the CUDA double-precision ``atomicAdd`` emulation.

    Mirrors the canonical loop::

        unsigned long long int* address_as_ull = (unsigned long long int*) address;
        unsigned long long int old = *address_as_ull, assumed;
        do {
            assumed = old;
            old = atomicCAS(address_as_ull, assumed,
                            __double_as_longlong(val + __longlong_as_double(assumed)));
        } while (assumed != old);

    In the simulation there is no true concurrency, so the CAS succeeds on
    the first iteration; the value of modelling it is (a) documentation of
    what the paper's ``device_atomicAdd`` does and (b) a bit-exactness check
    against :func:`atomic_add` used by the tests.

    Returns the value stored at ``array[index]`` *before* the addition, like
    CUDA's ``atomicAdd``.
    """
    array = np.asarray(array)
    if array.dtype != np.float64:
        raise ValueError("atomic_add_double_cas requires a float64 buffer")
    flat = array.reshape(-1)
    index = int(index)
    if not (0 <= index < flat.size):
        raise IndexError("atomic_add_double_cas index out of range")

    as_uint = flat.view(np.uint64)
    old = as_uint[index]
    for _ in range(max_iterations):
        assumed = old
        new_double = np.float64(value) + np.frombuffer(np.uint64(assumed).tobytes(), dtype=np.float64)[0]
        new_bits = np.frombuffer(np.float64(new_double).tobytes(), dtype=np.uint64)[0]
        # atomicCAS: write new_bits only if the slot still holds `assumed`
        current = as_uint[index]
        if current == assumed:
            as_uint[index] = new_bits
            old = assumed
        else:  # pragma: no cover - unreachable without real concurrency
            old = current
        if assumed == old:
            break
    return float(np.frombuffer(np.uint64(assumed).tobytes(), dtype=np.float64)[0])


def scatter_add(target: np.ndarray, flat_indices, values) -> np.ndarray:
    """Scatter-add into an n-dimensional target through flat offsets.

    Convenience wrapper used by the GPU-sim backend: the depth-resolved
    output cube is addressed with the same linear offsets the CUDA kernel
    computes, then accumulated atomically.
    """
    flat = np.asarray(target).reshape(-1)
    atomic_add(flat, flat_indices, values)
    return target

"""Exception hierarchy of the simulated CUDA runtime."""

from __future__ import annotations

__all__ = [
    "CudaSimError",
    "DeviceMemoryError",
    "LaunchConfigError",
    "TransferError",
    "InvalidBufferError",
]


class CudaSimError(RuntimeError):
    """Base class for all simulated-CUDA errors (analogue of ``cudaError_t``)."""


class DeviceMemoryError(CudaSimError):
    """Raised when a device allocation exceeds the remaining device memory.

    Mirrors ``cudaErrorMemoryAllocation``; the reconstruction responds to it
    by shrinking the number of detector rows streamed per chunk.
    """


class LaunchConfigError(CudaSimError):
    """Raised when a kernel launch violates the device's launch limits."""


class TransferError(CudaSimError):
    """Raised on invalid host<->device copies (size/dtype mismatch, freed buffer)."""


class InvalidBufferError(CudaSimError):
    """Raised when a device buffer is used after being freed."""

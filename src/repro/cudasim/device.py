"""Simulated CUDA device.

``DeviceProperties`` mirrors the subset of ``cudaDeviceProp`` the paper's
design depends on (memory capacity and launch limits) plus the throughput
numbers used by the performance model.  ``TESLA_M2070`` reproduces the card
named in the paper's evaluation section.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.cudasim.errors import LaunchConfigError
from repro.cudasim.memory import MemoryPool
from repro.cudasim.perfmodel import PerformanceModel
from repro.cudasim.profiler import Profiler
from repro.utils.validation import ensure_positive

__all__ = ["DeviceProperties", "Device", "TESLA_M2070", "GENERIC_LAPTOP_GPU"]


@dataclass(frozen=True)
class DeviceProperties:
    """Static properties of a simulated device."""

    name: str = "Simulated GPU"
    total_memory_bytes: int = 6 * 1024**3
    max_threads_per_block: int = 1024
    max_block_dim: Tuple[int, int, int] = (1024, 1024, 64)
    max_grid_dim: Tuple[int, int, int] = (65535, 65535, 1)
    warp_size: int = 32
    multiprocessors: int = 14
    peak_flops: float = 515e9
    memory_bandwidth: float = 150e9
    pcie_bandwidth: float = 6e9

    def __post_init__(self):
        ensure_positive(self.total_memory_bytes, "total_memory_bytes")
        ensure_positive(self.max_threads_per_block, "max_threads_per_block")
        if len(self.max_block_dim) != 3 or len(self.max_grid_dim) != 3:
            raise ValueError("max_block_dim and max_grid_dim must be 3-tuples")

    def performance_model(self) -> PerformanceModel:
        """Build the analytic performance model matching these properties."""
        return PerformanceModel(
            peak_flops=self.peak_flops,
            memory_bandwidth=self.memory_bandwidth,
            pcie_bandwidth=self.pcie_bandwidth,
        )


#: The card used in the paper's evaluation (Fermi GF100, 6 GB, PCIe 2.0 x16).
TESLA_M2070 = DeviceProperties(
    name="Tesla M2070",
    total_memory_bytes=6 * 1024**3,
    max_threads_per_block=1024,
    max_block_dim=(1024, 1024, 64),
    max_grid_dim=(65535, 65535, 1),
    warp_size=32,
    multiprocessors=14,
    peak_flops=515e9,
    memory_bandwidth=150e9,
    pcie_bandwidth=6e9,
)

#: A deliberately small device used in tests/benchmarks so that the chunked
#: streaming path is exercised on laptop-sized data.
GENERIC_LAPTOP_GPU = DeviceProperties(
    name="Generic laptop GPU (scaled)",
    total_memory_bytes=64 * 1024**2,
    max_threads_per_block=1024,
    max_block_dim=(1024, 1024, 64),
    max_grid_dim=(65535, 65535, 64),
    warp_size=32,
    multiprocessors=8,
    peak_flops=200e9,
    memory_bandwidth=80e9,
    pcie_bandwidth=4e9,
)


class Device:
    """A simulated GPU: memory pool + simulated clock + profiler.

    Parameters
    ----------
    properties:
        Static device properties (default: the paper's Tesla M2070).
    memory_limit_bytes:
        Optional override of the usable device memory (for scaling
        experiments down without redefining the whole device).
    """

    def __init__(
        self,
        properties: DeviceProperties = TESLA_M2070,
        memory_limit_bytes: int | None = None,
    ):
        self.properties = properties
        limit = int(memory_limit_bytes) if memory_limit_bytes is not None else properties.total_memory_bytes
        ensure_positive(limit, "memory_limit_bytes")
        self.memory = MemoryPool(limit)
        self.perf = properties.performance_model()
        self.profiler = Profiler()
        self._clock = 0.0

    # ------------------------------------------------------------------ #
    @property
    def simulated_time(self) -> float:
        """Total simulated seconds spent in transfers and kernels so far."""
        return self._clock

    def reset_clock(self) -> None:
        """Reset the simulated clock and the profiler timeline."""
        self._clock = 0.0
        self.profiler.clear()

    def advance_clock(self, seconds: float, label: str, kind: str, detail: dict | None = None) -> None:
        """Advance the simulated clock and record a profile entry."""
        if seconds < 0:
            raise ValueError("cannot advance the clock backwards")
        start = self._clock
        self._clock += seconds
        self.profiler.record(kind=kind, label=label, start=start, duration=seconds, detail=detail or {})

    # ------------------------------------------------------------------ #
    def validate_launch(self, grid_dim: Tuple[int, int, int], block_dim: Tuple[int, int, int]) -> None:
        """Raise :class:`LaunchConfigError` if the launch violates device limits."""
        if len(grid_dim) != 3 or len(block_dim) != 3:
            raise LaunchConfigError("grid_dim and block_dim must be 3-tuples")
        if any(int(g) < 1 for g in grid_dim) or any(int(b) < 1 for b in block_dim):
            raise LaunchConfigError("grid and block dimensions must be >= 1")
        threads_per_block = int(block_dim[0]) * int(block_dim[1]) * int(block_dim[2])
        if threads_per_block > self.properties.max_threads_per_block:
            raise LaunchConfigError(
                f"{threads_per_block} threads per block exceeds the device limit "
                f"of {self.properties.max_threads_per_block}"
            )
        for axis, (b, limit) in enumerate(zip(block_dim, self.properties.max_block_dim)):
            if int(b) > limit:
                raise LaunchConfigError(f"block dimension {axis} = {b} exceeds limit {limit}")
        for axis, (g, limit) in enumerate(zip(grid_dim, self.properties.max_grid_dim)):
            if int(g) > limit:
                raise LaunchConfigError(f"grid dimension {axis} = {g} exceeds limit {limit}")

    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        used = self.memory.used_bytes
        total = self.memory.capacity_bytes
        return (
            f"Device({self.properties.name!r}, memory {used}/{total} bytes, "
            f"simulated_time={self._clock:.6f}s)"
        )

"""Simulated device memory: buffers and the allocation pool.

Device memory is the resource whose scarcity drives the paper's design: the
Tesla M2070 has 6 GB, the data sets are 2.1–5.2 GB plus temporaries, so the
input cube must be streamed to the device a few detector rows at a time
(Fig. 2).  ``MemoryPool`` enforces a hard capacity so that the same pressure
exists in the simulation, and ``DeviceBuffer`` is the handle returned by the
simulated ``cudaMalloc``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.cudasim.errors import DeviceMemoryError, InvalidBufferError
from repro.utils.validation import ensure_positive

__all__ = ["DeviceBuffer", "MemoryPool"]


class DeviceBuffer:
    """A contiguous allocation in simulated device memory.

    The underlying storage is a NumPy array living in host RAM — the
    simulation is about the *accounting and movement* of data, not about
    physically separate memory — but the buffer can only be read or written
    through explicit transfer calls or inside a kernel, which keeps user code
    honest about where data lives.
    """

    def __init__(self, pool: "MemoryPool", handle: int, shape: Tuple[int, ...], dtype: np.dtype):
        self._pool = pool
        self._handle = handle
        self._shape = tuple(int(s) for s in shape)
        self._dtype = np.dtype(dtype)
        self._data = np.zeros(self._shape, dtype=self._dtype)
        self._freed = False

    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        """Buffer shape."""
        return self._shape

    @property
    def dtype(self) -> np.dtype:
        """Buffer dtype."""
        return self._dtype

    @property
    def nbytes(self) -> int:
        """Allocation size in bytes."""
        return int(np.prod(self._shape, dtype=np.int64)) * self._dtype.itemsize

    @property
    def handle(self) -> int:
        """Opaque allocation id (the simulated device pointer)."""
        return self._handle

    @property
    def is_freed(self) -> bool:
        """True once :meth:`free` has been called."""
        return self._freed

    # ------------------------------------------------------------------ #
    def _check_alive(self) -> None:
        if self._freed:
            raise InvalidBufferError(f"device buffer {self._handle} used after free")

    def device_array(self) -> np.ndarray:
        """The device-side array (for use *inside* kernels and transfers only)."""
        self._check_alive()
        return self._data

    def fill(self, value: float) -> None:
        """Device-side memset (``cudaMemset`` analogue)."""
        self._check_alive()
        self._data.fill(value)

    def free(self) -> None:
        """Release the allocation back to the pool (idempotent)."""
        if not self._freed:
            self._pool._release(self)
            self._freed = True
            self._data = np.empty(0, dtype=self._dtype)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "freed" if self._freed else f"{self.nbytes} bytes"
        return f"DeviceBuffer(handle={self._handle}, shape={self._shape}, dtype={self._dtype}, {state})"


class MemoryPool:
    """Tracks allocations against a fixed device-memory capacity."""

    def __init__(self, capacity_bytes: int):
        ensure_positive(capacity_bytes, "capacity_bytes")
        self._capacity = int(capacity_bytes)
        self._used = 0
        self._next_handle = 1
        self._live: Dict[int, int] = {}
        self._peak = 0

    # ------------------------------------------------------------------ #
    @property
    def capacity_bytes(self) -> int:
        """Total device memory."""
        return self._capacity

    @property
    def used_bytes(self) -> int:
        """Bytes currently allocated."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes currently available."""
        return self._capacity - self._used

    @property
    def peak_bytes(self) -> int:
        """High-water mark of allocated bytes."""
        return self._peak

    @property
    def n_live_allocations(self) -> int:
        """Number of buffers not yet freed."""
        return len(self._live)

    # ------------------------------------------------------------------ #
    def allocate(self, shape: Tuple[int, ...], dtype=np.float64) -> DeviceBuffer:
        """Allocate a buffer (``cudaMalloc`` analogue).

        Raises
        ------
        DeviceMemoryError
            If the allocation would exceed the device capacity.
        """
        dtype = np.dtype(dtype)
        nbytes = int(np.prod(tuple(int(s) for s in shape), dtype=np.int64)) * dtype.itemsize
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        if self._used + nbytes > self._capacity:
            raise DeviceMemoryError(
                f"out of device memory: requested {nbytes} bytes, "
                f"{self.free_bytes} of {self._capacity} available"
            )
        handle = self._next_handle
        self._next_handle += 1
        buffer = DeviceBuffer(self, handle, shape, dtype)
        self._live[handle] = nbytes
        self._used += nbytes
        self._peak = max(self._peak, self._used)
        return buffer

    def _release(self, buffer: DeviceBuffer) -> None:
        nbytes = self._live.pop(buffer.handle, None)
        if nbytes is not None:
            self._used -= nbytes

    def reset(self) -> None:
        """Free everything (used between independent experiments)."""
        self._live.clear()
        self._used = 0

    def can_fit(self, n_bytes: int) -> bool:
        """True if an allocation of *n_bytes* would currently succeed."""
        return n_bytes <= self.free_bytes

"""Timeline profiler for the simulated device.

Each transfer and kernel launch appends a :class:`ProfileRecord`; the
summary aggregates time by kind so experiments can report the
computation-vs-communication split the paper's design discussion revolves
around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

__all__ = ["ProfileRecord", "Profiler"]


@dataclass(frozen=True)
class ProfileRecord:
    """One entry on the simulated timeline."""

    kind: str
    label: str
    start: float
    duration: float
    detail: dict = field(default_factory=dict)

    @property
    def end(self) -> float:
        """End time of the entry on the simulated clock."""
        return self.start + self.duration


class Profiler:
    """Accumulates :class:`ProfileRecord` entries."""

    def __init__(self):
        self._records: List[ProfileRecord] = []

    def record(self, kind: str, label: str, start: float, duration: float, detail: dict | None = None) -> ProfileRecord:
        """Append a record and return it."""
        rec = ProfileRecord(kind=kind, label=label, start=start, duration=duration, detail=detail or {})
        self._records.append(rec)
        return rec

    def clear(self) -> None:
        """Drop all records."""
        self._records.clear()

    @property
    def records(self) -> List[ProfileRecord]:
        """All records, in submission order."""
        return list(self._records)

    def total_time(self, kind: str | None = None) -> float:
        """Total simulated seconds, optionally restricted to one record kind."""
        return sum(r.duration for r in self._records if kind is None or r.kind == kind)

    def time_by_kind(self) -> Dict[str, float]:
        """Simulated seconds aggregated per record kind."""
        out: Dict[str, float] = {}
        for rec in self._records:
            out[rec.kind] = out.get(rec.kind, 0.0) + rec.duration
        return out

    def count_by_kind(self) -> Dict[str, int]:
        """Number of records per kind."""
        out: Dict[str, int] = {}
        for rec in self._records:
            out[rec.kind] = out.get(rec.kind, 0) + 1
        return out

    def transfer_fraction(self) -> float:
        """Fraction of simulated time spent in host<->device transfers."""
        total = self.total_time()
        if total == 0:
            return 0.0
        transfers = sum(
            r.duration for r in self._records if r.kind in ("memcpy_h2d", "memcpy_d2h", "memcpy_d2d")
        )
        return transfers / total

    def summary(self) -> str:
        """Human-readable multi-line summary of the timeline."""
        lines = ["simulated device timeline summary:"]
        by_kind = self.time_by_kind()
        counts = self.count_by_kind()
        for kind in sorted(by_kind):
            lines.append(
                f"  {kind:<12s} {counts[kind]:6d} ops   {by_kind[kind]:12.6f} s"
            )
        lines.append(f"  {'total':<12s} {len(self._records):6d} ops   {self.total_time():12.6f} s")
        return "\n".join(lines)

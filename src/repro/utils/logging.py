"""Logging helpers.

A thin wrapper around :mod:`logging` so that library code gets namespaced
loggers without configuring handlers (library best practice), while scripts
and the CLI can call :func:`configure` once to get readable console output.

Request-scoped context
----------------------
Long-lived processes (the ``repro-serve`` daemon) interleave many clients'
work on one event loop and one worker pool, so a bare message line cannot be
attributed to the request that produced it.  :func:`request_context` binds a
job id and client id to the *current execution context* (:mod:`contextvars`,
so asyncio tasks and ``contextvars.copy_context()``-wrapped executor calls
each see their own binding), and :class:`RequestContextFilter` stamps both
onto every :class:`logging.LogRecord` as ``job_id`` / ``client_id`` plus a
pre-rendered ``request`` suffix — every record emitted while serving a job
carries the job, with zero changes to the call sites.
"""

from __future__ import annotations

import contextvars
import logging
import sys
from contextlib import contextmanager
from typing import Optional

__all__ = [
    "get_logger",
    "configure",
    "request_context",
    "current_request",
    "RequestContextFilter",
]

_ROOT_NAME = "repro"

#: The ids of the request being served in this execution context (``None``
#: outside any :func:`request_context` block, e.g. plain CLI runs).
_JOB_ID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_job_id", default=None
)
_CLIENT_ID: "contextvars.ContextVar[Optional[str]]" = contextvars.ContextVar(
    "repro_client_id", default=None
)


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


@contextmanager
def request_context(job_id: Optional[str] = None, client_id: Optional[str] = None):
    """Bind a job/client id to every log record emitted in this context.

    Context-local (not thread-global): concurrent asyncio tasks each keep
    their own binding, and a worker-thread call wrapped in
    ``contextvars.copy_context().run`` inherits the binding of the task that
    dispatched it.  Nested contexts restore the outer binding on exit.
    """
    job_token = _JOB_ID.set(job_id)
    client_token = _CLIENT_ID.set(client_id)
    try:
        yield
    finally:
        _JOB_ID.reset(job_token)
        _CLIENT_ID.reset(client_token)


def current_request() -> dict:
    """The request ids bound in this context (values ``None`` when unbound)."""
    return {"job_id": _JOB_ID.get(), "client_id": _CLIENT_ID.get()}


class RequestContextFilter(logging.Filter):
    """Stamp the context-bound job/client ids onto every record.

    Always passes the record through; it only *annotates*.  ``record.request``
    is a pre-rendered `` [job=... client=...]`` suffix (empty string outside a
    request), so any formatter can include ``%(request)s`` unconditionally.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        record.job_id = _JOB_ID.get()
        record.client_id = _CLIENT_ID.get()
        parts = []
        if record.job_id is not None:
            parts.append(f"job={record.job_id}")
        if record.client_id is not None:
            parts.append(f"client={record.client_id}")
        record.request = f" [{' '.join(parts)}]" if parts else ""
        return True


def configure(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Configure console logging for scripts/CLI (idempotent).

    The handler carries a :class:`RequestContextFilter`, so daemon log lines
    emitted while serving a job automatically carry ``[job=... client=...]``.
    """
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.addFilter(RequestContextFilter())
        handler.setFormatter(
            logging.Formatter(
                "%(asctime)s %(name)s %(levelname)s%(request)s: %(message)s", "%H:%M:%S"
            )
        )
        logger.addHandler(handler)
    return logger

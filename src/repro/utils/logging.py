"""Logging helpers.

A thin wrapper around :mod:`logging` so that library code gets namespaced
loggers without configuring handlers (library best practice), while scripts
and the CLI can call :func:`configure` once to get readable console output.
"""

from __future__ import annotations

import logging
import sys

__all__ = ["get_logger", "configure"]

_ROOT_NAME = "repro"


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a logger under the ``repro`` namespace."""
    if name is None or name == _ROOT_NAME:
        return logging.getLogger(_ROOT_NAME)
    if name.startswith(_ROOT_NAME + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT_NAME}.{name}")


def configure(level: int = logging.INFO, stream=None) -> logging.Logger:
    """Configure console logging for scripts/CLI (idempotent)."""
    logger = logging.getLogger(_ROOT_NAME)
    logger.setLevel(level)
    if not logger.handlers:
        handler = logging.StreamHandler(stream or sys.stderr)
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s", "%H:%M:%S")
        )
        logger.addHandler(handler)
    return logger

"""Shared utilities: validation helpers, logging, array helpers."""

from repro.utils.validation import (
    ensure_positive,
    ensure_shape,
    ensure_dtype,
    ensure_in_range,
    ensure_unit_vector,
    ValidationError,
)
from repro.utils.arrays import (
    as_float64,
    as_contiguous,
    ravel_index_3d,
    unravel_index_3d,
    chunk_ranges,
)
from repro.utils.version import package_version

__all__ = [
    "ensure_positive",
    "ensure_shape",
    "ensure_dtype",
    "ensure_in_range",
    "ensure_unit_vector",
    "ValidationError",
    "as_float64",
    "as_contiguous",
    "ravel_index_3d",
    "unravel_index_3d",
    "chunk_ranges",
    "package_version",
]

"""Package-version lookup for provenance records."""

from __future__ import annotations

__all__ = ["package_version"]


def package_version() -> str:
    """The repro package version, resolved lazily to avoid an import cycle.

    Run and analysis provenance records both stamp this value; keeping the
    lookup in one place guarantees they can never diverge.
    """
    try:
        from repro import __version__

        return __version__
    except Exception:  # pragma: no cover - only during partial imports
        return "unknown"

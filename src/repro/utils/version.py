"""Package-version lookup for provenance records."""

from __future__ import annotations

__all__ = ["package_version"]


def package_version() -> str:
    """The repro package version, resolved lazily to avoid an import cycle.

    Run and analysis provenance records and the ``BENCH_*.json`` artifacts
    all stamp this value, and :mod:`repro.core.cache` folds it into every
    cache key; reading the one definition in :mod:`repro._version` (the same
    file ``setup.py`` parses) guarantees they can never diverge.
    """
    try:
        from repro._version import __version__

        return __version__
    except Exception:  # pragma: no cover - only during partial imports
        return "unknown"

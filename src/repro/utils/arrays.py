"""Array helpers shared across the library.

Includes the 3-D <-> 1-D index mapping that is at the heart of the paper's
"1-D array vs 3-D array" layout discussion (Fig. 4): the flattened layout
requires converting a ``(row, col, image)`` triple into a linear offset and
back, which costs a little arithmetic per element but avoids shipping pointer
tables to the device.
"""

from __future__ import annotations

from typing import Iterator, Tuple

import numpy as np

__all__ = [
    "as_float64",
    "as_contiguous",
    "ravel_index_3d",
    "unravel_index_3d",
    "chunk_ranges",
    "bytes_to_human",
]


def as_float64(array: np.ndarray) -> np.ndarray:
    """Return *array* as a float64 ndarray (no copy if already float64)."""
    return np.asarray(array, dtype=np.float64)


def as_contiguous(array: np.ndarray) -> np.ndarray:
    """Return a C-contiguous view/copy of *array*.

    The simulated device only accepts contiguous buffers, mirroring the fact
    that ``cudaMemcpy`` of a strided host array would require staging.
    """
    return np.ascontiguousarray(array)


def ravel_index_3d(ix: np.ndarray, iy: np.ndarray, iz: np.ndarray,
                   nx: int, ny: int) -> np.ndarray:
    """Map a 3-D index ``(ix, iy, iz)`` to the flat offset used by the paper.

    The paper's kernel computes ``gsl_offset = idx + idy*DATAXSIZE +
    DATAYSIZE*DATAXSIZE*idz``; this is exactly that mapping with
    ``nx = DATAXSIZE`` and ``ny = DATAYSIZE``.
    """
    return np.asarray(ix) + np.asarray(iy) * nx + np.asarray(iz) * (nx * ny)


def unravel_index_3d(offset: np.ndarray, nx: int, ny: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Inverse of :func:`ravel_index_3d`."""
    offset = np.asarray(offset)
    iz = offset // (nx * ny)
    rem = offset - iz * (nx * ny)
    iy = rem // nx
    ix = rem - iy * nx
    return ix, iy, iz


def chunk_ranges(total: int, chunk: int) -> Iterator[Tuple[int, int]]:
    """Yield ``(start, stop)`` pairs covering ``range(total)`` in chunks.

    The final chunk may be smaller.  ``chunk`` must be positive.
    """
    if chunk <= 0:
        raise ValueError(f"chunk must be positive, got {chunk}")
    start = 0
    while start < total:
        stop = min(start + chunk, total)
        yield start, stop
        start = stop


def bytes_to_human(n_bytes: float) -> str:
    """Format a byte count as a human readable string (e.g. ``'2.1 GB'``)."""
    n = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB", "TB"):
        if abs(n) < 1024.0 or unit == "TB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    return f"{n:.1f} TB"

"""Validation helpers used at public API boundaries.

The library validates shapes, dtypes and value ranges at the edges of the
public API (constructors, top-level functions) and then assumes clean data in
inner loops.  This keeps the vectorised hot paths free of per-element checks
while still giving users actionable error messages.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "ValidationError",
    "ensure_positive",
    "ensure_non_negative",
    "ensure_shape",
    "ensure_ndim",
    "ensure_dtype",
    "ensure_in_range",
    "ensure_unit_vector",
    "ensure_finite",
    "ensure_monotonic_increasing",
]


class ValidationError(ValueError):
    """Raised when an argument fails validation at an API boundary."""


def ensure_positive(value: float, name: str = "value") -> float:
    """Return *value* if it is strictly positive, else raise.

    Parameters
    ----------
    value:
        Scalar to check.
    name:
        Name used in the error message.
    """
    if not np.isfinite(value) or value <= 0:
        raise ValidationError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def ensure_non_negative(value: float, name: str = "value") -> float:
    """Return *value* if it is >= 0, else raise."""
    if not np.isfinite(value) or value < 0:
        raise ValidationError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def ensure_shape(array: np.ndarray, shape: Sequence[int | None], name: str = "array") -> np.ndarray:
    """Check that *array* has the given shape.

    ``None`` entries in *shape* act as wildcards for that axis.
    """
    array = np.asarray(array)
    if array.ndim != len(shape):
        raise ValidationError(
            f"{name} must have {len(shape)} dimensions, got {array.ndim} (shape {array.shape})"
        )
    for axis, (actual, expected) in enumerate(zip(array.shape, shape)):
        if expected is not None and actual != expected:
            raise ValidationError(
                f"{name} has shape {array.shape}, expected axis {axis} to be {expected}"
            )
    return array


def ensure_ndim(array: np.ndarray, ndim: int, name: str = "array") -> np.ndarray:
    """Check that *array* has exactly *ndim* dimensions."""
    array = np.asarray(array)
    if array.ndim != ndim:
        raise ValidationError(f"{name} must be {ndim}-dimensional, got shape {array.shape}")
    return array


def ensure_dtype(array: np.ndarray, dtype: np.dtype | type, name: str = "array") -> np.ndarray:
    """Check that *array* has dtype compatible with *dtype* (cast-free)."""
    array = np.asarray(array)
    if array.dtype != np.dtype(dtype):
        raise ValidationError(
            f"{name} must have dtype {np.dtype(dtype)}, got {array.dtype}"
        )
    return array


def ensure_in_range(
    value: float,
    low: float,
    high: float,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Check that a scalar lies inside [low, high] (or (low, high))."""
    ok = (low <= value <= high) if inclusive else (low < value < high)
    if not ok:
        bounds = "[{}, {}]" if inclusive else "({}, {})"
        raise ValidationError(
            f"{name} must lie in {bounds.format(low, high)}, got {value!r}"
        )
    return float(value)


def ensure_unit_vector(vec: Iterable[float], name: str = "vector", atol: float = 1e-9) -> np.ndarray:
    """Return *vec* as a float64 array after checking it has unit length."""
    arr = np.asarray(tuple(vec), dtype=np.float64)
    if arr.shape != (3,):
        raise ValidationError(f"{name} must be a 3-vector, got shape {arr.shape}")
    norm = float(np.linalg.norm(arr))
    if abs(norm - 1.0) > atol:
        raise ValidationError(f"{name} must have unit length, got |v| = {norm}")
    return arr


def ensure_finite(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Check that every element of *array* is finite."""
    array = np.asarray(array)
    if not np.all(np.isfinite(array)):
        n_bad = int(np.size(array) - np.count_nonzero(np.isfinite(array)))
        raise ValidationError(f"{name} contains {n_bad} non-finite values")
    return array


def ensure_monotonic_increasing(array: np.ndarray, name: str = "array", strict: bool = True) -> np.ndarray:
    """Check that a 1-D array is (strictly) increasing."""
    array = np.asarray(array)
    if array.ndim != 1:
        raise ValidationError(f"{name} must be 1-dimensional")
    diffs = np.diff(array)
    ok = np.all(diffs > 0) if strict else np.all(diffs >= 0)
    if not ok:
        raise ValidationError(f"{name} must be monotonically increasing")
    return array

"""Minimal crystallography for synthesising Laue diffraction patterns.

The depth reconstruction itself is agnostic to what produced the detector
images, but the paper's data are polychromatic Laue diffraction patterns of
crystalline samples.  This subpackage provides just enough crystallography —
lattices, orientations, structure-factor extinction rules and polychromatic
Laue spot prediction — for the synthetic forward model to place physically
plausible diffraction spots on the detector, so that the benchmark data sets
have realistic sparsity and intensity structure.
"""

from repro.crystallography.lattice import Lattice
from repro.crystallography.materials import MATERIALS, Material, get_material
from repro.crystallography.orientation import Orientation
from repro.crystallography.structure_factor import structure_factor_magnitude, is_reflection_allowed
from repro.crystallography.laue import LaueSpot, predict_laue_spots

__all__ = [
    "Lattice",
    "Material",
    "MATERIALS",
    "get_material",
    "Orientation",
    "structure_factor_magnitude",
    "is_reflection_allowed",
    "LaueSpot",
    "predict_laue_spots",
]

"""Grain orientation wrapper."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.geometry.rotations import (
    is_rotation_matrix,
    matrix_to_quaternion,
    misorientation_angle,
    random_rotation,
    rotation_from_euler,
)
from repro.utils.validation import ValidationError

__all__ = ["Orientation"]


@dataclass(frozen=True)
class Orientation:
    """A crystal orientation: the rotation taking crystal axes to lab axes."""

    matrix: np.ndarray = field(default_factory=lambda: np.eye(3))

    def __post_init__(self):
        matrix = np.asarray(self.matrix, dtype=np.float64)
        if not is_rotation_matrix(matrix, atol=1e-6):
            raise ValidationError("Orientation requires a proper rotation matrix")
        object.__setattr__(self, "matrix", matrix)

    # ------------------------------------------------------------------ #
    @classmethod
    def identity(cls) -> "Orientation":
        """The reference orientation."""
        return cls(np.eye(3))

    @classmethod
    def from_euler(cls, phi1: float, theta: float, phi2: float, degrees: bool = True) -> "Orientation":
        """Build from Bunge Euler angles."""
        if degrees:
            phi1, theta, phi2 = np.radians([phi1, theta, phi2])
        return cls(rotation_from_euler(phi1, theta, phi2))

    @classmethod
    def random(cls, rng: np.random.Generator) -> "Orientation":
        """Uniformly random orientation."""
        return cls(random_rotation(rng))

    # ------------------------------------------------------------------ #
    def rotate(self, vectors: np.ndarray) -> np.ndarray:
        """Rotate crystal-frame vectors into the lab frame."""
        vectors = np.asarray(vectors, dtype=np.float64)
        return vectors @ self.matrix.T

    def quaternion(self) -> np.ndarray:
        """Quaternion ``(x, y, z, w)`` of this orientation."""
        return matrix_to_quaternion(self.matrix)

    def misorientation_to(self, other: "Orientation") -> float:
        """Misorientation angle to another orientation, radians."""
        return misorientation_angle(self.matrix, other.matrix)

    def perturbed(self, axis, angle: float) -> "Orientation":
        """A new orientation rotated by *angle* radians about *axis* (lab frame)."""
        from repro.geometry.rotations import rotation_about_axis

        return Orientation(rotation_about_axis(axis, angle) @ self.matrix)

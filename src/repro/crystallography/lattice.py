"""Crystal lattice: direct and reciprocal metric."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.validation import ValidationError, ensure_positive

__all__ = ["Lattice"]


@dataclass(frozen=True)
class Lattice:
    """A Bravais lattice defined by its cell parameters.

    Parameters
    ----------
    a, b, c:
        Cell edge lengths in Ångström.
    alpha, beta, gamma:
        Cell angles in degrees.
    centering:
        Lattice centering symbol used by the extinction rules:
        ``"P"``, ``"I"``, ``"F"`` or ``"diamond"``.
    """

    a: float
    b: float
    c: float
    alpha: float = 90.0
    beta: float = 90.0
    gamma: float = 90.0
    centering: str = "P"

    _direct: np.ndarray = field(init=False, repr=False, compare=False, default=None)
    _reciprocal: np.ndarray = field(init=False, repr=False, compare=False, default=None)

    def __post_init__(self):
        for name in ("a", "b", "c"):
            ensure_positive(getattr(self, name), name)
        for name in ("alpha", "beta", "gamma"):
            angle = getattr(self, name)
            if not (0.0 < angle < 180.0):
                raise ValidationError(f"{name} must lie in (0, 180) degrees, got {angle}")
        if self.centering not in ("P", "I", "F", "diamond"):
            raise ValidationError(f"unsupported centering {self.centering!r}")

        alpha, beta, gamma = np.radians([self.alpha, self.beta, self.gamma])
        ca, cb, cg = np.cos([alpha, beta, gamma])
        sg = np.sin(gamma)
        # volume factor
        v = np.sqrt(max(1e-18, 1 - ca * ca - cb * cb - cg * cg + 2 * ca * cb * cg))
        # direct lattice vectors as rows (standard crystallographic convention)
        a_vec = np.array([self.a, 0.0, 0.0])
        b_vec = np.array([self.b * cg, self.b * sg, 0.0])
        c_vec = np.array(
            [
                self.c * cb,
                self.c * (ca - cb * cg) / sg,
                self.c * v / sg,
            ]
        )
        direct = np.vstack([a_vec, b_vec, c_vec])
        reciprocal = 2.0 * np.pi * np.linalg.inv(direct).T
        object.__setattr__(self, "_direct", direct)
        object.__setattr__(self, "_reciprocal", reciprocal)

    # ------------------------------------------------------------------ #
    @classmethod
    def cubic(cls, a: float, centering: str = "P") -> "Lattice":
        """Cubic lattice with edge *a* Å."""
        return cls(a=a, b=a, c=a, centering=centering)

    # ------------------------------------------------------------------ #
    @property
    def direct_matrix(self) -> np.ndarray:
        """Direct lattice vectors as rows, shape ``(3, 3)`` (Å)."""
        return self._direct.copy()

    @property
    def reciprocal_matrix(self) -> np.ndarray:
        """Reciprocal lattice vectors as rows, shape ``(3, 3)`` (1/Å, includes 2π)."""
        return self._reciprocal.copy()

    @property
    def volume(self) -> float:
        """Unit-cell volume in Å³."""
        return float(abs(np.linalg.det(self._direct)))

    # ------------------------------------------------------------------ #
    def g_vector(self, hkl) -> np.ndarray:
        """Reciprocal lattice vector(s) for Miller indices *hkl* (crystal frame).

        ``hkl`` may be a single triple or an ``(n, 3)`` array; the result has
        matching shape.
        """
        hkl = np.asarray(hkl, dtype=np.float64)
        return hkl @ self._reciprocal

    def d_spacing(self, hkl) -> np.ndarray:
        """Interplanar spacing d_hkl in Å."""
        g = self.g_vector(hkl)
        g_norm = np.linalg.norm(np.atleast_2d(g), axis=-1)
        with np.errstate(divide="ignore"):
            d = 2.0 * np.pi / g_norm
        return d if np.asarray(hkl).ndim > 1 else float(d[0])

"""A small library of reference materials.

Copper is the headline material of the Laue microscopy papers (plastic
deformation under micro-indents in Cu single crystals); silicon, tungsten
and nickel are common calibration/engineering samples at 34-ID.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.crystallography.lattice import Lattice
from repro.utils.validation import ValidationError

__all__ = ["Material", "MATERIALS", "get_material"]


@dataclass(frozen=True)
class Material:
    """A named crystalline material."""

    name: str
    lattice: Lattice
    atomic_number: int
    density_g_cm3: float

    @property
    def centering(self) -> str:
        """Lattice centering symbol (drives the extinction rules)."""
        return self.lattice.centering


MATERIALS: Dict[str, Material] = {
    "Cu": Material(name="Cu", lattice=Lattice.cubic(3.6149, centering="F"), atomic_number=29, density_g_cm3=8.96),
    "Ni": Material(name="Ni", lattice=Lattice.cubic(3.5240, centering="F"), atomic_number=28, density_g_cm3=8.91),
    "Si": Material(name="Si", lattice=Lattice.cubic(5.4310, centering="diamond"), atomic_number=14, density_g_cm3=2.33),
    "W": Material(name="W", lattice=Lattice.cubic(3.1652, centering="I"), atomic_number=74, density_g_cm3=19.25),
    "Fe": Material(name="Fe", lattice=Lattice.cubic(2.8665, centering="I"), atomic_number=26, density_g_cm3=7.87),
    "Al": Material(name="Al", lattice=Lattice.cubic(4.0495, centering="F"), atomic_number=13, density_g_cm3=2.70),
}


def get_material(name: str) -> Material:
    """Look a material up by symbol (case-sensitive, e.g. ``"Cu"``)."""
    try:
        return MATERIALS[name]
    except KeyError:
        raise ValidationError(
            f"unknown material {name!r}; available: {sorted(MATERIALS)}"
        ) from None

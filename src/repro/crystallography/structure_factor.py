"""Structure-factor extinction rules and a crude magnitude model.

Only the features that influence which Laue spots appear — centering
extinctions and a smooth fall-off of scattering power with momentum
transfer — are modelled; absolute intensities are arbitrary units.
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["is_reflection_allowed", "structure_factor_magnitude"]


def is_reflection_allowed(hkl, centering: str = "P") -> np.ndarray:
    """Centering extinction rules.

    * ``P``: all reflections allowed;
    * ``I``: h + k + l even;
    * ``F``: h, k, l all even or all odd;
    * ``diamond``: F rules, plus h + k + l ≠ 4n + 2.
    """
    hkl = np.atleast_2d(np.asarray(hkl, dtype=np.int64))
    h, k, l = hkl[..., 0], hkl[..., 1], hkl[..., 2]
    if centering == "P":
        allowed = np.ones(h.shape, dtype=bool)
    elif centering == "I":
        allowed = (h + k + l) % 2 == 0
    elif centering in ("F", "diamond"):
        all_even = (h % 2 == 0) & (k % 2 == 0) & (l % 2 == 0)
        all_odd = (h % 2 == 1) & (k % 2 == 1) & (l % 2 == 1)
        allowed = all_even | all_odd
        if centering == "diamond":
            allowed &= ~(all_even & ((h + k + l) % 4 == 2))
    else:
        raise ValidationError(f"unsupported centering {centering!r}")
    allowed &= ~((h == 0) & (k == 0) & (l == 0))
    return allowed if np.asarray(hkl).ndim > 1 else bool(allowed[0])


def structure_factor_magnitude(hkl, centering: str = "P", atomic_number: int = 29) -> np.ndarray:
    """Relative |F| for the given reflections (arbitrary units).

    A single-species approximation: |F| is proportional to the atomic number
    times a Gaussian fall-off with ``|hkl|`` (standing in for the atomic form
    factor and thermal attenuation), zeroed for extinct reflections.
    """
    hkl = np.atleast_2d(np.asarray(hkl, dtype=np.float64))
    allowed = is_reflection_allowed(hkl.astype(np.int64), centering)
    magnitude = float(atomic_number) * np.exp(-0.02 * np.sum(hkl * hkl, axis=-1))
    multiplicity = {"P": 1.0, "I": 2.0, "F": 4.0, "diamond": 8.0}[centering]
    values = np.where(allowed, multiplicity * magnitude, 0.0)
    return values if np.asarray(hkl).ndim > 1 else float(values[0])

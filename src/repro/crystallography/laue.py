"""Polychromatic Laue spot prediction.

For a white (polychromatic) incident beam every reciprocal-lattice vector
``g`` with ``g · k̂_in < 0`` selects its own Bragg wavelength; the reflection
appears on the detector if that wavelength lies inside the beam's energy band
and the diffracted ray hits the detector plane.  This is the standard Laue
geometry used at 34-ID-E and is exactly the structure of the images the
depth-reconstruction program processes: a few tens of sharp spots on a weak
background.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List

import numpy as np

from repro.crystallography.materials import Material
from repro.crystallography.orientation import Orientation
from repro.crystallography.structure_factor import structure_factor_magnitude
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.utils.validation import ValidationError

__all__ = ["LaueSpot", "predict_laue_spots"]

#: E[keV] * λ[Å] for photons
_HC_KEV_ANGSTROM = 12.39842


@dataclass(frozen=True)
class LaueSpot:
    """One predicted Laue reflection on the detector."""

    hkl: tuple
    energy_kev: float
    row: float
    col: float
    direction: tuple
    intensity: float

    @property
    def pixel(self) -> tuple:
        """Nearest integer ``(row, col)`` pixel."""
        return (int(round(self.row)), int(round(self.col)))


def predict_laue_spots(
    material: Material,
    orientation: Orientation,
    beam: Beam,
    detector: Detector,
    max_hkl: int = 5,
    min_relative_intensity: float = 1e-3,
) -> List[LaueSpot]:
    """Predict the Laue spots of one grain on the detector.

    Parameters
    ----------
    material:
        Crystal structure and scattering strength.
    orientation:
        Grain orientation (crystal → lab rotation).
    beam:
        Incident polychromatic beam (direction + energy band).
    detector:
        Detector geometry; only canonical (untilted) detectors are supported.
    max_hkl:
        Miller indices are enumerated over ``[-max_hkl, max_hkl]^3``.
    min_relative_intensity:
        Spots weaker than this fraction of the strongest spot are dropped.

    Returns
    -------
    list of LaueSpot, sorted by decreasing intensity.
    """
    if not detector.is_canonical:
        raise ValidationError("Laue prediction currently supports untilted detectors only")
    if max_hkl < 1:
        raise ValidationError("max_hkl must be >= 1")

    k_in = beam.unit_direction

    hkl_list = np.array(
        [
            hkl
            for hkl in itertools.product(range(-max_hkl, max_hkl + 1), repeat=3)
            if hkl != (0, 0, 0)
        ],
        dtype=np.int64,
    )
    magnitudes = structure_factor_magnitude(hkl_list, material.centering, material.atomic_number)
    keep = magnitudes > 0
    hkl_list = hkl_list[keep]
    magnitudes = magnitudes[keep]

    # reciprocal vectors in the lab frame
    g_crystal = material.lattice.g_vector(hkl_list)  # (n, 3), 1/Å
    g_lab = orientation.rotate(g_crystal)

    g_dot_k = g_lab @ k_in
    g_sq = np.einsum("ij,ij->i", g_lab, g_lab)
    with np.errstate(divide="ignore", invalid="ignore"):
        k_mag = np.where(g_dot_k < 0, -g_sq / (2.0 * g_dot_k), np.nan)  # 1/Å
    energies = _HC_KEV_ANGSTROM * k_mag / (2.0 * np.pi)

    in_band = (
        np.isfinite(energies)
        & (energies >= beam.energy_min_kev)
        & (energies <= beam.energy_max_kev)
    )

    spots: List[LaueSpot] = []
    if not np.any(in_band):
        return spots

    k_out = k_mag[:, None] * k_in[None, :] + g_lab
    with np.errstate(invalid="ignore"):
        k_out_unit = k_out / np.linalg.norm(k_out, axis=1, keepdims=True)

    # intersect the diffracted rays (from the lab origin) with the detector plane
    cx, cz = detector.center
    u_y = k_out_unit[:, 1]
    hits = in_band & (u_y > 1e-6)
    with np.errstate(divide="ignore", invalid="ignore"):
        t = np.where(hits, detector.distance / u_y, np.nan)
    x = t * k_out_unit[:, 0]
    z = t * k_out_unit[:, 2]
    col = (x - cx) / detector.pixel_size + (detector.n_cols - 1) / 2.0
    row = (z - cz) / detector.pixel_size + (detector.n_rows - 1) / 2.0
    on_detector = hits & (row >= 0) & (row <= detector.n_rows - 1) & (col >= 0) & (col <= detector.n_cols - 1)

    if not np.any(on_detector):
        return spots

    # kinematic-ish intensity: |F|^2 falling with energy squared (spectral weight)
    with np.errstate(divide="ignore", invalid="ignore"):
        intensity = np.where(on_detector, magnitudes**2 / np.maximum(energies, 1e-6) ** 2, 0.0)
    max_intensity = float(intensity.max())
    if max_intensity <= 0:
        return spots
    selected = on_detector & (intensity >= min_relative_intensity * max_intensity)

    for index in np.nonzero(selected)[0]:
        spots.append(
            LaueSpot(
                hkl=tuple(int(v) for v in hkl_list[index]),
                energy_kev=float(energies[index]),
                row=float(row[index]),
                col=float(col[index]),
                direction=tuple(float(v) for v in k_out_unit[index]),
                intensity=float(intensity[index] / max_intensity),
            )
        )
    spots.sort(key=lambda s: s.intensity, reverse=True)
    return spots

"""Wire-scan forward model.

Generates the detector image stack a wire scan would record for a given
:class:`~repro.synthetic.sample.DepthSourceField`: at every wire position the
wire occludes, for each detector row, the rays coming from part of the
illuminated depth range; the recorded image is the visibility-weighted depth
integral of the source.

The occlusion test is purely geometric (segment-vs-circle intersection in the
(y, z) plane, :meth:`repro.geometry.wire.Wire.occludes`) and shares no code
with the tangent-depth mapping the reconstruction uses, so forward-model →
reconstruction round trips are a meaningful validation of the whole chain.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.depth_mapping import critical_wire_z_for_depth
from repro.core.stack import WireScanStack
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.scan import WireScan
from repro.geometry.wire import Wire
from repro.synthetic.sample import DepthSourceField
from repro.utils.validation import ValidationError

__all__ = ["visibility_matrix", "simulate_wire_scan", "design_scan_for_depth_range"]


def visibility_matrix(
    scan: WireScan,
    detector: Detector,
    depth_samples: np.ndarray,
    subpixel: int = 1,
) -> np.ndarray:
    """Visibility of each depth sample to each detector row at each wire position.

    Parameters
    ----------
    scan:
        Wire scan (positions + wire radius).
    detector:
        Canonical detector (all pixels of a row share the occlusion geometry).
    depth_samples:
        Depth positions of the source samples, shape ``(n_depths,)``.
    subpixel:
        Number of sub-row sample points across the pixel height; values > 1
        produce fractional visibilities near the shadow edge (more realistic
        finite-pixel behaviour).

    Returns
    -------
    numpy.ndarray
        Array of shape ``(n_positions, n_rows, n_depths)`` with values in
        [0, 1]: the fraction of the pixel row that sees the given depth.
    """
    if not detector.is_canonical:
        raise ValidationError("visibility_matrix requires an untilted detector")
    if subpixel < 1:
        raise ValidationError("subpixel must be >= 1")
    depth_samples = np.asarray(depth_samples, dtype=np.float64)

    wire = scan.wire
    positions = scan.positions  # (n_positions, 2)
    rows_yz = detector.row_yz()  # (n_rows, 2)

    # sub-row sampling points across the pixel height (offsets in z)
    if subpixel == 1:
        offsets = np.array([0.0])
    else:
        offsets = (np.arange(subpixel) + 0.5) / subpixel - 0.5
        offsets = offsets * detector.pixel_size

    n_positions = positions.shape[0]
    n_rows = rows_yz.shape[0]
    n_depths = depth_samples.size
    visibility = np.zeros((n_positions, n_rows, n_depths), dtype=np.float64)

    source_yz = np.stack(
        [np.zeros(n_depths), depth_samples], axis=-1
    )  # (n_depths, 2): sources on the beam

    for position_index in range(n_positions):
        center = positions[position_index]  # (2,)
        acc = np.zeros((n_rows, n_depths), dtype=np.float64)
        for offset in offsets:
            pixel_yz = rows_yz.copy()
            pixel_yz[:, 1] += offset
            blocked = wire.occludes(
                source_yz[None, :, :],          # (1, n_depths, 2)
                pixel_yz[:, None, :],            # (n_rows, 1, 2)
                center[None, None, :],           # broadcast
            )
            acc += (~blocked).astype(np.float64)
        visibility[position_index] = acc / len(offsets)
    return visibility


def simulate_wire_scan(
    source: DepthSourceField,
    scan: WireScan,
    detector: Detector,
    beam: Optional[Beam] = None,
    subpixel: int = 1,
    pixel_mask: Optional[np.ndarray] = None,
    metadata: Optional[dict] = None,
) -> WireScanStack:
    """Simulate the detector image stack recorded during a wire scan.

    Parameters
    ----------
    source:
        The emitting sample.
    scan, detector, beam:
        Experiment geometry (the beam must be canonical).
    subpixel:
        Sub-row sampling of the visibility (see :func:`visibility_matrix`).
    pixel_mask:
        Optional mask stored with the stack (does not affect the simulation).
    metadata:
        Metadata dictionary stored on the stack.
    """
    beam = beam if beam is not None else Beam()
    if not beam.is_canonical():
        raise ValidationError("simulate_wire_scan requires the canonical beam")
    if (source.n_rows, source.n_cols) != detector.shape:
        raise ValidationError(
            f"source field shape {(source.n_rows, source.n_cols)} does not match detector {detector.shape}"
        )

    visibility = visibility_matrix(scan, detector, source.depth_samples, subpixel=subpixel)
    # images[p, r, c] = sum_d visibility[p, r, d] * source[d, r, c]
    images = np.einsum("prd,drc->prc", visibility, source.source, optimize=True)

    return WireScanStack(
        images=images,
        scan=scan,
        detector=detector,
        beam=beam,
        pixel_mask=pixel_mask,
        metadata=metadata or {"generator": "repro.synthetic.simulate_wire_scan"},
    )


def design_scan_for_depth_range(
    detector: Detector,
    depth_range: tuple,
    wire: Optional[Wire] = None,
    wire_height: float = 1_500.0,
    n_points: int = 121,
    margin: float = 25.0,
) -> WireScan:
    """Choose a linear wire scan that depth-resolves *depth_range* on the whole detector.

    The scan must start with the wire's leading edge short of every ray from
    the shallowest depth to any detector row, and end once the leading edge
    has passed every ray from the deepest depth — while staying short enough
    that the trailing edge never starts releasing rays (single-edge regime,
    which keeps the signed-difference analysis exact).  If the required
    travel exceeds the wire diameter, a wire with a larger radius is chosen
    automatically (physically: use a thicker wire, as the real experiments do
    when scanning large fields of view).

    Returns
    -------
    WireScan
        A linear scan at ``wire_height`` covering the required z range.
    """
    depth_lo, depth_hi = float(depth_range[0]), float(depth_range[1])
    if depth_hi <= depth_lo:
        raise ValidationError("depth_range must be increasing")
    wire = wire if wire is not None else Wire()
    rows_yz = detector.row_yz()
    pixel_y = rows_yz[:, 0]
    pixel_z = rows_yz[:, 1]

    # Critical wire-centre z for the leading edge over all (row, depth) corners
    corners = []
    for depth in (depth_lo, depth_hi):
        corners.append(
            critical_wire_z_for_depth(depth, pixel_y, pixel_z, wire_height, wire.radius, edge=+1)
        )
    corner_values = np.concatenate(corners)
    z_start = float(np.min(corner_values)) - margin
    z_stop = float(np.max(corner_values)) + margin
    travel = z_stop - z_start

    # Single-edge regime requires the wire diameter to exceed the travel.
    if 2.0 * wire.radius <= travel:
        wire = Wire(radius=0.75 * travel, axis=wire.axis)
        # recompute the corners with the larger wire (the tangent offsets grow)
        corners = []
        for depth in (depth_lo, depth_hi):
            corners.append(
                critical_wire_z_for_depth(depth, pixel_y, pixel_z, wire_height, wire.radius, edge=+1)
            )
        corner_values = np.concatenate(corners)
        z_start = float(np.min(corner_values)) - margin
        z_stop = float(np.max(corner_values)) + margin

    return WireScan.linear(
        wire=wire,
        n_points=int(n_points),
        height=wire_height,
        z_start=z_start,
        z_stop=z_stop,
    )

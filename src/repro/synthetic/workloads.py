"""Benchmark workload generation.

The paper's experiments are defined by two knobs:

* **data-set size** — 2.1, 2.7, 3.6 and 5.2 GB detector cubes (Fig. 8);
* **pixel percentage** — 25 %, 50 % and 100 % of pixels processed (Figs. 4, 9).

``make_benchmark_workload`` produces synthetic stacks with the same byte-size
*ratios*, scaled by a configurable factor so that the sweeps run on a laptop
in seconds, plus the ground-truth source field so that accuracy can be
checked alongside speed.  The analytic performance model is used elsewhere to
extrapolate the measured behaviour back to the paper's hardware scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.depth_grid import DepthGrid
from repro.core.stack import WireScanStack
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.wire import Wire
from repro.synthetic.forward_model import design_scan_for_depth_range, simulate_wire_scan
from repro.synthetic.noise import apply_poisson
from repro.synthetic.sample import DepthSourceField, GrainSample
from repro.utils.validation import ValidationError

__all__ = [
    "PAPER_DATASET_SIZES_GB",
    "BenchmarkWorkload",
    "make_benchmark_workload",
    "make_point_source_stack",
    "make_grain_sample_stack",
]

#: The four data-set sizes of Fig. 8 (gigabytes).
PAPER_DATASET_SIZES_GB: Dict[str, float] = {
    "2.1G": 2.1,
    "2.7G": 2.7,
    "3.6G": 3.6,
    "5.2G": 5.2,
}

#: Default scale factor from paper bytes to benchmark bytes: the 5.2 GB cube
#: becomes ~0.65 MB, which the scalar CPU baseline reconstructs in a few
#: seconds — large enough to show the scaling trends, small enough to sweep.
DEFAULT_BENCH_SCALE = 1.0 / 8192.0


@dataclass
class BenchmarkWorkload:
    """A generated benchmark input with its ground truth and bookkeeping."""

    label: str
    stack: WireScanStack
    source: DepthSourceField
    grid: DepthGrid
    pixel_fraction: float
    target_bytes: int

    @property
    def actual_bytes(self) -> int:
        """Actual byte size of the generated cube."""
        return self.stack.nbytes

    @property
    def n_elements(self) -> int:
        """Number of (pixel, step) reconstruction elements."""
        return self.stack.n_steps * self.stack.n_rows * self.stack.n_cols

    def describe(self) -> str:
        """One-line description used by the benchmark reports."""
        return (
            f"{self.label}: cube {self.stack.shape} = {self.actual_bytes / 1e6:.2f} MB "
            f"(target {self.target_bytes / 1e6:.2f} MB), "
            f"pixel fraction {self.pixel_fraction:.0%}, "
            f"{self.n_elements} elements"
        )


# --------------------------------------------------------------------------- #
def _choose_cube_shape(
    target_bytes: float,
    n_positions: int,
    col_row_ratio: float = 2.0,
    min_rows: int = 4,
    min_cols: int = 8,
) -> Tuple[int, int]:
    """Pick (n_rows, n_cols) so the cube is close to *target_bytes*."""
    target_elements = max(1.0, target_bytes / 8.0)
    per_image = target_elements / n_positions
    rows = int(round(np.sqrt(per_image / col_row_ratio)))
    rows = max(min_rows, rows)
    cols = max(min_cols, int(round(per_image / rows)))
    return rows, cols


def _random_blob_source(
    detector: Detector,
    depth_samples: np.ndarray,
    rng: np.random.Generator,
    n_spots: int,
    peak_intensity: float = 2000.0,
    spot_sigma_pixels: float = 1.5,
) -> DepthSourceField:
    """Laue-like source field: Gaussian spots, each emitting from one depth band."""
    n_rows, n_cols = detector.shape
    source = np.zeros((depth_samples.size, n_rows, n_cols), dtype=np.float64)
    row_coords = np.arange(n_rows, dtype=np.float64)[:, None]
    col_coords = np.arange(n_cols, dtype=np.float64)[None, :]

    depth_lo, depth_hi = depth_samples[0], depth_samples[-1]
    for _ in range(n_spots):
        spot_row = rng.uniform(0, n_rows - 1)
        spot_col = rng.uniform(0, n_cols - 1)
        center_depth = rng.uniform(depth_lo, depth_hi)
        half_width = rng.uniform(0.03, 0.15) * (depth_hi - depth_lo)
        weights = np.exp(-0.5 * ((depth_samples - center_depth) / max(half_width, 1e-6)) ** 2)
        weights /= weights.sum()
        blob = np.exp(
            -0.5 * ((row_coords - spot_row) ** 2 + (col_coords - spot_col) ** 2) / spot_sigma_pixels**2
        )
        source += peak_intensity * rng.uniform(0.3, 1.0) * weights[:, None, None] * blob[None, :, :]
    return DepthSourceField(depth_samples=depth_samples, source=source)


def _pixel_fraction_mask(
    shape: Tuple[int, int], fraction: float, rng: np.random.Generator
) -> Optional[np.ndarray]:
    """Random mask enabling the requested fraction of pixels (None for 100 %)."""
    if not (0.0 < fraction <= 1.0):
        raise ValidationError("pixel fraction must lie in (0, 1]")
    if fraction >= 1.0:
        return None
    n_rows, n_cols = shape
    n_total = n_rows * n_cols
    n_active = max(1, int(round(fraction * n_total)))
    flat = np.zeros(n_total, dtype=bool)
    flat[rng.choice(n_total, size=n_active, replace=False)] = True
    return flat.reshape(shape)


# --------------------------------------------------------------------------- #
def make_benchmark_workload(
    size_label: str = "2.1G",
    pixel_fraction: float = 1.0,
    scale: float = DEFAULT_BENCH_SCALE,
    n_positions: int = 49,
    depth_range: Tuple[float, float] = (0.0, 100.0),
    n_depth_bins: int = 40,
    n_spots_per_mb: float = 12.0,
    noise: bool = False,
    seed: int = 0,
) -> BenchmarkWorkload:
    """Generate a scaled stand-in for one of the paper's benchmark data sets.

    Parameters
    ----------
    size_label:
        One of the paper's size labels (``"2.1G"`` … ``"5.2G"``) or a string
        of the form ``"<float>MB"`` for an explicit target.
    pixel_fraction:
        Fraction of detector pixels enabled (the Fig. 4 / Fig. 9 knob).
    scale:
        Byte scale factor from the paper's sizes to the generated cube.
    n_positions:
        Number of wire positions in the scan.
    depth_range, n_depth_bins:
        Reconstructed depth range and binning (also used for the ground truth).
    n_spots_per_mb:
        Diffraction-spot density; keeps the sparsity roughly constant across
        data-set sizes.
    noise:
        Apply Poisson noise to the generated images.
    seed:
        Seed for the workload's random generator (workloads are deterministic
        given their arguments).
    """
    if size_label in PAPER_DATASET_SIZES_GB:
        target_bytes = PAPER_DATASET_SIZES_GB[size_label] * 1024**3 * scale
    elif size_label.upper().endswith("MB"):
        target_bytes = float(size_label[:-2]) * 1e6
    else:
        raise ValidationError(
            f"unknown size label {size_label!r}; use one of {sorted(PAPER_DATASET_SIZES_GB)} or '<x>MB'"
        )

    rng = np.random.default_rng(seed + hash(size_label) % 10_000)
    n_rows, n_cols = _choose_cube_shape(target_bytes, n_positions)
    detector = Detector(n_rows=n_rows, n_cols=n_cols, pixel_size=200.0, distance=510_000.0)
    beam = Beam()
    grid = DepthGrid.from_range(depth_range[0], depth_range[1], n_depth_bins)

    depth_samples = np.linspace(depth_range[0], depth_range[1], max(2 * n_depth_bins, 32), endpoint=False)
    depth_samples += (depth_samples[1] - depth_samples[0]) / 2.0

    n_spots = max(3, int(round(n_spots_per_mb * target_bytes / 1e6)))
    source = _random_blob_source(detector, depth_samples, rng, n_spots)

    scan = design_scan_for_depth_range(
        detector, depth_range, wire=Wire(radius=26.0), n_points=n_positions
    )
    mask = _pixel_fraction_mask(detector.shape, pixel_fraction, rng)
    stack = simulate_wire_scan(
        source,
        scan,
        detector,
        beam,
        pixel_mask=mask,
        metadata={
            "workload": size_label,
            "pixel_fraction": pixel_fraction,
            "scale": scale,
            "seed": seed,
        },
    )
    if noise:
        stack = apply_poisson(stack, rng)

    return BenchmarkWorkload(
        label=size_label,
        stack=stack,
        source=source,
        grid=grid,
        pixel_fraction=pixel_fraction,
        target_bytes=int(target_bytes),
    )


def make_point_source_stack(
    depth: float = 40.0,
    n_rows: int = 8,
    n_cols: int = 8,
    n_positions: int = 81,
    depth_range: Tuple[float, float] = (0.0, 100.0),
    intensity: float = 1000.0,
    n_depth_samples: int = 64,
) -> Tuple[WireScanStack, DepthSourceField]:
    """Small single-depth test stack (used heavily by the test-suite)."""
    detector = Detector(n_rows=n_rows, n_cols=n_cols, pixel_size=200.0, distance=510_000.0)
    depth_samples = np.linspace(depth_range[0], depth_range[1], n_depth_samples, endpoint=False)
    depth_samples += (depth_samples[1] - depth_samples[0]) / 2.0
    source = DepthSourceField.point_source(detector, depth, depth_samples, intensity=intensity)
    scan = design_scan_for_depth_range(detector, depth_range, n_points=n_positions)
    stack = simulate_wire_scan(source, scan, detector, Beam())
    return stack, source


def make_grain_sample_stack(
    material: str = "Cu",
    n_grains: int = 3,
    n_rows: int = 32,
    n_cols: int = 32,
    n_positions: int = 101,
    depth_range: Tuple[float, float] = (0.0, 120.0),
    seed: int = 7,
    noise: bool = False,
    detector_span: float = 410_000.0,
    wire_height: float = 500.0,
) -> Tuple[WireScanStack, DepthSourceField, GrainSample]:
    """Full physics path: random grain column → Laue spots → wire scan stack.

    The detector covers *detector_span* micrometres (the real 34-ID area
    detector is ~410 mm across) regardless of the pixel count, so the Laue
    patterns of randomly oriented grains reliably intersect it; the wire sits
    *wire_height* above the sample so the wire step — not the wire diameter —
    sets the depth resolution.  If a randomly drawn grain column happens to
    diffract entirely outside the detector, the next seed is tried (bounded).
    """
    detector = Detector(
        n_rows=n_rows, n_cols=n_cols, pixel_size=detector_span / max(n_rows, n_cols), distance=510_000.0
    )
    beam = Beam()
    depth_samples = np.linspace(depth_range[0], depth_range[1], 96, endpoint=False)
    depth_samples += (depth_samples[1] - depth_samples[0]) / 2.0

    sample = None
    source = None
    for attempt in range(16):
        rng = np.random.default_rng(seed + attempt)
        sample = GrainSample.random_column(material, n_grains, depth_range, rng)
        source = sample.to_source_field(detector, beam, depth_samples, max_hkl=6, background=0.0)
        if source.source.sum() > 0:
            break
    if source is None or source.source.sum() == 0:
        raise ValidationError(
            "could not generate a grain sample whose Laue pattern hits the detector"
        )

    scan = design_scan_for_depth_range(
        detector, depth_range, n_points=n_positions, wire_height=wire_height
    )
    stack = simulate_wire_scan(source, scan, detector, beam)
    if noise:
        stack = apply_poisson(stack, np.random.default_rng(seed))
    return stack, source, sample

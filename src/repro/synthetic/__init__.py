"""Synthetic wire-scan data generation.

The paper's evaluation data are 2.1–5.2 GB HDF5 image stacks from the 34-ID
detector, which are not publicly available.  This subpackage replaces them
with a physics-based forward model:

1. a **sample model** — grains at known depths along the beam, each producing
   Laue spots on the detector (via :mod:`repro.crystallography`), or an
   arbitrary per-pixel depth-emission field;
2. the **wire-scan forward model** — for every wire position, the visibility
   of each depth sample to each detector row is computed from the exact
   occlusion geometry, and the recorded image is the visibility-weighted
   depth integral of the source field;
3. optional **noise** (Poisson counting, background, hot pixels);
4. a **workload generator** that produces stacks with the byte-size ratios
   and pixel-percentage masks of the paper's experiments (scaled to run on a
   laptop), together with their ground truth.

Because the forward model uses the geometric occlusion test while the
reconstruction uses the tangent-depth mapping, agreement between the
reconstructed and true depth profiles is a genuine end-to-end validation.
"""

from repro.synthetic.sample import DepthSourceField, Grain, GrainSample
from repro.synthetic.forward_model import simulate_wire_scan, visibility_matrix, design_scan_for_depth_range
from repro.synthetic.noise import add_background, add_hot_pixels, apply_poisson
from repro.synthetic.workloads import (
    PAPER_DATASET_SIZES_GB,
    BenchmarkWorkload,
    make_benchmark_workload,
    make_point_source_stack,
    make_grain_sample_stack,
)

__all__ = [
    "DepthSourceField",
    "Grain",
    "GrainSample",
    "simulate_wire_scan",
    "visibility_matrix",
    "design_scan_for_depth_range",
    "apply_poisson",
    "add_background",
    "add_hot_pixels",
    "PAPER_DATASET_SIZES_GB",
    "BenchmarkWorkload",
    "make_benchmark_workload",
    "make_point_source_stack",
    "make_grain_sample_stack",
]

"""Sample models: what emits intensity at which depth.

Two levels of description are provided:

* :class:`DepthSourceField` — the fully general description: an emission
  intensity for every (depth sample, detector pixel) pair.  The forward model
  consumes this directly and tests construct it by hand.
* :class:`GrainSample` — a physically motivated generator: a stack of grains
  along the beam, each with an orientation and a depth extent, whose Laue
  spots illuminate small regions of the detector from their grain's depth
  interval.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.crystallography.laue import predict_laue_spots
from repro.crystallography.materials import Material, get_material
from repro.crystallography.orientation import Orientation
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.utils.validation import ValidationError

__all__ = ["DepthSourceField", "Grain", "GrainSample"]


@dataclass
class DepthSourceField:
    """Emission intensity as a function of depth and detector pixel.

    Parameters
    ----------
    depth_samples:
        Strictly increasing depth sample positions, shape ``(n_depths,)``.
    source:
        Emission array of shape ``(n_depths, n_rows, n_cols)`` in arbitrary
        intensity units; ``source[d, r, c]`` is the intensity pixel (r, c)
        would record from depth ``depth_samples[d]`` with no wire present.
    """

    depth_samples: np.ndarray
    source: np.ndarray

    def __post_init__(self):
        self.depth_samples = np.asarray(self.depth_samples, dtype=np.float64)
        self.source = np.asarray(self.source, dtype=np.float64)
        if self.depth_samples.ndim != 1 or self.depth_samples.size < 1:
            raise ValidationError("depth_samples must be a non-empty 1-D array")
        if np.any(np.diff(self.depth_samples) <= 0):
            raise ValidationError("depth_samples must be strictly increasing")
        if self.source.ndim != 3 or self.source.shape[0] != self.depth_samples.size:
            raise ValidationError(
                "source must have shape (n_depths, n_rows, n_cols) matching depth_samples, "
                f"got {self.source.shape}"
            )
        if np.any(self.source < 0):
            raise ValidationError("source intensities must be non-negative")

    # ------------------------------------------------------------------ #
    @property
    def n_depths(self) -> int:
        """Number of depth samples."""
        return self.depth_samples.size

    @property
    def n_rows(self) -> int:
        """Detector rows."""
        return self.source.shape[1]

    @property
    def n_cols(self) -> int:
        """Detector columns."""
        return self.source.shape[2]

    @property
    def depth_range(self) -> tuple:
        """``(min, max)`` of the depth samples."""
        return (float(self.depth_samples[0]), float(self.depth_samples[-1]))

    def total_image(self) -> np.ndarray:
        """Wire-free detector image (depth integral of the source)."""
        return self.source.sum(axis=0)

    def true_depth_profile(self, row: int, col: int) -> np.ndarray:
        """Ground-truth emission vs depth for one pixel."""
        return self.source[:, int(row), int(col)].copy()

    def true_centroid_depth(self) -> np.ndarray:
        """Ground-truth intensity-weighted mean depth per pixel (NaN when dark)."""
        total = self.source.sum(axis=0)
        with np.errstate(invalid="ignore", divide="ignore"):
            centroid = np.tensordot(self.depth_samples, self.source, axes=(0, 0)) / total
        return np.where(total > 0, centroid, np.nan)

    # ------------------------------------------------------------------ #
    @classmethod
    def point_source(
        cls,
        detector: Detector,
        depth: float,
        depth_samples: np.ndarray,
        intensity: float = 1000.0,
        rows: Optional[Sequence[int]] = None,
        cols: Optional[Sequence[int]] = None,
    ) -> "DepthSourceField":
        """A delta-like emitter at one depth illuminating selected pixels."""
        depth_samples = np.asarray(depth_samples, dtype=np.float64)
        source = np.zeros((depth_samples.size, detector.n_rows, detector.n_cols))
        depth_index = int(np.argmin(np.abs(depth_samples - depth)))
        rows = range(detector.n_rows) if rows is None else rows
        cols = range(detector.n_cols) if cols is None else cols
        for r in rows:
            for c in cols:
                source[depth_index, int(r), int(c)] = intensity
        return cls(depth_samples=depth_samples, source=source)


@dataclass(frozen=True)
class Grain:
    """One grain of the sample: a depth interval with one orientation."""

    depth_start: float
    depth_stop: float
    orientation: Orientation
    emission: float = 1000.0

    def __post_init__(self):
        if self.depth_stop <= self.depth_start:
            raise ValidationError("grain depth_stop must exceed depth_start")
        if self.emission <= 0:
            raise ValidationError("grain emission must be positive")

    @property
    def thickness(self) -> float:
        """Depth extent of the grain."""
        return self.depth_stop - self.depth_start

    @property
    def center_depth(self) -> float:
        """Mid-depth of the grain."""
        return 0.5 * (self.depth_start + self.depth_stop)


@dataclass
class GrainSample:
    """A columnar stack of grains along the incident beam.

    Parameters
    ----------
    material:
        Crystal structure shared by all grains (a ``Material`` or its symbol).
    grains:
        The grains; their depth intervals may overlap (e.g. sub-grains).
    """

    material: Material | str
    grains: List[Grain] = field(default_factory=list)

    def __post_init__(self):
        if isinstance(self.material, str):
            self.material = get_material(self.material)
        if not self.grains:
            raise ValidationError("GrainSample needs at least one grain")

    # ------------------------------------------------------------------ #
    @classmethod
    def random_column(
        cls,
        material: Material | str,
        n_grains: int,
        depth_range: tuple,
        rng: np.random.Generator,
        emission: float = 1000.0,
        mosaic_spread_deg: float = 5.0,
    ) -> "GrainSample":
        """Random columnar grain structure filling *depth_range*."""
        if n_grains < 1:
            raise ValidationError("n_grains must be >= 1")
        lo, hi = float(depth_range[0]), float(depth_range[1])
        if hi <= lo:
            raise ValidationError("depth_range must be increasing")
        boundaries = np.sort(rng.uniform(lo, hi, size=n_grains - 1)) if n_grains > 1 else np.array([])
        edges = np.concatenate([[lo], boundaries, [hi]])
        base = Orientation.random(rng)
        grains = []
        for grain_index in range(n_grains):
            tilt_axis = rng.normal(size=3)
            tilt_angle = np.radians(mosaic_spread_deg) * rng.random()
            orientation = base.perturbed(tilt_axis, tilt_angle)
            grains.append(
                Grain(
                    depth_start=float(edges[grain_index]),
                    depth_stop=float(edges[grain_index + 1]),
                    orientation=orientation,
                    emission=emission * (0.5 + rng.random()),
                )
            )
        return cls(material=material, grains=grains)

    # ------------------------------------------------------------------ #
    def to_source_field(
        self,
        detector: Detector,
        beam: Beam,
        depth_samples: np.ndarray,
        spot_sigma_pixels: float = 1.5,
        max_hkl: int = 5,
        background: float = 0.0,
    ) -> DepthSourceField:
        """Render the grains into a :class:`DepthSourceField`.

        Each grain's Laue spots are painted as Gaussian blobs on the detector;
        every blob emits uniformly from the grain's depth interval.  An
        optional flat background emits uniformly from all depths.
        """
        depth_samples = np.asarray(depth_samples, dtype=np.float64)
        n_rows, n_cols = detector.shape
        source = np.zeros((depth_samples.size, n_rows, n_cols), dtype=np.float64)

        row_coords = np.arange(n_rows, dtype=np.float64)[:, None]
        col_coords = np.arange(n_cols, dtype=np.float64)[None, :]

        for grain in self.grains:
            inside = (depth_samples >= grain.depth_start) & (depth_samples < grain.depth_stop)
            if not np.any(inside):
                # grain thinner than the sampling: attach it to the nearest sample
                nearest = int(np.argmin(np.abs(depth_samples - grain.center_depth)))
                inside = np.zeros(depth_samples.size, dtype=bool)
                inside[nearest] = True
            depth_weight = inside.astype(np.float64)
            depth_weight /= depth_weight.sum()

            spots = predict_laue_spots(
                self.material, grain.orientation, beam, detector, max_hkl=max_hkl
            )
            if not spots:
                continue
            footprint = np.zeros((n_rows, n_cols), dtype=np.float64)
            for spot in spots:
                blob = np.exp(
                    -0.5
                    * (
                        (row_coords - spot.row) ** 2 + (col_coords - spot.col) ** 2
                    )
                    / spot_sigma_pixels**2
                )
                footprint += spot.intensity * blob
            source += grain.emission * depth_weight[:, None, None] * footprint[None, :, :]

        if background > 0:
            source += background / depth_samples.size
        return DepthSourceField(depth_samples=depth_samples, source=source)

    def true_grain_boundaries(self) -> np.ndarray:
        """Sorted unique grain boundary depths (useful for plots/validation)."""
        edges = set()
        for grain in self.grains:
            edges.add(grain.depth_start)
            edges.add(grain.depth_stop)
        return np.array(sorted(edges))

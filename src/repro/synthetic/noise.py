"""Detector noise models.

The reconstruction operates on differences of adjacent images, so detector
noise matters: Poisson counting noise sets the depth-profile noise floor,
constant background cancels in the differences, and hot pixels produce
spurious depth signal unless masked.  These generators let tests and examples
exercise those behaviours.
"""

from __future__ import annotations

import numpy as np

from repro.core.stack import WireScanStack
from repro.utils.validation import ValidationError

__all__ = ["apply_poisson", "add_background", "add_hot_pixels"]


def apply_poisson(stack: WireScanStack, rng: np.random.Generator, scale: float = 1.0) -> WireScanStack:
    """Replace intensities with Poisson counts.

    Parameters
    ----------
    stack:
        Input (noise-free) stack.
    rng:
        Random generator.
    scale:
        Counts per intensity unit; larger values mean better statistics.
    """
    if scale <= 0:
        raise ValidationError("scale must be positive")
    expectation = np.clip(stack.images * scale, 0.0, None)
    noisy = rng.poisson(expectation).astype(np.float64) / scale
    return WireScanStack(
        images=noisy,
        scan=stack.scan,
        detector=stack.detector,
        beam=stack.beam,
        pixel_mask=stack.pixel_mask,
        metadata={**stack.metadata, "noise": "poisson", "poisson_scale": scale},
    )


def add_background(stack: WireScanStack, level: float) -> WireScanStack:
    """Add a constant background level to every pixel of every image.

    A constant background cancels exactly in adjacent-image differences, so
    the reconstruction should be unaffected — a property the test-suite
    checks.
    """
    if level < 0:
        raise ValidationError("background level must be non-negative")
    return WireScanStack(
        images=stack.images + level,
        scan=stack.scan,
        detector=stack.detector,
        beam=stack.beam,
        pixel_mask=stack.pixel_mask,
        metadata={**stack.metadata, "background_level": level},
    )


def add_hot_pixels(
    stack: WireScanStack,
    rng: np.random.Generator,
    fraction: float = 1e-3,
    amplitude: float = 1e4,
) -> WireScanStack:
    """Set a random subset of pixels to a large constant value in every image.

    Returns a stack whose ``pixel_mask`` excludes the hot pixels, so the
    reconstruction can demonstrate masking them out.
    """
    if not (0.0 <= fraction <= 1.0):
        raise ValidationError("fraction must lie in [0, 1]")
    n_rows, n_cols = stack.detector.shape
    n_hot = int(round(fraction * n_rows * n_cols))
    images = stack.images.copy()
    mask = stack.effective_mask()
    if n_hot > 0:
        flat_indices = rng.choice(n_rows * n_cols, size=n_hot, replace=False)
        rows, cols = np.unravel_index(flat_indices, (n_rows, n_cols))
        images[:, rows, cols] = amplitude
        mask[rows, cols] = False
    return WireScanStack(
        images=images,
        scan=stack.scan,
        detector=stack.detector,
        beam=stack.beam,
        pixel_mask=mask,
        metadata={**stack.metadata, "hot_pixels": n_hot},
    )

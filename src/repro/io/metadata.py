"""Experiment metadata carried alongside the image data."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict

__all__ = ["ExperimentMetadata"]


@dataclass
class ExperimentMetadata:
    """Descriptive metadata for a wire-scan measurement.

    All fields are optional free-form strings/numbers; they are stored as
    attributes in the h5lite container and round-trip unchanged.  The fields
    mirror what the 34-ID acquisition writes into its HDF5 files (beamline,
    sample, scan identifiers and detector exposure settings).
    """

    beamline: str = "34-ID-E (simulated)"
    sample_name: str = "synthetic"
    scan_id: str = ""
    operator: str = ""
    exposure_seconds: float = 1.0
    incident_energy_band_kev: tuple = (7.0, 30.0)
    comments: str = ""
    extra: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        """Flatten into a JSON-serialisable dictionary."""
        data = asdict(self)
        extra = data.pop("extra")
        data["incident_energy_band_kev"] = list(self.incident_energy_band_kev)
        for key, value in extra.items():
            data[f"extra_{key}"] = value
        return data

    @classmethod
    def from_dict(cls, data: Dict) -> "ExperimentMetadata":
        """Rebuild from a dictionary produced by :meth:`to_dict`."""
        known = {f for f in cls.__dataclass_fields__ if f != "extra"}
        kwargs = {}
        extra = {}
        for key, value in data.items():
            if key in known:
                kwargs[key] = value
            elif key.startswith("extra_"):
                extra[key[len("extra_"):]] = value
        if "incident_energy_band_kev" in kwargs:
            kwargs["incident_energy_band_kev"] = tuple(kwargs["incident_energy_band_kev"])
        return cls(extra=extra, **kwargs)

"""Plain-text depth-profile output.

The original program writes reconstructed depth profiles to text files on
the host side ("reading data from HDF5 files and writing result back to text
files are still running on CPU").  The format here is a simple commented
column file: one row per depth bin, one column per requested pixel.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.core.result import DepthResolvedStack

__all__ = ["write_depth_profiles", "read_depth_profiles"]


def write_depth_profiles(
    path,
    result: DepthResolvedStack,
    pixels: Sequence[Tuple[int, int]],
) -> None:
    """Write depth profiles of selected pixels as a commented column file.

    Parameters
    ----------
    path:
        Output file path.
    result:
        The depth-resolved stack.
    pixels:
        Sequence of ``(row, col)`` pixel indices.
    """
    pixels = [(int(r), int(c)) for r, c in pixels]
    depths = result.grid.centers
    columns = [result.depth_profile(r, c) for r, c in pixels]

    with open(path, "w", encoding="utf-8") as fh:
        fh.write("# repro depth profiles\n")
        fh.write(f"# depth_start = {result.grid.start!r}\n")
        fh.write(f"# depth_step = {result.grid.step!r}\n")
        fh.write(f"# n_bins = {result.grid.n_bins}\n")
        fh.write("# pixels = " + " ".join(f"({r},{c})" for r, c in pixels) + "\n")
        header = "depth_um " + " ".join(f"I_r{r}_c{c}" for r, c in pixels)
        fh.write("# " + header + "\n")
        for k, depth in enumerate(depths):
            row_values = " ".join(f"{col[k]:.10e}" for col in columns)
            fh.write(f"{depth:.6f} {row_values}\n")


def read_depth_profiles(path) -> Tuple[np.ndarray, Dict[Tuple[int, int], np.ndarray]]:
    """Read a file written by :func:`write_depth_profiles`.

    Returns
    -------
    (depths, profiles):
        The depth-bin centres and a mapping ``(row, col) -> profile array``.
    """
    pixels: List[Tuple[int, int]] = []
    depths: List[float] = []
    values: List[List[float]] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                if line.startswith("# pixels ="):
                    tokens = line.split("=", 1)[1].split()
                    for token in tokens:
                        r, c = token.strip("()").split(",")
                        pixels.append((int(r), int(c)))
                continue
            parts = line.split()
            depths.append(float(parts[0]))
            values.append([float(v) for v in parts[1:]])

    depth_arr = np.asarray(depths, dtype=np.float64)
    value_arr = np.asarray(values, dtype=np.float64)
    profiles = {pixel: value_arr[:, i] for i, pixel in enumerate(pixels)}
    return depth_arr, profiles

"""Reading and writing experiment data as h5lite containers.

File schema (groups/datasets), loosely modelled on the 34-ID HDF5 layout:

``/entry``
    root group with experiment attributes
``/entry/data/images``
    ``(n_positions, n_rows, n_cols)`` float64 intensity cube, chunked along
    the wire-position axis
``/entry/data/pixel_mask``
    optional ``(n_rows, n_cols)`` uint8 mask
``/entry/wire/positions_yz``
    ``(n_positions, 2)`` wire-centre trajectory
``/entry/wire`` attributes: ``radius``
``/entry/detector`` attributes: ``n_rows``, ``n_cols``, ``pixel_size``,
    ``distance``, ``center``
``/entry/beam`` attributes: ``direction``, ``origin``, energy band

Depth-resolved results are stored under ``/entry/depth_resolved`` with the
grid parameters as attributes.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.depth_grid import DepthGrid
from repro.core.result import DepthResolvedStack
from repro.core.stack import WireScanStack
from repro.geometry.beam import Beam
from repro.geometry.detector import Detector
from repro.geometry.scan import WireScan
from repro.geometry.wire import Wire
from repro.io.h5lite import H5LiteFile, H5LiteError

__all__ = [
    "save_wire_scan",
    "load_wire_scan",
    "load_wire_scan_window",
    "read_wire_scan_geometry",
    "save_depth_resolved",
    "load_depth_resolved",
    "load_run_payload",
    "RUN_RECORD_ATTR",
    "UnrecognizedFormatError",
]


def save_wire_scan(path, stack: WireScanStack, chunk_positions: Optional[int] = 4) -> None:
    """Write a :class:`WireScanStack` to an h5lite file."""
    with H5LiteFile(path, "w") as fh:
        entry = fh.create_group("entry")
        entry.attrs["format"] = "repro-wire-scan"
        entry.attrs["format_version"] = 1
        for key, value in stack.metadata.items():
            entry.attrs[f"meta_{key}"] = value

        data = entry.create_group("data")
        data.create_dataset("images", stack.images, chunk_rows=chunk_positions)
        if stack.pixel_mask is not None:
            data.create_dataset("pixel_mask", stack.pixel_mask.astype(np.uint8))

        wire_grp = entry.create_group("wire")
        wire_grp.attrs["radius"] = stack.scan.wire.radius
        wire_grp.create_dataset("positions_yz", stack.scan.positions)

        det_grp = entry.create_group("detector")
        det_grp.attrs["n_rows"] = stack.detector.n_rows
        det_grp.attrs["n_cols"] = stack.detector.n_cols
        det_grp.attrs["pixel_size"] = stack.detector.pixel_size
        det_grp.attrs["distance"] = stack.detector.distance
        det_grp.attrs["center"] = list(stack.detector.center)

        beam_grp = entry.create_group("beam")
        beam_grp.attrs["direction"] = list(stack.beam.direction)
        beam_grp.attrs["origin"] = list(stack.beam.origin)
        beam_grp.attrs["energy_min_kev"] = stack.beam.energy_min_kev
        beam_grp.attrs["energy_max_kev"] = stack.beam.energy_max_kev


def _wire_scan_entry(fh: H5LiteFile, path):
    """The validated ``/entry`` group of an open wire-scan file."""
    if "entry" not in fh:
        raise H5LiteError(f"{path} does not contain an /entry group")
    entry = fh["entry"]
    if entry.attrs.get("format") != "repro-wire-scan":
        raise H5LiteError(f"{path} is not a repro wire-scan file")
    return entry


def _read_entry_geometry(entry):
    """Parse (scan, detector, beam, metadata) from an ``/entry`` group.

    Touches only header attributes and the (small) wire trajectory — never
    the image cube, so it is safe for out-of-core use.
    """
    wire_grp = entry["wire"]
    wire = Wire(radius=float(wire_grp.attrs["radius"]))
    positions = entry["wire/positions_yz"][...]
    scan = WireScan(wire=wire, positions_yz=positions)

    det_grp = entry["detector"]
    detector = Detector(
        n_rows=int(det_grp.attrs["n_rows"]),
        n_cols=int(det_grp.attrs["n_cols"]),
        pixel_size=float(det_grp.attrs["pixel_size"]),
        distance=float(det_grp.attrs["distance"]),
        center=tuple(det_grp.attrs["center"]),
    )

    beam_grp = entry["beam"]
    beam = Beam(
        direction=tuple(beam_grp.attrs["direction"]),
        origin=tuple(beam_grp.attrs["origin"]),
        energy_min_kev=float(beam_grp.attrs["energy_min_kev"]),
        energy_max_kev=float(beam_grp.attrs["energy_max_kev"]),
    )

    metadata = {
        key[len("meta_"):]: value
        for key, value in entry.attrs.items()
        if key.startswith("meta_")
    }
    return scan, detector, beam, metadata


def read_wire_scan_geometry(path):
    """Read only the geometry of a wire-scan file: ``(scan, detector, beam, metadata)``.

    The image cube is not touched; this is the header read the streaming
    pipeline performs before planning its chunks.
    """
    with H5LiteFile(path, "r") as fh:
        entry = _wire_scan_entry(fh, path)
        return _read_entry_geometry(entry)


def load_wire_scan(path) -> WireScanStack:
    """Read a :class:`WireScanStack` from an h5lite file."""
    with H5LiteFile(path, "r") as fh:
        entry = _wire_scan_entry(fh, path)
        images = entry["data/images"][...]
        pixel_mask = None
        if "data/pixel_mask" in entry:
            pixel_mask = entry["data/pixel_mask"][...].astype(bool)
        scan, detector, beam, metadata = _read_entry_geometry(entry)
        return WireScanStack(
            images=images,
            scan=scan,
            detector=detector,
            beam=beam,
            pixel_mask=pixel_mask,
            metadata=metadata,
        )


def load_wire_scan_window(path, row_start: int, row_stop: int) -> WireScanStack:
    """Read only detector rows ``row_start:row_stop`` of a wire-scan file.

    Returns a :class:`WireScanStack` whose detector is the matching row
    window of the full detector (same lab geometry), reading just the bytes
    of the requested rows — the windowed counterpart of
    :func:`load_wire_scan` used by the out-of-core streaming path.
    """
    with H5LiteFile(path, "r") as fh:
        entry = _wire_scan_entry(fh, path)
        scan, detector, beam, metadata = _read_entry_geometry(entry)
        if not (0 <= row_start < row_stop <= detector.n_rows):
            raise H5LiteError(
                f"invalid row window [{row_start}, {row_stop}) for {detector.n_rows} rows"
            )
        images = entry["data/images"].read_window(sub_start=row_start, sub_stop=row_stop)
        pixel_mask = None
        if "data/pixel_mask" in entry:
            pixel_mask = entry["data/pixel_mask"][row_start:row_stop].astype(bool)
        return WireScanStack(
            images=images,
            scan=scan,
            detector=detector.row_window(row_start, row_stop),
            beam=beam,
            pixel_mask=pixel_mask,
            metadata=metadata,
        )


#: attribute key the run-provenance record is stored under (JSON-attrs block)
RUN_RECORD_ATTR = "run_record"


class UnrecognizedFormatError(H5LiteError):
    """A valid h5lite container that is not the expected repro format.

    Distinct from generic :class:`~repro.io.h5lite.H5LiteError` so directory
    scans can *skip* foreign-but-healthy files while still *reporting*
    corrupt ones.  Subclasses ``H5LiteError``, so existing handlers keep
    working.
    """


def save_depth_resolved(
    path,
    result: DepthResolvedStack,
    chunk_bins: Optional[int] = 8,
    run_record: Optional[Dict] = None,
) -> None:
    """Write a :class:`DepthResolvedStack` to an h5lite file.

    When *run_record* is given (the full provenance record of the run that
    produced the stack — see :meth:`repro.core.session.RunResult.save`), it
    is embedded on the ``/entry`` group as an eagerly-validated JSON
    attribute, h5py-attributes style, so :func:`repro.load` can reconstruct
    the complete :class:`~repro.core.session.RunResult` later.
    """
    with H5LiteFile(path, "w") as fh:
        entry = fh.create_group("entry")
        entry.attrs["format"] = "repro-depth-resolved"
        entry.attrs["format_version"] = 1
        for key, value in result.metadata.items():
            entry.attrs[f"meta_{key}"] = value
        if run_record is not None:
            entry.set_json_attr(RUN_RECORD_ATTR, run_record)
        grp = entry.create_group("depth_resolved")
        grp.attrs["depth_start"] = result.grid.start
        grp.attrs["depth_step"] = result.grid.step
        grp.attrs["n_bins"] = result.grid.n_bins
        grp.create_dataset("intensity", result.data, chunk_rows=chunk_bins)


def _depth_resolved_entry(fh: H5LiteFile, path):
    """The validated ``/entry`` group of an open depth-resolved file."""
    if "entry" not in fh:
        raise UnrecognizedFormatError(f"{path} does not contain an /entry group")
    entry = fh["entry"]
    if entry.attrs.get("format") != "repro-depth-resolved":
        raise UnrecognizedFormatError(f"{path} is not a repro depth-resolved file")
    return entry


def _read_depth_resolved(entry) -> DepthResolvedStack:
    grp = entry["depth_resolved"]
    grid = DepthGrid(
        start=float(grp.attrs["depth_start"]),
        step=float(grp.attrs["depth_step"]),
        n_bins=int(grp.attrs["n_bins"]),
    )
    data = entry["depth_resolved/intensity"][...]
    metadata = {
        key[len("meta_"):]: value
        for key, value in entry.attrs.items()
        if key.startswith("meta_")
    }
    return DepthResolvedStack(data=data, grid=grid, metadata=metadata)


def load_depth_resolved(path) -> DepthResolvedStack:
    """Read a :class:`DepthResolvedStack` from an h5lite file."""
    with H5LiteFile(path, "r") as fh:
        return _read_depth_resolved(_depth_resolved_entry(fh, path))


def load_run_payload(path) -> Tuple[DepthResolvedStack, Optional[Dict]]:
    """Read a depth-resolved file plus its embedded run-provenance record.

    One file open serves both; the record is ``None`` for files written
    without provenance (pre-redesign outputs or bare
    :func:`save_depth_resolved` calls).
    """
    with H5LiteFile(path, "r") as fh:
        entry = _depth_resolved_entry(fh, path)
        return _read_depth_resolved(entry), entry.get_json_attr(RUN_RECORD_ATTR)

"""``h5lite``: a minimal hierarchical array container.

This module stands in for HDF5 (the paper's input format) in an environment
without ``h5py``.  It supports the subset of the HDF5 data model the
reconstruction pipeline relies on:

* a tree of named **groups**;
* n-dimensional **datasets** of any NumPy dtype, stored contiguously or
  **chunked along the leading axis** so that a few detector rows/images can
  be read without loading the whole cube;
* JSON-serialisable **attributes** on groups and datasets, including an
  eagerly-validated JSON-attrs block (``set_json_attr``/``get_json_attr``)
  for nested documents such as run-provenance records;
* partial reads (``dataset[i:j]``) that only touch the required chunks.

File layout::

    bytes 0..7     magic  b"H5LITE01"
    bytes 8..15    little-endian uint64: header length H
    bytes 16..16+H JSON header describing the tree and every data block
    remainder      raw little-endian array bytes, one block per chunk

The JSON header stores, for every dataset chunk, its byte offset relative to
the start of the data section, so readers can seek directly to any chunk.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import Dict, Iterator, List, Optional, Tuple

import numpy as np

__all__ = [
    "H5LiteError",
    "Dataset",
    "Group",
    "H5LiteFile",
    "json_normalize",
    "header_digest",
]

_MAGIC = b"H5LITE01"


def header_digest(path) -> str:
    """SHA-256 over the magic, header length and JSON header bytes of *path*.

    The header describes the whole tree — shapes, dtypes, chunking, every
    attribute — so any structural or metadata change moves this digest while
    the (potentially huge) data section is never read.  This is what source
    fingerprinting uses as the cheap content component of a cache key;
    pure data edits are caught by the size/mtime components instead.
    Raises :class:`H5LiteError` for missing or non-h5lite files.
    """
    try:
        with open(path, "rb") as fh:
            magic = fh.read(8)
            if magic != _MAGIC:
                raise H5LiteError(f"{path} is not an h5lite file (bad magic {magic!r})")
            length_bytes = fh.read(8)
            if len(length_bytes) != 8:
                raise H5LiteError(f"truncated h5lite file {path} (no header length)")
            (header_len,) = np.frombuffer(length_bytes, dtype=np.uint64)
            header_bytes = fh.read(int(header_len))
            if len(header_bytes) != int(header_len):
                raise H5LiteError(f"truncated h5lite header in {path}")
    except OSError as exc:
        raise H5LiteError(f"cannot read {path}: {exc}") from None
    digest = hashlib.sha256()
    digest.update(magic)
    digest.update(length_bytes)
    digest.update(header_bytes)
    return digest.hexdigest()


class H5LiteError(IOError):
    """Raised for malformed files, wrong modes, and invalid paths."""


def _header_attrs(node: Dict, path) -> Dict:
    """The ``attrs`` block of a header node, validated to be an object."""
    attrs = node.get("attrs", {})
    if not isinstance(attrs, dict):
        raise H5LiteError(f"corrupt h5lite header in {path}: malformed attrs")
    return attrs


def _normalize_path(path: str) -> List[str]:
    parts = [p for p in path.strip("/").split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise H5LiteError(f"invalid path component {part!r} in {path!r}")
    return parts


def _json_default(obj):
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    raise TypeError(f"attribute value of type {type(obj).__name__} is not serialisable")


def json_normalize(value):
    """Normalize *value* into plain JSON types (dict/list/str/int/float/bool/None).

    Tuples become lists, NumPy scalars and arrays become Python numbers and
    lists — exactly the shape the value will have after a write/read cycle
    through the file header, so callers see the round-tripped form
    immediately.  Raises :class:`H5LiteError` for unserialisable values.
    """
    try:
        return json.loads(json.dumps(value, default=_json_default, allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise H5LiteError(f"value is not JSON-serialisable: {exc}") from None


class _JsonAttrs:
    """Eagerly-validated JSON attributes, shared by groups and datasets.

    Plain ``attrs`` entries are only serialised when the file is written, so
    a bad value surfaces far from where it was assigned.  The JSON-attrs
    block validates and normalizes at *set* time (h5py attributes fail at
    assignment too) and hands back deep copies at *get* time, making
    arbitrarily nested provenance records safe first-class attributes.
    """

    attrs: Dict

    def set_json_attr(self, key: str, value) -> None:
        """Store a nested JSON document under attribute *key*, fail-fast.

        The value is normalized through a JSON round-trip immediately, so an
        unserialisable payload raises here — not at file close — and what is
        stored is bit-for-bit what a reader will see.
        """
        self.attrs[str(key)] = json_normalize(value)

    def get_json_attr(self, key: str, default=None):
        """A deep copy of the JSON attribute *key* (*default* when absent).

        Runs the same strict normalization as :meth:`set_json_attr`, so a
        value smuggled in through the plain ``attrs`` dict is held to the
        identical rule set on the way out.
        """
        if key not in self.attrs:
            return default
        return json_normalize(self.attrs[key])


class Dataset(_JsonAttrs):
    """A named n-dimensional array inside an :class:`H5LiteFile`."""

    def __init__(
        self,
        file: "H5LiteFile",
        name: str,
        shape: Tuple[int, ...],
        dtype: np.dtype,
        chunk_rows: Optional[int],
        chunk_offsets: List[int],
        attrs: Dict,
        data: Optional[np.ndarray] = None,
    ):
        self._file = file
        self.name = name
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.chunk_rows = int(chunk_rows) if chunk_rows else None
        self._chunk_offsets = list(chunk_offsets)
        self.attrs: Dict = dict(attrs)
        self._data = data  # only set while writing

    # ------------------------------------------------------------------ #
    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def size(self) -> int:
        """Total number of elements."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        """Total byte size of the dataset."""
        return self.size * self.dtype.itemsize

    def _row_bytes(self) -> int:
        if not self.shape:
            return self.dtype.itemsize
        per_row = int(np.prod(self.shape[1:], dtype=np.int64)) if len(self.shape) > 1 else 1
        return per_row * self.dtype.itemsize

    def _n_chunks(self) -> int:
        if self.chunk_rows is None or not self.shape:
            return 1
        return max(1, -(-self.shape[0] // self.chunk_rows))

    # ------------------------------------------------------------------ #
    def read(self, start: int = 0, stop: Optional[int] = None) -> np.ndarray:
        """Read rows ``start:stop`` along the leading axis (whole array by default)."""
        if self._data is not None:
            full = self._data
            if not self.shape:
                return full.copy()
            stop = self.shape[0] if stop is None else stop
            return full[start:stop].copy()
        return self._file._read_dataset(self, start, stop)

    def read_window(
        self,
        start: int = 0,
        stop: Optional[int] = None,
        sub_start: int = 0,
        sub_stop: Optional[int] = None,
    ) -> np.ndarray:
        """Read rows ``start:stop`` of the leading axis restricted to
        ``sub_start:sub_stop`` along the second axis.

        This is the windowed out-of-core read the streaming pipeline uses:
        for a ``(n_positions, n_rows, n_cols)`` image cube it returns the
        slab ``cube[start:stop, sub_start:sub_stop, :]`` while touching only
        the bytes of that window — each leading-axis row stores its second
        axis contiguously, so the window is one seek + one read per leading
        row, never the whole cube.
        """
        if self.ndim < 2:
            raise H5LiteError("read_window requires a dataset with at least 2 dimensions")
        n_sub = self.shape[1]
        sub_stop = n_sub if sub_stop is None else min(int(sub_stop), n_sub)
        sub_start = max(0, int(sub_start))
        if sub_stop <= sub_start:
            stop_eff = (self.shape[0] if stop is None else min(int(stop), self.shape[0])) - max(0, int(start))
            return np.empty((max(stop_eff, 0), 0) + self.shape[2:], dtype=self.dtype)
        if sub_start == 0 and sub_stop == n_sub:
            return self.read(start, stop)
        if self._data is not None:
            stop = self.shape[0] if stop is None else stop
            return self._data[start:stop, sub_start:sub_stop].copy()
        return self._file._read_dataset_window(self, start, stop, sub_start, sub_stop)

    def __getitem__(self, key) -> np.ndarray:
        if key is Ellipsis:
            return self.read()
        if isinstance(key, tuple):
            if len(key) != 2 or not all(isinstance(k, slice) for k in key):
                raise H5LiteError(
                    "h5lite datasets only support 2-axis windows of the form [i:j, k:l]"
                )
            lead, sub = key
            if lead.step not in (None, 1) or sub.step not in (None, 1):
                raise H5LiteError("h5lite windows must be contiguous (step 1)")
            return self.read_window(
                0 if lead.start is None else int(lead.start),
                None if lead.stop is None else int(lead.stop),
                0 if sub.start is None else int(sub.start),
                None if sub.stop is None else int(sub.stop),
            )
        if isinstance(key, slice):
            if key.step not in (None, 1):
                raise H5LiteError("h5lite datasets only support contiguous slices on the leading axis")
            start = 0 if key.start is None else int(key.start)
            stop = None if key.stop is None else int(key.stop)
            return self.read(start, stop)
        if isinstance(key, (int, np.integer)):
            rows = self.read(int(key), int(key) + 1)
            return rows[0]
        raise H5LiteError(f"unsupported index {key!r}; use [...], [i], [i:j] or [i:j, k:l]")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Dataset({self.name!r}, shape={self.shape}, dtype={self.dtype})"


class Group(_JsonAttrs):
    """A named collection of groups and datasets."""

    def __init__(self, file: "H5LiteFile", name: str):
        self._file = file
        self.name = name
        self.attrs: Dict = {}
        self._children: Dict[str, "Group"] = {}
        self._datasets: Dict[str, Dataset] = {}

    # ------------------------------------------------------------------ #
    def create_group(self, name: str) -> "Group":
        """Create (or return an existing) sub-group."""
        self._file._require_writable()
        parts = _normalize_path(name)
        node = self
        for part in parts:
            if part in node._datasets:
                raise H5LiteError(f"cannot create group {name!r}: {part!r} is a dataset")
            if part not in node._children:
                child_name = f"{node.name.rstrip('/')}/{part}" if node.name != "/" else f"/{part}"
                node._children[part] = Group(self._file, child_name)
            node = node._children[part]
        return node

    def create_dataset(
        self,
        name: str,
        data: np.ndarray,
        chunk_rows: Optional[int] = None,
        attrs: Optional[Dict] = None,
    ) -> Dataset:
        """Create a dataset holding *data* (copied at write time)."""
        self._file._require_writable()
        parts = _normalize_path(name)
        if not parts:
            raise H5LiteError("dataset name must be non-empty")
        *group_parts, leaf = parts
        node = self.create_group("/".join(group_parts)) if group_parts else self
        if leaf in node._datasets or leaf in node._children:
            raise H5LiteError(f"object {name!r} already exists in group {node.name!r}")
        data = np.asarray(data)
        dataset_name = f"{node.name.rstrip('/')}/{leaf}" if node.name != "/" else f"/{leaf}"
        ds = Dataset(
            file=self._file,
            name=dataset_name,
            shape=data.shape,
            dtype=data.dtype,
            chunk_rows=chunk_rows,
            chunk_offsets=[],
            attrs=attrs or {},
            data=np.ascontiguousarray(data),
        )
        node._datasets[leaf] = ds
        return ds

    # ------------------------------------------------------------------ #
    def __contains__(self, name: str) -> bool:
        try:
            self[name]
            return True
        except (KeyError, H5LiteError):
            return False

    def __getitem__(self, name: str):
        parts = _normalize_path(name)
        node: Group = self
        for i, part in enumerate(parts):
            if part in node._children:
                node = node._children[part]
            elif part in node._datasets:
                if i != len(parts) - 1:
                    raise H5LiteError(f"{part!r} is a dataset, not a group")
                return node._datasets[part]
            else:
                raise KeyError(f"no object named {name!r} in group {self.name!r}")
        return node

    def keys(self) -> List[str]:
        """Names of immediate children (groups first, then datasets)."""
        return list(self._children.keys()) + list(self._datasets.keys())

    def items(self) -> Iterator[Tuple[str, object]]:
        """Iterate over (name, group-or-dataset) pairs."""
        for k, v in self._children.items():
            yield k, v
        for k, v in self._datasets.items():
            yield k, v

    def groups(self) -> Dict[str, "Group"]:
        """Immediate sub-groups."""
        return dict(self._children)

    def datasets(self) -> Dict[str, Dataset]:
        """Immediate datasets."""
        return dict(self._datasets)

    def visit(self) -> Iterator[object]:
        """Depth-first iteration over every group and dataset below this one."""
        for child in self._children.values():
            yield child
            yield from child.visit()
        for ds in self._datasets.values():
            yield ds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group({self.name!r}, {len(self._children)} groups, {len(self._datasets)} datasets)"


class H5LiteFile:
    """A hierarchical array container file.

    Use as a context manager::

        with H5LiteFile(path, "w") as f:
            grp = f.create_group("entry")
            grp.create_dataset("images", cube, chunk_rows=4)
            grp.attrs["note"] = "synthetic"

        with H5LiteFile(path, "r") as f:
            cube = f["entry/images"][...]
    """

    def __init__(self, path, mode: str = "r"):
        if mode not in ("r", "w"):
            raise H5LiteError(f"mode must be 'r' or 'w', got {mode!r}")
        self.path = os.fspath(path)
        self.mode = mode
        self.root = Group(self, "/")
        self._closed = False
        self._data_start = 0
        if mode == "r":
            self._load_header()

    # ------------------------------------------------------------------ #
    def _require_writable(self) -> None:
        if self.mode != "w":
            raise H5LiteError("file is open read-only")
        if self._closed:
            raise H5LiteError("file is closed")

    def create_group(self, name: str) -> Group:
        """Create a group under the root."""
        return self.root.create_group(name)

    def create_dataset(self, name: str, data: np.ndarray, chunk_rows: Optional[int] = None,
                       attrs: Optional[Dict] = None) -> Dataset:
        """Create a dataset under the root."""
        return self.root.create_dataset(name, data, chunk_rows=chunk_rows, attrs=attrs)

    def __getitem__(self, name: str):
        return self.root[name]

    def __contains__(self, name: str) -> bool:
        return name in self.root

    @property
    def attrs(self) -> Dict:
        """Attributes of the root group."""
        return self.root.attrs

    def set_json_attr(self, key: str, value) -> None:
        """Store a validated JSON attribute on the root group."""
        self.root.set_json_attr(key, value)

    def get_json_attr(self, key: str, default=None):
        """Read a JSON attribute of the root group."""
        return self.root.get_json_attr(key, default)

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Flush (in write mode) and close the file."""
        if self._closed:
            return
        if self.mode == "w":
            self._write_out()
        self._closed = True

    def __enter__(self) -> "H5LiteFile":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            self._closed = True

    # ------------------------------------------------------------------ #
    # writing
    def _write_out(self) -> None:
        header: Dict = {"attrs": self.root.attrs, "tree": {}}
        blocks: List[np.ndarray] = []
        offset = 0

        def serialise_group(group: Group) -> Dict:
            nonlocal offset
            node = {"type": "group", "attrs": group.attrs, "children": {}}
            for name, child in group._children.items():
                node["children"][name] = serialise_group(child)
            for name, ds in group._datasets.items():
                data = ds._data
                chunk_rows = ds.chunk_rows
                chunk_offsets = []
                if chunk_rows and data.ndim >= 1 and data.shape[0] > 0:
                    for start in range(0, data.shape[0], chunk_rows):
                        block = np.ascontiguousarray(data[start:start + chunk_rows])
                        chunk_offsets.append(offset)
                        blocks.append(block)
                        offset += block.nbytes
                else:
                    block = np.ascontiguousarray(data)
                    chunk_offsets.append(offset)
                    blocks.append(block)
                    offset += block.nbytes
                node["children"][name] = {
                    "type": "dataset",
                    # ds.shape (not data.shape): ascontiguousarray promotes
                    # 0-d scalars to 1-d, but the dataset keeps its true shape
                    "shape": list(ds.shape),
                    "dtype": data.dtype.str,
                    "chunk_rows": chunk_rows,
                    "chunk_offsets": chunk_offsets,
                    "attrs": ds.attrs,
                }
            return node

        header["tree"] = serialise_group(self.root)
        header_bytes = json.dumps(header, default=_json_default).encode("utf-8")
        with open(self.path, "wb") as fh:
            fh.write(_MAGIC)
            fh.write(np.uint64(len(header_bytes)).tobytes())
            fh.write(header_bytes)
            for block in blocks:
                fh.write(block.tobytes())

    # ------------------------------------------------------------------ #
    # reading
    def _load_header(self) -> None:
        if not os.path.exists(self.path):
            raise H5LiteError(f"no such file: {self.path}")
        with open(self.path, "rb") as fh:
            magic = fh.read(8)
            if magic != _MAGIC:
                raise H5LiteError(f"{self.path} is not an h5lite file (bad magic {magic!r})")
            length_bytes = fh.read(8)
            if len(length_bytes) != 8:
                raise H5LiteError(f"truncated h5lite file {self.path} (no header length)")
            (header_len,) = np.frombuffer(length_bytes, dtype=np.uint64)
            header_bytes = fh.read(int(header_len))
            if len(header_bytes) != int(header_len):
                raise H5LiteError("truncated h5lite header")
            self._data_start = 16 + int(header_len)
        # a corrupt header after a valid magic (partial write, bit rot) must
        # surface as H5LiteError like every other malformed-file condition,
        # not leak json/unicode/key errors to callers
        try:
            header = json.loads(header_bytes.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise H5LiteError(f"corrupt h5lite header in {self.path}: {exc}") from None
        if not isinstance(header, dict):
            raise H5LiteError(f"corrupt h5lite header in {self.path}: not a JSON object")
        self.root.attrs.update(_header_attrs(header, self.path))

        def build_group(group: Group, node: Dict) -> None:
            if not isinstance(node, dict):
                raise H5LiteError(f"corrupt h5lite header in {self.path}: malformed tree node")
            group.attrs.update(_header_attrs(node, self.path))
            children = node.get("children", {})
            if not isinstance(children, dict):
                raise H5LiteError(f"corrupt h5lite header in {self.path}: malformed children")
            for name, child in children.items():
                if not isinstance(child, dict):
                    raise H5LiteError(
                        f"corrupt h5lite header in {self.path}: malformed node {name!r}"
                    )
                if child.get("type") == "group":
                    sub = Group(self, f"{group.name.rstrip('/')}/{name}" if group.name != "/" else f"/{name}")
                    group._children[name] = sub
                    build_group(sub, child)
                else:
                    try:
                        ds = Dataset(
                            file=self,
                            name=f"{group.name.rstrip('/')}/{name}" if group.name != "/" else f"/{name}",
                            shape=tuple(child["shape"]),
                            dtype=np.dtype(child["dtype"]),
                            chunk_rows=child.get("chunk_rows"),
                            chunk_offsets=child.get("chunk_offsets", []),
                            attrs=child.get("attrs", {}),
                        )
                    except (KeyError, TypeError, ValueError) as exc:
                        raise H5LiteError(
                            f"corrupt h5lite header in {self.path}: bad dataset {name!r}: {exc}"
                        ) from None
                    group._datasets[name] = ds

        if "tree" not in header:
            raise H5LiteError(f"corrupt h5lite header in {self.path}: no tree")
        build_group(self.root, header["tree"])

    def _read_dataset(self, ds: Dataset, start: int, stop: Optional[int]) -> np.ndarray:
        if self.mode != "r":
            raise H5LiteError("partial reads require the file to be open in read mode")
        if not ds.shape:
            with open(self.path, "rb") as fh:
                fh.seek(self._data_start + ds._chunk_offsets[0])
                raw = fh.read(ds.dtype.itemsize)
            return np.frombuffer(raw, dtype=ds.dtype)[0].copy()

        n_rows = ds.shape[0]
        stop = n_rows if stop is None else min(stop, n_rows)
        start = max(0, start)
        if stop <= start:
            return np.empty((0,) + ds.shape[1:], dtype=ds.dtype)

        row_bytes = ds._row_bytes()
        out = np.empty((stop - start,) + ds.shape[1:], dtype=ds.dtype)
        with open(self.path, "rb") as fh:
            if ds.chunk_rows is None:
                fh.seek(self._data_start + ds._chunk_offsets[0] + start * row_bytes)
                raw = fh.read((stop - start) * row_bytes)
                out[...] = np.frombuffer(raw, dtype=ds.dtype).reshape(out.shape)
            else:
                chunk_rows = ds.chunk_rows
                filled = 0
                first_chunk = start // chunk_rows
                last_chunk = (stop - 1) // chunk_rows
                for chunk_index in range(first_chunk, last_chunk + 1):
                    chunk_start_row = chunk_index * chunk_rows
                    chunk_stop_row = min(chunk_start_row + chunk_rows, n_rows)
                    lo = max(start, chunk_start_row)
                    hi = min(stop, chunk_stop_row)
                    fh.seek(
                        self._data_start
                        + ds._chunk_offsets[chunk_index]
                        + (lo - chunk_start_row) * row_bytes
                    )
                    raw = fh.read((hi - lo) * row_bytes)
                    out[filled:filled + (hi - lo)] = np.frombuffer(raw, dtype=ds.dtype).reshape(
                        (hi - lo,) + ds.shape[1:]
                    )
                    filled += hi - lo
        return out

    def _read_dataset_window(
        self, ds: Dataset, start: int, stop: Optional[int], sub_start: int, sub_stop: int
    ) -> np.ndarray:
        """Windowed read: leading rows ``start:stop``, second axis ``sub_start:sub_stop``.

        Only the bytes of the window are read (one seek per leading row),
        which is what keeps the streaming reconstruction's resident set at
        one slab regardless of the cube size.
        """
        if self.mode != "r":
            raise H5LiteError("partial reads require the file to be open in read mode")
        n_rows = ds.shape[0]
        stop = n_rows if stop is None else min(stop, n_rows)
        start = max(0, start)
        window = sub_stop - sub_start
        if stop <= start:
            return np.empty((0, window) + ds.shape[2:], dtype=ds.dtype)

        row_bytes = ds._row_bytes()
        sub_bytes = row_bytes // ds.shape[1]  # bytes of one second-axis row
        out = np.empty((stop - start, window) + ds.shape[2:], dtype=ds.dtype)
        chunk_rows = ds.chunk_rows or n_rows
        with open(self.path, "rb") as fh:
            for filled, lead in enumerate(range(start, stop)):
                chunk_index = lead // chunk_rows
                chunk_start_row = chunk_index * chunk_rows
                fh.seek(
                    self._data_start
                    + ds._chunk_offsets[chunk_index]
                    + (lead - chunk_start_row) * row_bytes
                    + sub_start * sub_bytes
                )
                raw = fh.read(window * sub_bytes)
                out[filled] = np.frombuffer(raw, dtype=ds.dtype).reshape((window,) + ds.shape[2:])
        return out

"""Out-of-core chunk source: stream row windows straight from an h5lite file.

``StreamingWireScanSource`` implements the engine's
:class:`~repro.core.engine.ChunkSource` protocol against a wire-scan file on
disk.  Geometry, mask and metadata are read from the header once; the image
cube itself is never materialised — each engine chunk triggers one windowed
read (:meth:`repro.io.h5lite.Dataset.read_window`) of exactly the rows that
chunk processes, so the peak resident image memory is one chunk slab (plus
one full detector image during the optional background pass).

The source keeps simple accounting (``max_resident_rows``,
``n_window_reads``, ``bytes_read``) that the streaming tests and the batch
benchmark use to prove the out-of-core property.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.core.engine import ChunkSource
from repro.io.h5lite import H5LiteFile
from repro.io.image_stack import _read_entry_geometry, _wire_scan_entry

__all__ = ["StreamingWireScanSource"]


class StreamingWireScanSource(ChunkSource):
    """Serves engine chunks from a wire-scan file without loading the cube."""

    out_of_core = True

    def __init__(self, path):
        self.path = path
        self._file = H5LiteFile(path, "r")
        entry = _wire_scan_entry(self._file, path)
        self.scan, self.detector, self.beam, self.metadata = _read_entry_geometry(entry)
        self._images = entry["data/images"]
        n_positions, n_rows, n_cols = self._images.shape
        if (n_rows, n_cols) != self.detector.shape:
            from repro.io.h5lite import H5LiteError

            raise H5LiteError(
                f"image shape {(n_rows, n_cols)} does not match detector shape {self.detector.shape}"
            )
        self.n_positions = int(n_positions)
        self.n_rows = int(n_rows)
        self.n_cols = int(n_cols)
        self.wire_positions_yz = self.scan.positions
        self.wire_radius = self.scan.wire.radius

        self._mask: Optional[np.ndarray] = None
        if "data/pixel_mask" in entry:
            # the mask is (n_rows, n_cols) uint8 — header-sized, keep resident
            self._mask = entry["data/pixel_mask"][...].astype(bool)

        #: largest number of detector rows resident from any single read
        self.max_resident_rows = 0
        #: number of windowed slab reads served
        self.n_window_reads = 0
        #: total image bytes read from disk
        self.bytes_read = 0

    # ------------------------------------------------------------------ #
    def row_edges_yz(self, rows: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        return self.detector.row_edges_yz(rows)

    def load_rows(self, row_start: int, row_stop: int) -> np.ndarray:
        slab = self._images.read_window(sub_start=row_start, sub_stop=row_stop)
        self.n_window_reads += 1
        self.max_resident_rows = max(self.max_resident_rows, row_stop - row_start)
        self.bytes_read += int(slab.nbytes)
        return np.asarray(slab, dtype=np.float64)

    def mask_rows(self, row_start: int, row_stop: int) -> Optional[np.ndarray]:
        if self._mask is None:
            return None
        return self._mask[row_start:row_stop, :]

    def position_image(self, position: int) -> np.ndarray:
        image = self._images[position]
        self.bytes_read += int(image.nbytes)
        return np.asarray(image, dtype=np.float64)

    def describe(self) -> str:
        return (
            f"StreamingWireScanSource({self.path!r}, "
            f"{self.n_positions}x{self.n_rows}x{self.n_cols})"
        )

    # ------------------------------------------------------------------ #
    def accounting(self) -> Dict:
        """Read accounting for tests and benchmarks."""
        return {
            "max_resident_rows": self.max_resident_rows,
            "n_window_reads": self.n_window_reads,
            "bytes_read": self.bytes_read,
        }

    def accounting_note(self) -> str:
        """Report note proving the out-of-core property of the run.

        The session appends this to the run report after a streamed
        execution (the engine's chunk loop has finished by then, so the
        counters are final).
        """
        return (
            "streamed from disk: {n_window_reads} window read(s), "
            "peak {max_resident_rows} row(s) resident, {bytes_read} bytes read"
        ).format(**self.accounting())

"""File input/output.

The original pipeline reads wire-scan detector images from HDF5 files and
writes depth-resolved results back to disk (HDF5 and text).  ``h5py`` is not
available in this offline environment, so ``h5lite`` implements a small,
self-contained hierarchical container with the features the pipeline needs:
groups, n-dimensional datasets, attributes and chunked storage along the
leading axis.  ``image_stack`` maps the experiment objects to/from that
container, and ``text_output`` reproduces the per-pixel depth-profile text
files the CPU side of the original program produces.
"""

from repro.io.h5lite import H5LiteFile, Dataset, Group, H5LiteError
from repro.io.image_stack import (
    save_wire_scan,
    load_wire_scan,
    load_wire_scan_window,
    read_wire_scan_geometry,
    save_depth_resolved,
    load_depth_resolved,
)
from repro.io.streaming import StreamingWireScanSource
from repro.io.text_output import write_depth_profiles, read_depth_profiles
from repro.io.metadata import ExperimentMetadata

__all__ = [
    "H5LiteFile",
    "Dataset",
    "Group",
    "H5LiteError",
    "save_wire_scan",
    "load_wire_scan",
    "load_wire_scan_window",
    "read_wire_scan_geometry",
    "StreamingWireScanSource",
    "save_depth_resolved",
    "load_depth_resolved",
    "write_depth_profiles",
    "read_depth_profiles",
    "ExperimentMetadata",
]

"""Graph execution: topological scheduling, thread parallelism, memoization.

Two scopes:

* **run scope** (:func:`execute_run_graph`) — one depth-resolved stack;
  independent nodes run concurrently on the shared thread pool (ready-set
  scheduling, not lock-step waves: a node launches the moment its last
  dependency finishes).
* **batch scope** (:func:`execute_batch_graph`) — per-run nodes fan out over
  the batch items (items are the parallel axis, each item runs its subgraph
  serially), then reduce nodes consume the collected outputs serially with
  per-node error capture.

When the target came through a :class:`~repro.core.cache.ResultCache`, every
node value is memoized per ``(run key, node signature)``: re-running after a
one-node parameter change recomputes only that node's dirty subgraph, and a
one-file batch change recomputes only that file's nodes plus the reduces.

``executor="processes"`` is deliberately unsupported: node values are
in-process Python objects and the ops are NumPy-bound (they release the GIL),
so threads are the honest strategy here.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, wait
from typing import Dict, List, Optional, Tuple

from repro.analysisgraph.graph import RESERVED_INPUTS, AnalysisGraph
from repro.analysisgraph.results import GraphAnalysisResult, GraphBatchItem, GraphBatchResult
from repro.core.ops import _json_value, op_info
from repro.utils.logging import get_logger
from repro.utils.validation import ValidationError

__all__ = [
    "GraphExecutionError",
    "execute_chain",
    "execute_run_graph",
    "execute_batch_graph",
]

_LOG = get_logger(__name__)

#: Default concurrency cap (matching ``run_many``'s batch default).
DEFAULT_MAX_WORKERS = 4


class GraphExecutionError(Exception):
    """A node's op raised during graph execution.

    Carries the node name so batch-scope error capture (and users) can see
    *which* node failed, with the original exception chained as the cause.
    """

    def __init__(self, node: str, op: str, cause: BaseException):
        super().__init__(f"node {node!r} (op {op!r}) failed: {type(cause).__name__}: {cause}")
        self.node = node
        self.op = op


def _resolve_executor(
    executor: str, max_workers: Optional[int], width: int
) -> Tuple[str, int]:
    """Concrete ``(mode, n_workers)`` for a potential parallel width."""
    mode = str(executor)
    if mode == "auto":
        mode = "threads" if width > 1 else "serial"
    if mode not in ("serial", "threads"):
        raise ValidationError(
            f"analysis graphs execute with 'serial', 'threads' or 'auto', got "
            f"{executor!r} (process executors cannot ship in-process node values)"
        )
    if mode == "serial":
        return "serial", 1
    if max_workers is None:
        n_workers = min(DEFAULT_MAX_WORKERS, max(width, 1))
    else:
        n_workers = max(1, int(max_workers))
    return "threads", n_workers


# --------------------------------------------------------------------------- #
# run scope
def execute_chain(graph: AnalysisGraph, stack) -> List[object]:
    """Serial, memo-free execution on a bare stack; values in spec order.

    The compiled-linear fast path: exceptions propagate unwrapped so
    ``AnalysisPipeline`` keeps its historical error semantics.
    """
    values: Dict[str, object] = {}
    for name in graph.topo_order():
        node = graph.node(name)
        args = [stack if ref == "stack" else values[ref] for ref in node.inputs]
        values[name] = _json_value(op_info(node.op).func(*args, **node.params_dict))
    return [values[node.name] for node in graph.nodes]


def execute_run_graph(
    graph: AnalysisGraph,
    stack,
    run: Optional[Dict] = None,
    run_result=None,
    cache=None,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> GraphAnalysisResult:
    """Execute a reduce-free graph on one stack; see :meth:`AnalysisGraph.apply`."""
    if graph.has_reduce:
        raise ValidationError(
            "execute_run_graph() takes a reduce-free graph; batch-scope graphs "
            "go through execute_batch_graph()"
        )
    active_cache = cache
    if active_cache is None and run_result is not None:
        active_cache = getattr(run_result, "_bound_cache", None)
    run_key = None
    if run_result is not None and getattr(run_result, "cache_stats", None) is not None:
        run_key = run_result.cache_stats.key
    memoized = active_cache is not None and run_key is not None

    width = max(len(wave) for wave in graph.waves())
    mode, n_workers = _resolve_executor(executor, max_workers, width)

    values: Dict[str, object] = {}
    meta: Dict[str, Dict] = {}

    def compute(name: str) -> None:
        node = graph.node(name)
        start = time.perf_counter()
        if memoized:
            memo_key = active_cache.node_memo_key(run_key, graph.node_signature(name))
            document = active_cache.memo_get(memo_key)
            if document is not None:
                values[name] = document["value"]
                meta[name] = {
                    "elapsed_s": time.perf_counter() - start, "memo_hit": True,
                }
                return
        args = [stack if ref == "stack" else values[ref] for ref in node.inputs]
        try:
            value = _json_value(op_info(node.op).func(*args, **node.params_dict))
        except Exception as exc:
            raise GraphExecutionError(name, node.op, exc) from exc
        values[name] = value
        meta[name] = {"elapsed_s": time.perf_counter() - start, "memo_hit": False}
        if memoized:
            active_cache.memo_put(memo_key, {
                "node": name,
                "op": node.op,
                "node_signature": graph.node_signature(name),
                "run_key": run_key,
                "value": value,
            })

    if mode == "serial":
        for name in graph.topo_order():
            compute(name)
    else:
        _run_ready_set(graph, compute, n_workers)

    n_hits = sum(1 for record in meta.values() if record["memo_hit"])
    results = [
        {
            "node": node.name,
            "op": node.op,
            "inputs": list(node.inputs),
            "params": node.params_dict,
            "value": values[node.name],
            "elapsed_s": meta[node.name]["elapsed_s"],
            "memo_hit": meta[node.name]["memo_hit"],
        }
        for node in graph.nodes
    ]
    return GraphAnalysisResult(
        results=results,
        run=run,
        graph=graph.to_spec(),
        execution={
            "scope": "run",
            "executor": mode,
            "n_workers": n_workers,
            "signature": graph.signature(),
            "memoized": memoized,
            "n_memo_hits": n_hits,
            "n_computed": len(graph) - n_hits,
            "nodes": {name: dict(record) for name, record in meta.items()},
        },
    )


def _run_ready_set(graph: AnalysisGraph, compute, n_workers: int) -> None:
    """Ready-set scheduling on the shared thread pool.

    A node is submitted the moment its last dependency completes — no wave
    barrier, so a long node on one branch never stalls an independent branch.
    The first failure stops new submissions, in-flight nodes drain, and the
    original error re-raises.
    """
    from repro.core.workerpool import shared_thread_pool

    dependents: Dict[str, List[str]] = {name: [] for name in graph.topo_order()}
    remaining: Dict[str, int] = {}
    for node in graph.nodes:
        deps = graph._dependencies(node)
        remaining[node.name] = len(deps)
        for dep in deps:
            dependents[dep].append(node.name)

    pool = shared_thread_pool(n_workers)
    ready = [node.name for node in graph.nodes if remaining[node.name] == 0]
    futures = {}
    failure: Optional[BaseException] = None
    while ready or futures:
        if failure is None:
            for name in ready:
                futures[pool.submit(compute, name)] = name
            ready = []
        if not futures:
            break
        done, _pending = wait(list(futures), return_when=FIRST_COMPLETED)
        for future in done:
            name = futures.pop(future)
            error = future.exception()
            if error is not None:
                failure = failure or error
                continue
            for child in dependents[name]:
                remaining[child] -= 1
                if remaining[child] == 0:
                    ready.append(child)
    if failure is not None:
        raise failure


# --------------------------------------------------------------------------- #
# batch scope
def _item_target(item) -> Tuple[Optional[object], Optional[str]]:
    """(target, error) for one batch item, mirroring the linear batch path."""
    if not item.ok:
        return None, f"reconstruction failed: {item.error}"
    if item.run is not None:
        return item.run, None
    if item.result is not None:
        return item.result, None
    if item.output_path is not None:
        return item.output_path, None
    return None, (
        "no result available (batch ran with keep_results=False and no output_dir)"
    )


def execute_batch_graph(
    graph: AnalysisGraph,
    batch,
    cache=None,
    executor: str = "auto",
    max_workers: Optional[int] = None,
) -> GraphBatchResult:
    """Execute a graph over a whole batch; see :meth:`AnalysisGraph.apply`."""
    run_specs = graph.run_nodes()
    run_subgraph = AnalysisGraph(run_specs) if run_specs else None
    mode, n_workers = _resolve_executor(executor, max_workers, len(batch.items))
    start = time.perf_counter()

    def analyze_item(item) -> GraphBatchItem:
        target, error = _item_target(item)
        if error is not None:
            return GraphBatchItem(input_path=item.input_path, ok=False, error=error)
        if run_subgraph is None:
            return GraphBatchItem(input_path=item.input_path, ok=True)
        try:
            # items are the parallel axis here; each item's subgraph runs
            # serially (memoized per node when the item's run is cache-bound)
            outcome = run_subgraph.apply(target, cache=cache, executor="serial")
        except Exception as exc:  # per-item isolation: record, don't abort
            message = str(exc) if isinstance(exc, GraphExecutionError) \
                else f"{type(exc).__name__}: {exc}"
            return GraphBatchItem(input_path=item.input_path, ok=False, error=message)
        return GraphBatchItem(input_path=item.input_path, ok=True, analysis=outcome)

    if mode == "serial" or len(batch.items) <= 1:
        items = [analyze_item(item) for item in batch.items]
    else:
        from repro.core.workerpool import shared_thread_pool

        pool = shared_thread_pool(n_workers)
        futures = [pool.submit(analyze_item, item) for item in batch.items]
        items = [future.result() for future in futures]

    # collect per-run node outputs across the successful items, plus the run
    # keys that anchor reduce-node memoization to the batch content
    collected: Dict[str, List[object]] = {node.name: [] for node in run_specs}
    run_keys: List[Optional[str]] = []
    for raw, item in zip(batch.items, items):
        if not item.ok:
            continue
        if item.analysis is not None:
            for name, value in item.analysis.values.items():
                collected[name].append(value)
        stats = getattr(raw.run, "cache_stats", None) if raw.run is not None else None
        run_keys.append(stats.key if stats is not None else None)
    active_cache = cache
    if active_cache is None:
        for raw in batch.items:
            bound = getattr(raw.run, "_bound_cache", None) if raw.run is not None else None
            if bound is not None:
                active_cache = bound
                break
    all_ok = all(item.ok for item in items) and bool(items)
    reduce_memoized = (
        active_cache is not None and all_ok
        and all(key is not None for key in run_keys)
    )
    batch_key = ",".join(run_keys) if reduce_memoized else None

    reduces: List[Dict] = []
    reduce_values: Dict[str, object] = {}
    failed_reduces: set = set()
    n_memo_hits = sum(
        item.analysis.execution.get("n_memo_hits", 0)
        for item in items if item.analysis is not None
    )
    for name in graph.topo_order():
        if graph.node_kind(name) != "reduce":
            continue
        node = graph.node(name)
        record = {
            "node": name,
            "op": node.op,
            "inputs": list(node.inputs),
            "params": node.params_dict,
            "value": None,
            "error": None,
            "elapsed_s": 0.0,
            "memo_hit": False,
        }
        blocked = [ref for ref in node.inputs if ref in failed_reduces]
        if blocked:
            record["error"] = f"skipped: upstream reduce node(s) {blocked} failed"
            failed_reduces.add(name)
            reduces.append(record)
            continue
        node_start = time.perf_counter()
        memo_key = None
        if reduce_memoized:
            memo_key = active_cache.node_memo_key(batch_key, graph.node_signature(name))
            document = active_cache.memo_get(memo_key)
            if document is not None:
                record["value"] = document["value"]
                record["memo_hit"] = True
                record["elapsed_s"] = time.perf_counter() - node_start
                reduce_values[name] = record["value"]
                n_memo_hits += 1
                reduces.append(record)
                continue
        args = []
        for ref in node.inputs:
            if ref == "batch":
                args.append(batch)
            elif ref in reduce_values:
                args.append(reduce_values[ref])
            else:
                args.append(collected[ref])
        try:
            value = _json_value(op_info(node.op).func(*args, **node.params_dict))
        except Exception as exc:  # per-node isolation at batch scope
            _LOG.warning("analysis graph: reduce node %r failed: %s", name, exc)
            record["error"] = f"{type(exc).__name__}: {exc}"
            record["elapsed_s"] = time.perf_counter() - node_start
            failed_reduces.add(name)
            reduces.append(record)
            continue
        record["value"] = value
        record["elapsed_s"] = time.perf_counter() - node_start
        reduce_values[name] = value
        if memo_key is not None:
            active_cache.memo_put(memo_key, {
                "node": name,
                "op": node.op,
                "node_signature": graph.node_signature(name),
                "run_key": batch_key,
                "value": value,
            })
        reduces.append(record)

    total_nodes = len(run_specs) * sum(1 for item in items if item.ok) + len(reduces)
    return GraphBatchResult(
        items=items,
        reduces=reduces,
        graph=graph.to_spec(),
        execution={
            "scope": "batch",
            "executor": mode,
            "n_workers": n_workers,
            "signature": graph.signature(),
            "memoized": reduce_memoized or any(
                item.analysis is not None and item.analysis.execution.get("memoized")
                for item in items
            ),
            "n_memo_hits": n_memo_hits,
            "n_computed": max(total_nodes - n_memo_hits, 0),
            "wall_time": time.perf_counter() - start,
        },
    )

"""The analysis DAG: named nodes, declared inputs, build-time validation.

A graph generalizes the linear :class:`~repro.core.ops.AnalysisPipeline`
chain into a DAG of **named nodes**.  Each node applies one registered op to
declared inputs::

    import repro

    graph = repro.graph(
        {"name": "profile", "op": "integrated_profile"},
        {"name": "peaks", "op": "peaks", "inputs": ["stack"]},
        {"name": "moments", "op": "zernike_moments", "params": {"n_max": 4}},
        {"name": "fit", "op": "scaling_fit",
         "inputs": ["aperture", "brightness"]},        # a reduce node
    )

Inputs name either another node or one of the two **reserved sources**:

* ``"stack"`` — the per-run depth-resolved stack (per-run ops only);
* ``"batch"`` — the whole :class:`~repro.core.session.BatchRunResult`
  (reduce ops only).

A reduce node naming a *per-run* node as an input receives that node's
outputs **collected across the batch** (one list entry per successful item).

Everything is validated when the graph is built — unknown ops and unknown
input references fail with did-you-mean suggestions, arity is checked
against the op's signature, cycles are rejected with the offending nodes
named — long before any data is touched, keeping the fail-fast idiom of
:mod:`repro.core.ops`.
"""

from __future__ import annotations

import difflib
import hashlib
import inspect
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.ops import AnalysisPipeline, OpInfo, op_info
from repro.io.h5lite import H5LiteError, json_normalize
from repro.utils.validation import ValidationError

__all__ = [
    "RESERVED_INPUTS",
    "NodeSpec",
    "AnalysisGraph",
    "graph",
    "compile_linear",
    "as_graph",
]

#: Input names with built-in meaning: the per-run stack and the whole batch.
RESERVED_INPUTS = ("stack", "batch")


@dataclass(frozen=True)
class NodeSpec:
    """One named node: an op, its data inputs and bound parameters (immutable).

    ``after`` lists ordering-only edges — nodes that must complete first even
    though their values are not consumed.  Ordering edges participate in
    cycle detection and scheduling but not in node signatures (they cannot
    change a value, so they must not invalidate memos).
    """

    name: str
    op: str
    inputs: Tuple[str, ...] = ()
    params: Tuple[Tuple[str, object], ...] = ()
    after: Tuple[str, ...] = ()

    @property
    def params_dict(self) -> Dict[str, object]:
        """The bound parameters as a plain dict."""
        return dict(self.params)

    def to_dict(self) -> Dict:
        """JSON-safe record of this node (the graph's provenance unit)."""
        return {
            "name": self.name,
            "op": self.op,
            "inputs": list(self.inputs),
            "params": self.params_dict,
            "after": list(self.after),
        }

    def describe(self) -> str:
        """Short ``name = op(inputs, param=value)`` rendering."""
        parts = list(self.inputs)
        parts.extend(f"{key}={value!r}" for key, value in self.params)
        return f"{self.name} = {self.op}({', '.join(parts)})"


class AnalysisGraph:
    """An immutable, validated DAG of named analysis nodes.

    Build with :func:`repro.graph` and apply with :meth:`apply` to a
    :class:`~repro.core.session.RunResult`, a bare stack, a saved run file
    (run-scope: per-run nodes only) or a
    :class:`~repro.core.session.BatchRunResult` (batch-scope: per-run nodes
    fan out over the items, reduce nodes consume the collected outputs).

    Independent nodes execute concurrently on the shared thread pool, and
    when the target came through a :class:`~repro.core.cache.ResultCache`
    every node's value is memoized per ``(run key, node signature)`` — a
    change to one node's parameters recomputes only the dirty subgraph
    downstream of it.
    """

    __slots__ = ("_nodes", "_by_name", "_topo", "_signatures")

    def __init__(self, nodes):
        nodes = tuple(nodes)
        if not nodes:
            raise ValidationError(
                "empty analysis graph; add nodes with repro.graph({'name': ..., 'op': ...})"
            )
        seen: Dict[str, NodeSpec] = {}
        for node in nodes:
            if not isinstance(node, NodeSpec):
                raise ValidationError(
                    f"analysis graphs are built from NodeSpec entries, got {type(node).__name__}; "
                    "use repro.graph(...) to build from plain dict specs"
                )
            if not node.name or not isinstance(node.name, str):
                raise ValidationError("every graph node needs a non-empty string name")
            if node.name in RESERVED_INPUTS:
                raise ValidationError(
                    f"node name {node.name!r} is reserved (it names a built-in input source); "
                    "pick another name"
                )
            if node.name in seen:
                raise ValidationError(
                    f"duplicate node name {node.name!r}; node names must be unique "
                    "(they key inputs, results and memo entries)"
                )
            seen[node.name] = node
        self._nodes = nodes
        self._by_name = seen
        for node in nodes:
            self._validate_node(node)
        self._topo = self._toposort()
        self._signatures: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    # validation
    def _validate_node(self, node: NodeSpec) -> None:
        info = op_info(node.op)  # unknown ops fail here with did-you-mean
        if len(node.inputs) != info.n_inputs:
            raise ValidationError(
                f"node {node.name!r}: op {node.op!r} takes {info.n_inputs} data "
                f"input(s), got {len(node.inputs)} ({list(node.inputs)})"
            )
        for ref in node.inputs:
            self._validate_input_ref(node, info, ref)
        for ref in node.after:
            self._validate_after_ref(node, info, ref)
        placeholders = [None] * info.n_inputs
        try:
            inspect.signature(info.func).bind(*placeholders, **node.params_dict)
        except TypeError as exc:
            raise ValidationError(
                f"node {node.name!r}: op {node.op!r} rejects parameters "
                f"{sorted(node.params_dict)}: {exc}"
            ) from None

    def _validate_input_ref(self, node: NodeSpec, info: OpInfo, ref: str) -> None:
        if ref == node.name:
            raise ValidationError(f"node {node.name!r} lists itself as an input")
        if ref == "stack":
            if info.kind != "run":
                raise ValidationError(
                    f"node {node.name!r}: reduce op {node.op!r} cannot consume "
                    "'stack' (there is no single stack at batch scope); feed it "
                    "'batch' or a per-run node's collected outputs"
                )
            return
        if ref == "batch":
            if info.kind != "reduce":
                raise ValidationError(
                    f"node {node.name!r}: per-run op {node.op!r} cannot consume "
                    "'batch' (it runs once per item); only reduce ops see the "
                    "whole batch"
                )
            return
        upstream = self._by_name.get(ref)
        if upstream is None:
            self._unknown_reference(node, ref, role="input")
        if info.kind == "run" and op_info(upstream.op).kind == "reduce":
            raise ValidationError(
                f"node {node.name!r}: per-run op {node.op!r} cannot consume reduce "
                f"node {ref!r} — reduce values exist at batch scope, after every "
                "per-run node finished"
            )

    def _validate_after_ref(self, node: NodeSpec, info: OpInfo, ref: str) -> None:
        if ref == node.name:
            raise ValidationError(f"node {node.name!r} lists itself in 'after'")
        if ref in RESERVED_INPUTS:
            raise ValidationError(
                f"node {node.name!r}: 'after' orders against other nodes, not the "
                f"built-in source {ref!r}"
            )
        upstream = self._by_name.get(ref)
        if upstream is None:
            self._unknown_reference(node, ref, role="'after'")
        if info.kind == "run" and op_info(upstream.op).kind == "reduce":
            raise ValidationError(
                f"node {node.name!r}: per-run node cannot run after reduce node "
                f"{ref!r} — reduce nodes execute once the per-run phase is complete"
            )

    def _unknown_reference(self, node: NodeSpec, ref: str, role: str) -> None:
        known = sorted(self._by_name) + list(RESERVED_INPUTS)
        message = (
            f"node {node.name!r} references unknown {role} {ref!r}; "
            f"known nodes: {sorted(self._by_name)}, built-in sources: "
            f"{list(RESERVED_INPUTS)}"
        )
        close = difflib.get_close_matches(str(ref), known, n=1)
        if close:
            message += f" — did you mean {close[0]!r}?"
        raise ValidationError(message)

    def _dependencies(self, node: NodeSpec) -> List[str]:
        """Node names *node* waits on (value inputs plus ordering edges)."""
        deps = [ref for ref in node.inputs if ref not in RESERVED_INPUTS]
        deps.extend(ref for ref in node.after if ref not in deps)
        return deps

    def _toposort(self) -> Tuple[str, ...]:
        """Kahn's algorithm, deterministic: ready nodes run in spec order."""
        remaining = {node.name: set(self._dependencies(node)) for node in self._nodes}
        order: List[str] = []
        while remaining:
            ready = [node.name for node in self._nodes
                     if node.name in remaining and not remaining[node.name]]
            if not ready:
                cycle = sorted(remaining)
                raise ValidationError(
                    f"analysis graph has a cycle involving nodes {cycle}; "
                    "dependencies must form a DAG"
                )
            for name in ready:
                del remaining[name]
                order.append(name)
            for deps in remaining.values():
                deps.difference_update(ready)
        return tuple(order)

    # ------------------------------------------------------------------ #
    # introspection
    @property
    def nodes(self) -> Tuple[NodeSpec, ...]:
        """The graph's nodes, in spec order."""
        return self._nodes

    def node(self, name: str) -> NodeSpec:
        """Look up a node by name, failing fast with a suggestion."""
        try:
            return self._by_name[str(name)]
        except KeyError:
            known = sorted(self._by_name)
            message = f"unknown graph node {name!r}; nodes: {known}"
            close = difflib.get_close_matches(str(name), known, n=1)
            if close:
                message += f" — did you mean {close[0]!r}?"
            raise ValidationError(message) from None

    def node_kind(self, name: str) -> str:
        """``"run"`` or ``"reduce"`` for the named node."""
        return op_info(self.node(name).op).kind

    def run_nodes(self) -> List[NodeSpec]:
        """The per-run nodes, in spec order."""
        return [node for node in self._nodes if op_info(node.op).kind == "run"]

    def reduce_nodes(self) -> List[NodeSpec]:
        """The reduce nodes, in spec order."""
        return [node for node in self._nodes if op_info(node.op).kind == "reduce"]

    @property
    def has_reduce(self) -> bool:
        """Whether any node is a batch-level reduce."""
        return any(op_info(node.op).kind == "reduce" for node in self._nodes)

    def topo_order(self) -> Tuple[str, ...]:
        """Node names in a deterministic topological order."""
        return self._topo

    def waves(self) -> List[List[str]]:
        """Nodes grouped by dependency depth (each wave is independent).

        Wave *k* holds every node whose longest dependency chain has length
        *k* — the scheduler's upper bound on concurrency is the widest wave.
        """
        depth: Dict[str, int] = {}
        for name in self._topo:
            deps = self._dependencies(self._by_name[name])
            depth[name] = 1 + max((depth[d] for d in deps), default=-1)
        out: List[List[str]] = [[] for _ in range(max(depth.values()) + 1)]
        for node in self._nodes:
            out[depth[node.name]].append(node.name)
        return out

    def to_spec(self) -> List[Dict]:
        """JSON-safe node list (the graph's provenance contribution)."""
        return [node.to_dict() for node in self._nodes]

    def describe(self) -> str:
        """Human-readable one-line-per-node rendering, in spec order."""
        return "\n".join(node.describe() for node in self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ", ".join(node.name for node in self._nodes)
        return f"AnalysisGraph({names})"

    # ------------------------------------------------------------------ #
    # signatures (memoization keys)
    def node_signature(self, name: str) -> str:
        """Stable SHA-256 over the node's *value-relevant* ancestor closure.

        Covers the node's op, parameters and (recursively) everything its
        value inputs cover — so changing an upstream parameter dirties every
        descendant, while ordering-only ``after`` edges and unrelated
        branches leave the signature (and therefore the memo entries)
        untouched.
        """
        cached = self._signatures.get(name)
        if cached is not None:
            return cached
        node = self.node(name)
        payload = {
            "op": node.op,
            "params": node.params_dict,
            "inputs": [
                ref if ref in RESERVED_INPUTS else self.node_signature(ref)
                for ref in node.inputs
            ],
        }
        canonical = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
        signature = hashlib.sha256(canonical).hexdigest()
        self._signatures[name] = signature
        return signature

    def signature(self) -> str:
        """Stable SHA-256 of the whole graph (nodes, wiring and parameters)."""
        canonical = json.dumps(
            self.to_spec(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(canonical).hexdigest()

    # ------------------------------------------------------------------ #
    # execution (delegated to repro.analysisgraph.execute)
    def apply(self, target, *, cache=None, executor: str = "auto",
              max_workers: Optional[int] = None):
        """Execute the graph on *target* and return the outcome.

        Run scope (a :class:`~repro.core.session.RunResult`, a bare
        :class:`~repro.core.result.DepthResolvedStack` or a saved run file)
        returns a :class:`~repro.analysisgraph.results.GraphAnalysisResult`
        and requires a reduce-free graph.  Batch scope (a
        :class:`~repro.core.session.BatchRunResult`) returns a
        :class:`~repro.analysisgraph.results.GraphBatchResult` with per-item
        error capture.

        ``executor`` selects ``"serial"``, ``"threads"`` or ``"auto"``
        (threads when the graph — or the batch — offers any concurrency);
        ``cache`` overrides the memoization cache (defaults to the cache the
        target's runs are bound to).
        """
        from repro.analysisgraph.execute import execute_batch_graph, execute_run_graph
        from repro.core.session import BatchRunResult, RunResult

        if isinstance(target, BatchRunResult):
            return execute_batch_graph(
                self, target, cache=cache, executor=executor, max_workers=max_workers
            )
        if self.has_reduce:
            reduce_names = [node.name for node in self.reduce_nodes()]
            raise ValidationError(
                f"graph has reduce node(s) {reduce_names} which need a whole "
                f"batch; apply it to a BatchRunResult, got {type(target).__name__}"
            )
        if isinstance(target, RunResult):
            return execute_run_graph(
                self, target.result, run=target.provenance(), run_result=target,
                cache=cache, executor=executor, max_workers=max_workers,
            )
        from repro.core.result import DepthResolvedStack

        if isinstance(target, DepthResolvedStack):
            return execute_run_graph(
                self, target, run=None, run_result=None,
                cache=cache, executor=executor, max_workers=max_workers,
            )
        import os

        if isinstance(target, (str, os.PathLike)):
            from repro.io.image_stack import load_run_payload

            stack, record = load_run_payload(target)
            if record is not None:
                record = {key: value for key, value in record.items() if key != "report"}
            return execute_run_graph(
                self, stack, run=record, run_result=None,
                cache=cache, executor=executor, max_workers=max_workers,
            )
        raise ValidationError(
            "analysis graphs apply to a RunResult, a DepthResolvedStack, a "
            f"BatchRunResult or a saved run file path, got {type(target).__name__}"
        )

    def execute_chain(self, stack) -> List[object]:
        """Serial execution on a bare stack; values in spec order, raw errors.

        The compiled-linear path: :class:`~repro.core.ops.AnalysisPipeline`
        routes through here, so it must match the historical chain semantics
        exactly — strict spec order, no memoization, exceptions propagating
        unwrapped.
        """
        from repro.analysisgraph.execute import execute_chain

        return execute_chain(self, stack)


# --------------------------------------------------------------------------- #
# factories
def _build_node(spec) -> NodeSpec:
    """One :class:`NodeSpec` from a user-facing spec (dict, name or pair)."""
    if isinstance(spec, NodeSpec):
        return spec
    if isinstance(spec, str):
        spec = {"op": spec}
    elif isinstance(spec, tuple) and len(spec) == 2 and isinstance(spec[1], dict):
        spec = {"op": str(spec[0]), "params": spec[1]}
    if not (isinstance(spec, dict) and "op" in spec):
        raise ValidationError(
            f"invalid graph node spec {spec!r}; expected an op name, "
            "(name, params) or {'name': ..., 'op': ..., 'inputs': [...], "
            "'params': {...}, 'after': [...]}"
        )
    unknown = set(spec) - {"name", "op", "inputs", "params", "after"}
    if unknown:
        raise ValidationError(
            f"graph node spec has unknown key(s) {sorted(unknown)}; "
            "allowed: name, op, inputs, params, after"
        )
    op = str(spec["op"])
    name = str(spec.get("name") or op)
    inputs = spec.get("inputs")
    if inputs is None:
        info = op_info(op)
        if info.kind == "reduce":
            raise ValidationError(
                f"node {name!r}: reduce op {op!r} needs explicit inputs "
                "('batch' or the per-run node(s) to collect); there is no "
                "default batch-scope wiring"
            )
        inputs = ["stack"] * info.n_inputs
    if isinstance(inputs, str):
        inputs = [inputs]
    params = spec.get("params") or {}
    if not isinstance(params, dict):
        raise ValidationError(f"node {name!r}: params must be a dict, got {type(params).__name__}")
    try:
        params = json_normalize(params)
    except H5LiteError as exc:
        raise ValidationError(
            f"node {name!r}: op parameters must be JSON-serialisable: {exc}"
        ) from None
    after = spec.get("after") or ()
    if isinstance(after, str):
        after = [after]
    return NodeSpec(
        name=name,
        op=op,
        inputs=tuple(str(ref) for ref in inputs),
        params=tuple(sorted(params.items())),
        after=tuple(str(ref) for ref in after),
    )


def graph(*specs) -> AnalysisGraph:
    """Build an :class:`AnalysisGraph` from node specs.

    Each spec is a dict ``{"name", "op", "inputs", "params", "after"}``
    (``name`` defaults to the op name, ``inputs`` defaults to the per-run
    stack for run ops), a bare op name, or an ``(op, params)`` pair::

        repro.graph(
            "integrated_profile",
            {"name": "bright", "op": "aperture_total", "params": {"radius_fraction": 0.5}},
            {"name": "stats", "op": "sample_stats", "inputs": ["bright"]},
        )
    """
    return AnalysisGraph(_build_node(spec) for spec in specs)


def compile_linear(pipeline: AnalysisPipeline) -> AnalysisGraph:
    """Compile a linear :class:`~repro.core.ops.AnalysisPipeline` to a chain DAG.

    Every step becomes one node consuming the stack, chained with
    ordering-only ``after`` edges so the compiled graph executes in the exact
    step order (steps may repeat an op with different parameters, so node
    names disambiguate with a positional suffix when needed).
    """
    if not isinstance(pipeline, AnalysisPipeline):
        raise ValidationError(
            f"compile_linear() takes an AnalysisPipeline, got {type(pipeline).__name__}"
        )
    nodes: List[NodeSpec] = []
    used: set = set(RESERVED_INPUTS)
    previous: Optional[str] = None
    for index, step in enumerate(pipeline.steps):
        name = step.op
        if name in used:
            name = f"{step.op}_{index}"
        used.add(name)
        nodes.append(NodeSpec(
            name=name,
            op=step.op,
            inputs=("stack",),
            params=step.params,
            after=(previous,) if previous is not None else (),
        ))
        previous = name
    return AnalysisGraph(nodes)


def as_graph(value) -> AnalysisGraph:
    """Coerce *value* into an :class:`AnalysisGraph`.

    Accepts a prebuilt graph, a linear pipeline (compiled to a chain DAG), a
    single node spec or a sequence of node specs.
    """
    if isinstance(value, AnalysisGraph):
        return value
    if isinstance(value, AnalysisPipeline):
        return compile_linear(value)
    if isinstance(value, (str, dict, NodeSpec)) or (
        isinstance(value, tuple) and len(value) == 2 and isinstance(value[1], dict)
    ):
        return graph(value)
    if isinstance(value, (list, tuple)):
        return graph(*value)
    raise ValidationError(
        f"cannot build an analysis graph from {type(value).__name__}; "
        "pass node specs, an AnalysisPipeline or an AnalysisGraph"
    )

"""Zernike-moment decomposition of 2-D intensity maps.

The morphology-classification path of the analysis graph (Capalbo et al.,
arXiv:2310.07759 applies exactly this to cluster maps): an integrated
detector image is projected onto the Zernike polynomial basis over an
inscribed disk, and the low-order moments summarize the map's morphology —
``c00`` is 1 by normalization, ``c20``/``c40`` measure radial concentration,
non-zero ``m`` moments measure azimuthal asymmetry.

Moment convention (discrete, intensity-weighted)::

    c_{n,m} = (n + 1) * sum_k  w_k * R_n^m(rho_k) * exp(-i * m * theta_k)

with ``w`` the pixel intensities inside the unit disk normalized to sum to
one.  Consequences the golden tests pin down analytically:

* ``c00 == 1`` exactly, for any map;
* a point source at the exact center has ``c20 = (2+1) * R_2^0(0) = -3``
  and ``c40 = (4+1) * R_4^0(0) = 5``;
* any map with the grid's 4-fold symmetry has exactly vanishing
  ``m in {1, 2, 3}`` moments (the phase terms cancel in symmetric pairs).
"""

from __future__ import annotations

import math
from typing import Dict, List

import numpy as np

from repro.utils.validation import ValidationError

__all__ = ["radial_polynomial", "zernike_moments"]


def radial_polynomial(n: int, m: int, rho: np.ndarray) -> np.ndarray:
    """The Zernike radial polynomial ``R_n^m`` evaluated at radii *rho*.

    Defined for ``0 <= m <= n`` with ``n - m`` even (zero otherwise by
    convention, which this function rejects rather than silently returns).
    """
    n = int(n)
    m = int(m)
    if n < 0 or m < 0 or m > n or (n - m) % 2:
        raise ValidationError(
            f"radial polynomial R_n^m needs 0 <= m <= n with n-m even, got n={n}, m={m}"
        )
    rho = np.asarray(rho, dtype=np.float64)
    out = np.zeros_like(rho)
    for k in range((n - m) // 2 + 1):
        coefficient = (
            (-1) ** k * math.factorial(n - k)
            / (math.factorial(k)
               * math.factorial((n + m) // 2 - k)
               * math.factorial((n - m) // 2 - k))
        )
        out += coefficient * rho ** (n - 2 * k)
    return out


def zernike_moments(
    image: np.ndarray, n_max: int = 4, radius_fraction: float = 1.0
) -> List[Dict]:
    """Zernike moments of a 2-D map over its inscribed disk.

    Returns one record per ``(n, m)`` with ``n <= n_max``, ``0 <= m <= n``
    and ``n - m`` even — ``{"n", "m", "re", "im", "abs"}`` — ordered by
    ``n`` then ``m``.  The disk is centered on the image center with radius
    ``radius_fraction`` times the largest inscribed radius; intensities
    inside it are normalized to sum to one, so ``c00`` is exactly 1 and maps
    of different total brightness are directly comparable.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2 or image.size == 0:
        raise ValidationError(
            f"zernike_moments needs a non-empty 2-D map, got shape {image.shape}"
        )
    n_max = int(n_max)
    if n_max < 0:
        raise ValidationError(f"n_max must be >= 0, got {n_max}")
    radius_fraction = float(radius_fraction)
    if not radius_fraction > 0:
        raise ValidationError(f"radius_fraction must be > 0, got {radius_fraction}")

    n_rows, n_cols = image.shape
    center_row = (n_rows - 1) / 2.0
    center_col = (n_cols - 1) / 2.0
    radius = radius_fraction * min(n_rows - 1, n_cols - 1) / 2.0
    if radius <= 0:  # a 1-pixel map: the center pixel is the whole disk
        radius = 1.0
    rows, cols = np.mgrid[0:n_rows, 0:n_cols]
    dy = (rows - center_row) / radius
    dx = (cols - center_col) / radius
    rho = np.sqrt(dx * dx + dy * dy)
    inside = rho <= 1.0 + 1e-12

    weights = image[inside]
    if np.any(weights < 0):
        raise ValidationError("zernike_moments needs a non-negative intensity map")
    total = float(weights.sum())
    if total <= 0:
        raise ValidationError(
            "zernike_moments needs positive total intensity inside the disk"
        )
    weights = weights / total
    rho_in = rho[inside]
    theta_in = np.arctan2(dy[inside], dx[inside])

    moments: List[Dict] = []
    for n in range(n_max + 1):
        for m in range(n % 2, n + 1, 2):
            radial = radial_polynomial(n, m, rho_in)
            value = (n + 1) * np.sum(weights * radial * np.exp(-1j * m * theta_in))
            moments.append({
                "n": n,
                "m": m,
                "re": float(value.real),
                "im": float(value.imag),
                "abs": float(abs(value)),
            })
    return moments

"""Cross-run science ops: aperture photometry, morphology, sample reductions.

The population-level analyses the related work performs across cluster
samples, as first-class registry ops:

* per-run — :func:`aperture_total` (model-independent aperture-integrated
  map totals, the Y_SZ idiom of Sayers et al., arXiv:1010.1798) and
  :func:`zernike_moments_op` (Zernike morphology of the integrated detector
  image, Capalbo et al., arXiv:2310.07759);
* reduce — :func:`integrated_estimate` (sample aggregate of per-run totals),
  :func:`scaling_fit` (log-log scaling relation between two derived
  quantities across the sample, Holanda & da Silva, arXiv:2007.14199) and
  :func:`sample_stats` (median/IQR/outlier flags per derived quantity).

Registered on import of :mod:`repro.analysisgraph` and resolved through the
one op registry, so they appear in ``repro.ops()`` / ``repro-analyze --list``
next to the built-ins.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysisgraph.zernike import zernike_moments
from repro.core.ops import register_op, register_reduce_op
from repro.core.result import DepthResolvedStack
from repro.utils.validation import ValidationError

__all__ = [
    "aperture_total",
    "zernike_moments_op",
    "integrated_estimate",
    "scaling_fit",
    "sample_stats",
]


# --------------------------------------------------------------------------- #
# per-run ops
def _integrated_image(result: DepthResolvedStack) -> np.ndarray:
    """The depth-integrated detector image ``(n_rows, n_cols)``."""
    return np.asarray(result.data, dtype=np.float64).sum(axis=0)


@register_op("aperture_total", description="aperture-integrated total of the detector image")
def aperture_total(result: DepthResolvedStack, radius_fraction: float = 1.0) -> float:
    """Total intensity of the integrated detector image inside a centered disk.

    ``radius_fraction`` scales the largest inscribed radius (1.0: the whole
    inscribed disk); the model-independent integrated estimate of a map that
    cross-run reductions aggregate over a sample.
    """
    radius_fraction = float(radius_fraction)
    if not radius_fraction > 0:
        raise ValidationError(f"radius_fraction must be > 0, got {radius_fraction}")
    image = _integrated_image(result)
    n_rows, n_cols = image.shape
    radius = radius_fraction * min(n_rows - 1, n_cols - 1) / 2.0
    if radius <= 0:
        return float(image.sum())
    rows, cols = np.mgrid[0:n_rows, 0:n_cols]
    dy = rows - (n_rows - 1) / 2.0
    dx = cols - (n_cols - 1) / 2.0
    inside = dy * dy + dx * dx <= radius * radius + 1e-9
    return float(image[inside].sum())


@register_op("zernike_moments", description="Zernike morphology moments of the integrated detector image")
def zernike_moments_op(
    result: DepthResolvedStack, n_max: int = 4, radius_fraction: float = 1.0
) -> Dict:
    """Zernike moments of the depth-integrated detector image.

    See :func:`repro.analysisgraph.zernike.zernike_moments` for the moment
    convention; ``c00`` is 1 by normalization and non-zero ``m`` moments
    flag azimuthal asymmetry (the morphology-classification features).
    """
    moments = zernike_moments(
        _integrated_image(result), n_max=n_max, radius_fraction=radius_fraction
    )
    return {
        "n_max": int(n_max),
        "radius_fraction": float(radius_fraction),
        "moments": moments,
    }


# --------------------------------------------------------------------------- #
# reduce ops
def _numeric_series(values, key: Optional[str], op: str, role: str) -> Tuple[List[float], int]:
    """Collected values as floats; ``(series, n_dropped_nonfinite)``.

    Entries may be plain numbers or dicts carrying one (then *key* selects
    it).  Anything non-numeric fails fast naming the op, the role and the
    offending index — a reduce over a sample must not silently skip items.
    """
    if not isinstance(values, (list, tuple)):
        raise ValidationError(
            f"{op} expects collected per-run values for {role} (a list); got "
            f"{type(values).__name__} — feed it a per-run node, not 'batch'"
        )
    series: List[float] = []
    dropped = 0
    for index, entry in enumerate(values):
        if isinstance(entry, dict):
            if key is None:
                raise ValidationError(
                    f"{op}: {role}[{index}] is a dict; pass the key to reduce on "
                    f"(available: {sorted(entry)})"
                )
            if key not in entry:
                raise ValidationError(
                    f"{op}: {role}[{index}] has no key {key!r} (available: {sorted(entry)})"
                )
            entry = entry[key]
        if isinstance(entry, bool) or not isinstance(entry, (int, float)):
            raise ValidationError(
                f"{op}: {role}[{index}] is not a number "
                f"(got {type(entry).__name__}); reduce ops consume numeric "
                "per-run values"
            )
        entry = float(entry)
        if not math.isfinite(entry):
            dropped += 1
            continue
        series.append(entry)
    return series, dropped


@register_reduce_op("integrated_estimate", description="sample aggregate of per-run integrated totals")
def integrated_estimate(values, key: Optional[str] = None) -> Dict:
    """Aggregate a per-run integrated quantity across the sample.

    The stacked model-independent estimate: total, mean, median and spread
    of the collected per-run values (e.g. an ``aperture_total`` node).
    """
    series, dropped = _numeric_series(values, key, "integrated_estimate", "values")
    if not series:
        raise ValidationError(
            "integrated_estimate needs at least one finite value "
            f"(got {len(values)} entries, {dropped} non-finite)"
        )
    data = np.asarray(series, dtype=np.float64)
    return {
        "n": int(data.size),
        "n_dropped": int(dropped),
        "total": float(data.sum()),
        "mean": float(data.mean()),
        "median": float(np.median(data)),
        "std": float(data.std()),
        "min": float(data.min()),
        "max": float(data.max()),
    }


@register_reduce_op("scaling_fit", description="log-log scaling relation between two derived quantities")
def scaling_fit(
    x_values,
    y_values,
    x_key: Optional[str] = None,
    y_key: Optional[str] = None,
) -> Dict:
    """Fit ``log10(y) = slope * log10(x) + intercept`` across the sample.

    The scaling-relation estimator: pairs with a non-positive or non-finite
    member are dropped (and counted), the fit is an ordinary least-squares
    line in log-log space, and ``scatter_dex`` is the RMS of the residuals
    in dex — the intrinsic-scatter figure the cluster scaling literature
    quotes.
    """
    xs, x_dropped = _numeric_series(x_values, x_key, "scaling_fit", "x_values")
    ys, y_dropped = _numeric_series(y_values, y_key, "scaling_fit", "y_values")
    if len(xs) != len(ys):
        raise ValidationError(
            f"scaling_fit needs paired samples, got {len(xs)} x value(s) and "
            f"{len(ys)} y value(s); feed it two per-run nodes collected over "
            "the same batch"
        )
    pairs = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    dropped = x_dropped + y_dropped + (len(xs) - len(pairs))
    if len(pairs) < 2:
        raise ValidationError(
            f"scaling_fit needs at least 2 usable pairs (positive, finite), got "
            f"{len(pairs)} of {len(xs)}"
        )
    log_x = np.log10([pair[0] for pair in pairs])
    log_y = np.log10([pair[1] for pair in pairs])
    slope, intercept = np.polyfit(log_x, log_y, 1)
    predicted = slope * log_x + intercept
    residuals = log_y - predicted
    ss_res = float(np.sum(residuals ** 2))
    ss_tot = float(np.sum((log_y - log_y.mean()) ** 2))
    return {
        "slope": float(slope),
        "intercept": float(intercept),
        "scatter_dex": float(np.sqrt(np.mean(residuals ** 2))),
        "r_squared": 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0,
        "n_used": int(len(pairs)),
        "n_dropped": int(dropped),
    }


@register_reduce_op("sample_stats", description="median/IQR/outlier flags of a derived quantity")
def sample_stats(values, key: Optional[str] = None, outlier_iqr: float = 1.5) -> Dict:
    """Robust sample statistics with Tukey-fence outlier flags.

    ``outliers`` holds the indices (into the collected order — i.e. the
    successful batch items in input order) of values outside
    ``[q1 - k*iqr, q3 + k*iqr]`` with ``k = outlier_iqr``.
    """
    outlier_iqr = float(outlier_iqr)
    if outlier_iqr < 0:
        raise ValidationError(f"outlier_iqr must be >= 0, got {outlier_iqr}")
    series, dropped = _numeric_series(values, key, "sample_stats", "values")
    if not series:
        raise ValidationError(
            "sample_stats needs at least one finite value "
            f"(got {len(values)} entries, {dropped} non-finite)"
        )
    data = np.asarray(series, dtype=np.float64)
    q1, median, q3 = (float(q) for q in np.percentile(data, [25.0, 50.0, 75.0]))
    iqr = q3 - q1
    low = q1 - outlier_iqr * iqr
    high = q3 + outlier_iqr * iqr
    outliers = [int(i) for i, value in enumerate(series) if value < low or value > high]
    return {
        "n": int(data.size),
        "n_dropped": int(dropped),
        "median": median,
        "q1": q1,
        "q3": q3,
        "iqr": iqr,
        "mean": float(data.mean()),
        "std": float(data.std()),
        "min": float(data.min()),
        "max": float(data.max()),
        "fence_low": low,
        "fence_high": high,
        "outliers": outliers,
        "n_outliers": len(outliers),
    }

"""Outcome types for DAG analyses: per-run and batch-scope results.

:class:`GraphAnalysisResult` extends the linear
:class:`~repro.core.ops.AnalysisResult` with the node graph, per-node
timings and memoization hits in its provenance — one record per node, keyed
by **node name** (two nodes may share an op).  :class:`GraphBatchResult` is
the batch-scope outcome: per-item results with the same per-item error
capture as linear batch analyses, plus one record per reduce node.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.ops import AnalysisResult
from repro.utils.version import package_version

__all__ = ["GraphAnalysisResult", "GraphBatchItem", "GraphBatchResult"]


@dataclass
class GraphAnalysisResult(AnalysisResult):
    """One graph executed on one run.

    ``results`` holds one record per node in spec order —
    ``{"node", "op", "inputs", "params", "value"}`` — and indexing prefers
    node names (``outcome["bright"]``) with op names as a fallback, so
    single-purpose graphs read exactly like pipeline outcomes.  ``graph`` is
    the node-spec list and ``execution`` records how it ran: executor,
    per-node wall times and memo hits.
    """

    graph: List[Dict] = field(default_factory=list)
    execution: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    def node_names(self) -> List[str]:
        """Executed node names, in spec order."""
        return [record["node"] for record in self.results]

    @property
    def values(self) -> Dict[str, object]:
        """Mapping of node name to value."""
        return {record["node"]: record["value"] for record in self.results}

    def __getitem__(self, name: str):
        for record in self.results:
            if record["node"] == name:
                return record["value"]
        for record in self.results:  # op-name fallback (pipeline ergonomics)
            if record["op"] == name:
                return record["value"]
        raise KeyError(
            f"{name!r} names neither a node nor an op of this analysis; "
            f"nodes: {self.node_names()}"
        )

    def __contains__(self, name: str) -> bool:
        return any(
            record["node"] == name or record["op"] == name for record in self.results
        )

    # ------------------------------------------------------------------ #
    def provenance(self) -> Dict:
        """Chained provenance: run record, node graph and execution detail."""
        return {
            "repro_version": package_version(),
            "graph": {"nodes": list(self.graph), "signature": self.execution.get("signature")},
            "execution": dict(self.execution),
            "run": self.run,
        }

    def summary(self) -> str:
        """Human-readable one-line-per-node summary."""
        lines = []
        for record in self.results:
            value = record["value"]
            shown = f"{len(value)} item(s)" if isinstance(value, list) else value
            memo = " [memo]" if record.get("memo_hit") else ""
            lines.append(f"{record['node']} ({record['op']}): {shown}{memo}")
        return "\n".join(lines)


@dataclass
class GraphBatchItem:
    """One batch item's per-run subgraph outcome."""

    input_path: str
    ok: bool
    analysis: Optional[GraphAnalysisResult] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict:
        """JSON-safe record of this item."""
        return {
            "input_path": self.input_path,
            "ok": self.ok,
            "analysis": None if self.analysis is None else self.analysis.to_dict(),
            "error": self.error,
        }


@dataclass
class GraphBatchResult:
    """A graph executed over a whole batch.

    ``items`` mirrors linear batch analyses (per-item error capture, input
    order preserved); ``reduces`` holds one record per reduce node —
    ``{"node", "op", "inputs", "params", "value", "error", "elapsed_s",
    "memo_hit"}`` — in spec order.  ``outcome["fit"]`` returns a reduce
    node's value and fails loudly when that node errored or was skipped.
    """

    items: List[GraphBatchItem] = field(default_factory=list)
    reduces: List[Dict] = field(default_factory=list)
    graph: List[Dict] = field(default_factory=list)
    execution: Dict = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    @property
    def n_ok(self) -> int:
        """Items whose per-run subgraph succeeded."""
        return sum(1 for item in self.items if item.ok)

    @property
    def n_failed(self) -> int:
        """Items whose run or per-run subgraph failed."""
        return len(self.items) - self.n_ok

    @property
    def succeeded(self) -> List[GraphBatchItem]:
        """The successful items, in input order."""
        return [item for item in self.items if item.ok]

    @property
    def failed(self) -> List[GraphBatchItem]:
        """The failed items, in input order."""
        return [item for item in self.items if not item.ok]

    def reduce_names(self) -> List[str]:
        """Reduce node names, in spec order."""
        return [record["node"] for record in self.reduces]

    @property
    def values(self) -> Dict[str, object]:
        """Mapping of reduce node name to value (successful reduces only)."""
        return {
            record["node"]: record["value"]
            for record in self.reduces if record.get("error") is None
        }

    def __getitem__(self, name: str):
        for record in self.reduces:
            if record["node"] == name:
                if record.get("error") is not None:
                    raise KeyError(
                        f"reduce node {name!r} did not produce a value: {record['error']}"
                    )
                return record["value"]
        raise KeyError(
            f"{name!r} is not a reduce node of this analysis; reduce nodes: "
            f"{self.reduce_names()} (per-item values live on .items)"
        )

    def __contains__(self, name: str) -> bool:
        return any(record["node"] == name for record in self.reduces)

    # ------------------------------------------------------------------ #
    def provenance(self) -> Dict:
        """JSON-safe provenance: node graph plus execution detail."""
        return {
            "repro_version": package_version(),
            "graph": {"nodes": list(self.graph), "signature": self.execution.get("signature")},
            "execution": dict(self.execution),
        }

    def to_dict(self) -> Dict:
        """JSON-safe record of the whole batch-scope analysis."""
        return {
            "provenance": self.provenance(),
            "n_ok": self.n_ok,
            "n_failed": self.n_failed,
            "items": [item.to_dict() for item in self.items],
            "reduces": [dict(record) for record in self.reduces],
        }

    def to_json(self, indent: int = 2) -> str:
        """The batch-scope analysis record as a JSON document."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def summary(self) -> str:
        """Human-readable summary: item tally plus one line per reduce node."""
        lines = [f"items: {self.n_ok} ok, {self.n_failed} failed of {len(self.items)}"]
        for record in self.reduces:
            if record.get("error") is not None:
                lines.append(f"{record['node']} ({record['op']}): ERROR {record['error']}")
                continue
            value = record["value"]
            shown = f"{len(value)} item(s)" if isinstance(value, list) else value
            memo = " [memo]" if record.get("memo_hit") else ""
            lines.append(f"{record['node']} ({record['op']}): {shown}{memo}")
        return "\n".join(lines)

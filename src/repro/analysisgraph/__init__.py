"""Cross-run analysis graphs: DAG pipelines, reduce ops, memoized execution.

The batch-level generalization of :mod:`repro.core.ops`: analyses become a
DAG of named nodes (:func:`repro.graph`) mixing per-run ops with **reduce
ops** that consume a whole batch — independent nodes execute concurrently on
the shared thread pool, and every node's value is memoized per
``(run key, node signature)`` so only dirty subgraphs recompute.

Importing this package registers the cross-run science ops
(``aperture_total``, ``zernike_moments``, ``integrated_estimate``,
``scaling_fit``, ``sample_stats``) in the one op registry.
"""

from repro.analysisgraph.graph import (  # noqa: F401
    RESERVED_INPUTS,
    AnalysisGraph,
    NodeSpec,
    as_graph,
    compile_linear,
    graph,
)
from repro.analysisgraph.execute import (  # noqa: F401
    GraphExecutionError,
    execute_batch_graph,
    execute_run_graph,
)
from repro.analysisgraph.results import (  # noqa: F401
    GraphAnalysisResult,
    GraphBatchItem,
    GraphBatchResult,
)
from repro.analysisgraph import science_ops  # noqa: F401  (registers the ops)
from repro.analysisgraph import zernike  # noqa: F401

__all__ = [
    "RESERVED_INPUTS",
    "NodeSpec",
    "AnalysisGraph",
    "graph",
    "compile_linear",
    "as_graph",
    "GraphExecutionError",
    "execute_run_graph",
    "execute_batch_graph",
    "GraphAnalysisResult",
    "GraphBatchItem",
    "GraphBatchResult",
]

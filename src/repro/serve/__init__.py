"""Reconstruction-as-a-service: the ``repro-serve`` daemon and its client.

Stdlib-only serving layer over the library's persistent worker pool and
content-addressed result cache.  See :mod:`repro.serve.app` for the daemon,
:mod:`repro.serve.client` for the bundled client, and the README's
*Serving* section for the HTTP API.
"""

from repro.serve.app import (
    ReproServer,
    ServeSettings,
    ServerHandle,
    default_workers,
    run_server,
    start_in_thread,
)
from repro.serve.client import Backpressure, JobFailed, ServeClient, ServeError
from repro.serve.jobs import Job, JobState, parse_submission
from repro.serve.metrics import LatencySeries, ServeMetrics, percentile
from repro.serve.queue import FairPriorityQueue, QueueFull

__all__ = [
    "ReproServer",
    "ServeSettings",
    "ServerHandle",
    "start_in_thread",
    "run_server",
    "default_workers",
    "ServeClient",
    "ServeError",
    "Backpressure",
    "JobFailed",
    "Job",
    "JobState",
    "parse_submission",
    "ServeMetrics",
    "LatencySeries",
    "percentile",
    "FairPriorityQueue",
    "QueueFull",
]

"""Serving metrics: counters, gauges, and per-stage latency percentiles.

One :class:`ServeMetrics` object per daemon; the ``/metrics`` endpoint
renders :meth:`ServeMetrics.to_dict` as JSON.  Latency series keep a
bounded reservoir of the most recent samples per stage (``queue_wait``,
``run``, ``total``) and compute percentiles on demand — recent-window
percentiles are what an operator tuning queue depth and worker count
actually needs, and the bound keeps a month-long daemon's memory flat.

Locks guard both the series and the counters because samples and counter
bumps can land from executor callbacks while ``/metrics`` snapshots from
the loop thread — ``+=`` on a dict entry is a read-modify-write, not an
atomic step.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional

__all__ = ["LatencySeries", "ServeMetrics", "percentile", "merge_counter_deltas"]

#: Samples kept per latency stage (recent-window percentiles).
DEFAULT_WINDOW = 2048


def percentile(sorted_values: List[float], q: float) -> float:
    """The *q*-quantile (0..1) of an already-sorted non-empty list.

    Nearest-rank definition (the one monitoring systems use): no
    interpolation, every reported value is a latency that actually
    happened.
    """
    if not sorted_values:
        raise ValueError("percentile of an empty series")
    rank = max(1, min(len(sorted_values), int(round(q * len(sorted_values) + 0.5))))
    return sorted_values[rank - 1]


class LatencySeries:
    """A bounded reservoir of seconds with on-demand percentile snapshots."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._samples: "deque[float]" = deque(maxlen=int(window))
        self._count = 0
        self._total = 0.0
        self._lock = threading.Lock()

    def record(self, seconds: float) -> None:
        with self._lock:
            self._samples.append(float(seconds))
            self._count += 1
            self._total += float(seconds)

    def snapshot(self) -> Dict:
        """JSON-safe stats: lifetime count/mean plus windowed percentiles."""
        with self._lock:
            window = sorted(self._samples)
            count, total = self._count, self._total
        if not window:
            return {"count": 0, "mean_s": None, "p50_s": None, "p90_s": None,
                    "p99_s": None, "max_s": None}
        return {
            "count": count,
            "mean_s": total / count,
            "p50_s": percentile(window, 0.50),
            "p90_s": percentile(window, 0.90),
            "p99_s": percentile(window, 0.99),
            "max_s": window[-1],
        }


class ServeMetrics:
    """Everything the ``/metrics`` endpoint exposes, in one place.

    Counter semantics (each counts *jobs*, not HTTP requests):

    ``submitted``
        accepted submissions (every path: scheduled, cache hit, collapsed);
    ``rejected``
        submissions refused with 429 (queue at capacity);
    ``computed``
        jobs that actually executed on the pool — the number the
        collapse/cache tests pin down: N identical concurrent submissions
        must move ``submitted`` by N and ``computed`` by exactly 1;
    ``cache_hits``
        jobs completed at admission from the result cache;
    ``collapsed``
        jobs completed by attaching to an identical in-flight computation;
    ``completed`` / ``failed`` / ``cancelled`` / ``timeouts`` / ``retries``
        terminal accounting; ``completed`` includes hits and collapses.
    """

    COUNTERS = (
        "submitted", "rejected", "computed", "cache_hits", "collapsed",
        "completed", "failed", "cancelled", "timeouts", "retries",
    )

    def __init__(self, window: int = DEFAULT_WINDOW):
        self.started_unix = time.time()
        # guards ``counts`` — bumps arrive from pool-side done-callbacks
        # while the loop thread snapshots, and `+=` is not atomic
        self._lock = threading.Lock()
        self.counts: Dict[str, int] = {name: 0 for name in self.COUNTERS}
        self.latency = {
            "queue_wait": LatencySeries(window),
            "run": LatencySeries(window),
            "total": LatencySeries(window),
        }

    # ------------------------------------------------------------------ #
    def inc(self, name: str, by: int = 1) -> None:
        with self._lock:
            self.counts[name] += by

    def record_latency(self, stage: str, seconds: Optional[float]) -> None:
        if seconds is not None:
            self.latency[stage].record(seconds)

    def record_job_latencies(self, job) -> None:
        """Record every stage a terminal job measured (None stages skipped)."""
        self.record_latency("queue_wait", job.queue_wait_s)
        self.record_latency("run", job.run_s)
        self.record_latency("total", job.total_s)

    # ------------------------------------------------------------------ #
    def to_dict(
        self,
        queue_snapshot: Optional[Dict] = None,
        inflight: int = 0,
        cache_counters: Optional[Dict] = None,
        pools: Optional[Dict] = None,
        draining: bool = False,
        extra: Optional[Dict] = None,
    ) -> Dict:
        """The full ``/metrics`` JSON document."""
        with self._lock:
            jobs = dict(self.counts)  # one coherent snapshot of every counter
        submitted = jobs["submitted"]
        served_fast = jobs["cache_hits"] + jobs["collapsed"]
        out = {
            "uptime_s": time.time() - self.started_unix,
            "draining": draining,
            "jobs": jobs,
            "inflight": inflight,
            "queue": queue_snapshot or {},
            "cache": cache_counters or {},
            "singleflight": {
                "collapsed": jobs["collapsed"],
                "admission_hits": jobs["cache_hits"],
                #: fraction of accepted jobs that never touched the pool
                "fast_path_rate": (served_fast / submitted) if submitted else None,
            },
            "latency": {name: series.snapshot() for name, series in self.latency.items()},
            "pools": pools or {},
        }
        if extra:
            out.update(extra)
        return out


def merge_counter_deltas(before: Dict, after: Dict, names: Iterable[str]) -> Dict:
    """``after - before`` for the named counters (benchmark/test helper)."""
    return {name: after[name] - before[name] for name in names}

"""The job model of the ``repro-serve`` daemon.

A job is one client request for a reconstruction (plus optional analysis
pipeline) of one source file.  The daemon's whole lifecycle hangs off the
:class:`Job` object: admission stamps it with the content-addressed cache
key, the queue orders it, the executor drives it through the state machine,
and the HTTP layer serializes :meth:`Job.status_dict` back to the client.

States
------
``queued → running → done | failed`` with two short-circuits:

* admission may complete a job as ``done`` immediately (cache hit, or
  collapsed onto an identical in-flight computation — ``job.served`` records
  which path it took);
* a queued job may be ``cancelled`` before it starts (running jobs cannot be
  preempted: reconstructions execute on worker threads/processes and are
  left to finish; see the README's serving section).

Everything a client can see is JSON-safe; the heavyweight objects
(:class:`~repro.core.config.ReconstructionConfig`, the analysis pipeline)
stay server-side on the job.
"""

from __future__ import annotations

import enum
import itertools
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import ReconstructionConfig
from repro.utils.validation import ValidationError

__all__ = ["JobState", "Job", "parse_submission"]

#: Cap on the ``client`` identifier length (it lands in logs and metrics).
MAX_CLIENT_ID_LEN = 64

#: Client id used when a submission names none.
DEFAULT_CLIENT_ID = "anonymous"

_SEQ = itertools.count()


class JobState(str, enum.Enum):
    """Lifecycle states (``str`` subclass so JSON serialization is direct)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


@dataclass
class Job:
    """One submitted reconstruction request and its full lifecycle record."""

    client: str
    source_path: str
    config: ReconstructionConfig
    priority: int = 0
    #: analysis pipeline to apply to the finished run (server-side object)
    pipeline: Optional[object] = None
    #: the op specs as submitted (JSON-safe provenance of ``pipeline``)
    analyze_specs: Optional[List] = None
    timeout_s: Optional[float] = None
    id: str = field(default_factory=lambda: uuid.uuid4().hex[:16])
    #: monotonic admission sequence (queue tie-breaker, stable ordering)
    seq: int = field(default_factory=lambda: next(_SEQ))
    state: JobState = JobState.QUEUED
    #: content-addressed cache key (None: source not fingerprintable)
    key: Optional[str] = None
    #: how the job completed: "computed" | "cache" | "collapsed" | None
    served: Optional[str] = None
    error: Optional[str] = None
    #: JSON-safe result record (provenance + analysis), set on DONE
    outcome: Optional[Dict] = None
    attempts: int = 0
    submitted_unix: float = field(default_factory=time.time)
    started_unix: Optional[float] = None
    finished_unix: Optional[float] = None
    #: identical queued requests collapsed onto this computation
    followers: List["Job"] = field(default_factory=list)
    #: the in-flight job this one collapsed onto (None for leaders)
    leader: Optional["Job"] = None

    # ------------------------------------------------------------------ #
    def mark_running(self) -> None:
        self.state = JobState.RUNNING
        self.started_unix = time.time()

    def finish_ok(self, outcome: Dict, served: str) -> None:
        self.outcome = outcome
        self.served = served
        self.state = JobState.DONE
        self.finished_unix = time.time()

    def finish_error(self, error: str) -> None:
        self.error = error
        self.state = JobState.FAILED
        self.finished_unix = time.time()

    def cancel(self) -> None:
        self.state = JobState.CANCELLED
        self.finished_unix = time.time()

    # ------------------------------------------------------------------ #
    @property
    def queue_wait_s(self) -> Optional[float]:
        """Seconds from submission to execution start (None until started)."""
        if self.started_unix is None:
            return None
        return self.started_unix - self.submitted_unix

    @property
    def run_s(self) -> Optional[float]:
        """Seconds the computation itself took (None until finished)."""
        if self.started_unix is None or self.finished_unix is None:
            return None
        return self.finished_unix - self.started_unix

    @property
    def total_s(self) -> Optional[float]:
        """Seconds from submission to terminal state (None until terminal)."""
        if self.finished_unix is None:
            return None
        return self.finished_unix - self.submitted_unix

    # ------------------------------------------------------------------ #
    def status_dict(self) -> Dict:
        """The JSON-safe view ``GET /v1/jobs/<id>`` returns."""
        return {
            "id": self.id,
            "state": self.state.value,
            "client": self.client,
            "priority": self.priority,
            "source": {"path": self.source_path},
            "key": self.key,
            "served": self.served,
            "error": self.error,
            "attempts": self.attempts,
            "analyze": self.analyze_specs,
            "timings": {
                "submitted_unix": self.submitted_unix,
                "started_unix": self.started_unix,
                "finished_unix": self.finished_unix,
                "queue_wait_s": self.queue_wait_s,
                "run_s": self.run_s,
                "total_s": self.total_s,
            },
        }


def parse_submission(body: Dict) -> Job:
    """Validate a ``POST /v1/jobs`` body and build the :class:`Job`.

    Raises :class:`~repro.utils.validation.ValidationError` (mapped to a 400
    response) for anything malformed — fail-fast at admission, the same
    idiom as :class:`~repro.core.config.ReconstructionConfig` itself.  The
    config dict goes through :meth:`ReconstructionConfig.from_dict`, so
    every field the library validates is validated here too, and the job's
    cache key is computed from exactly the config a library user would run.
    """
    if not isinstance(body, dict):
        raise ValidationError("submission body must be a JSON object")
    source = body.get("source")
    if not isinstance(source, dict) or not source.get("path"):
        raise ValidationError('submission requires a source: {"path": "<file>"}')
    path = str(source["path"])
    if not os.path.isfile(path):
        raise ValidationError(f"source path does not exist on the server: {path!r}")
    config_dict = body.get("config")
    if not isinstance(config_dict, dict):
        raise ValidationError("submission requires a config object (ReconstructionConfig.to_dict form)")
    config = ReconstructionConfig.from_dict(config_dict)

    pipeline = None
    analyze_specs = body.get("analyze")
    graph_specs = body.get("graph")
    if analyze_specs is not None and graph_specs is not None:
        raise ValidationError(
            "submission takes either analyze (linear op specs) or graph "
            "(DAG node specs), not both"
        )
    if analyze_specs is not None:
        if not isinstance(analyze_specs, list) or not analyze_specs:
            raise ValidationError("analyze must be a non-empty list of op specs")
        from repro.core.ops import analysis

        # fail on unknown ops/params now (400), not mid-computation
        pipeline = analysis(*[
            tuple(spec) if isinstance(spec, list) else spec for spec in analyze_specs
        ])
    elif graph_specs is not None:
        if not isinstance(graph_specs, list) or not graph_specs:
            raise ValidationError("graph must be a non-empty list of node specs")
        from repro.analysisgraph import graph as build_graph

        # full DAG validation now (unknown ops/inputs, cycles, arity → 400)
        pipeline = build_graph(*graph_specs)
        if pipeline.has_reduce:
            reduce_names = [node.name for node in pipeline.reduce_nodes()]
            raise ValidationError(
                f"graph has reduce node(s) {reduce_names}; serve jobs "
                "reconstruct a single source, so only per-run nodes apply — "
                "run batch-scope reductions through Session.run_many(analyze=...)"
            )
        analyze_specs = pipeline.to_spec()

    priority = body.get("priority", 0)
    if not isinstance(priority, int) or isinstance(priority, bool):
        raise ValidationError(f"priority must be an integer, got {priority!r}")

    client = body.get("client") or DEFAULT_CLIENT_ID
    if not isinstance(client, str):
        raise ValidationError("client must be a string")
    client = client.strip()[:MAX_CLIENT_ID_LEN] or DEFAULT_CLIENT_ID

    timeout_s = body.get("timeout_s")
    if timeout_s is not None:
        timeout_s = float(timeout_s)
        if timeout_s <= 0:
            raise ValidationError("timeout_s must be positive when given")

    return Job(
        client=client,
        source_path=path,
        config=config,
        priority=priority,
        pipeline=pipeline,
        analyze_specs=analyze_specs,
        timeout_s=timeout_s,
    )

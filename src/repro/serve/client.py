"""Stdlib HTTP client for a running ``repro-serve`` daemon.

The bundled counterpart of :mod:`repro.serve.app`: tests, benchmarks,
``examples/serving.py`` and the CI smoke job all drive a live daemon
through this class, so the client *is* the reference consumer of the HTTP
API.  ``http.client`` only — the serving stack adds no dependencies on
either side of the socket.

Error mapping mirrors the server's backpressure semantics:

* ``429`` raises :class:`Backpressure` carrying the server's
  ``Retry-After`` estimate, so callers can sleep-and-retry honestly;
* other 4xx/5xx raise :class:`ServeError` with the decoded error payload;
* a job that terminates ``failed``/``cancelled`` while :meth:`wait`-ing
  raises :class:`JobFailed` with the job's error string.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, List, Optional, Tuple

__all__ = ["ServeClient", "ServeError", "Backpressure", "JobFailed"]


class ServeError(RuntimeError):
    """A non-2xx response from the daemon."""

    def __init__(self, status: int, payload: Dict):
        message = payload.get("error") if isinstance(payload, dict) else None
        super().__init__(f"HTTP {status}: {message or payload}")
        self.status = status
        self.payload = payload


class Backpressure(ServeError):
    """``429``: the admission queue is full; honor :attr:`retry_after_s`."""

    def __init__(self, status: int, payload: Dict, retry_after_s: float):
        super().__init__(status, payload)
        self.retry_after_s = retry_after_s


class JobFailed(RuntimeError):
    """A waited-on job reached ``failed`` or ``cancelled``."""

    def __init__(self, job: Dict):
        super().__init__(
            f"job {job.get('id')} {job.get('state')}: {job.get('error') or 'no error recorded'}"
        )
        self.job = job


class ServeClient:
    """A thin, connection-per-request client (the server closes anyway)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8750,
        base_url: Optional[str] = None,
        timeout_s: float = 30.0,
        client_id: Optional[str] = None,
    ):
        if base_url is not None:
            base_url = base_url.rstrip("/")
            if base_url.startswith("http://"):
                base_url = base_url[len("http://"):]
            host, _, port_text = base_url.partition(":")
            port = int(port_text) if port_text else 80
        self.host = host
        self.port = int(port)
        self.timeout_s = float(timeout_s)
        #: stamped on every submission (per-client queue fairness key)
        self.client_id = client_id

    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, body: Optional[Dict] = None) -> Tuple[int, Dict]:
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            payload = None if body is None else json.dumps(body).encode("utf-8")
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            try:
                decoded = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError):
                decoded = {"error": raw.decode("utf-8", "replace")}
            status = response.status
            if status == 429:
                retry_after = float(
                    response.getheader("Retry-After")
                    or decoded.get("retry_after_s")
                    or 1.0
                )
                raise Backpressure(status, decoded, retry_after)
            if status >= 400:
                raise ServeError(status, decoded)
            return status, decoded
        finally:
            conn.close()

    # ------------------------------------------------------------------ #
    def submit(
        self,
        source: str,
        config: Optional[object] = None,
        session: Optional[object] = None,
        analyze: Optional[List] = None,
        graph: Optional[object] = None,
        priority: int = 0,
        timeout_s: Optional[float] = None,
        client: Optional[str] = None,
    ) -> Dict:
        """``POST /v1/jobs``; returns the acceptance payload (``job`` + ``dedup``).

        ``config`` may be a :class:`~repro.core.config.ReconstructionConfig`
        or its ``to_dict`` form; passing a :class:`~repro.core.session.Session`
        as ``session`` uses its config (fluent-pipeline friendly).  Exactly
        one of the two must be given.  ``analyze`` sends linear op specs;
        ``graph`` sends a DAG — an
        :class:`~repro.analysisgraph.AnalysisGraph` or its node-spec list
        (reduce-free: serve jobs are single-run).
        """
        if (config is None) == (session is None):
            raise ValueError("pass exactly one of config= or session=")
        if analyze is not None and graph is not None:
            raise ValueError("pass either analyze= (linear) or graph= (DAG), not both")
        if session is not None:
            config = session.config
        config_dict = config.to_dict() if hasattr(config, "to_dict") else dict(config)
        body: Dict = {"source": {"path": str(source)}, "config": config_dict}
        if analyze is not None:
            body["analyze"] = [list(spec) if isinstance(spec, tuple) else spec for spec in analyze]
        if graph is not None:
            body["graph"] = graph.to_spec() if hasattr(graph, "to_spec") else list(graph)
        if priority:
            body["priority"] = int(priority)
        if timeout_s is not None:
            body["timeout_s"] = float(timeout_s)
        resolved_client = client or self.client_id
        if resolved_client:
            body["client"] = resolved_client
        _status, payload = self._request("POST", "/v1/jobs", body)
        return payload

    def status(self, job_id: str) -> Dict:
        _status, payload = self._request("GET", f"/v1/jobs/{job_id}")
        return payload["job"]

    def result(self, job_id: str) -> Optional[Dict]:
        """The result record, or ``None`` while the job is still pending."""
        status, payload = self._request("GET", f"/v1/jobs/{job_id}/result")
        if status == 202:
            return None
        return payload["result"]

    def cancel(self, job_id: str) -> Dict:
        _status, payload = self._request("DELETE", f"/v1/jobs/{job_id}")
        return payload["job"]

    def metrics(self) -> Dict:
        _status, payload = self._request("GET", "/metrics")
        return payload

    def health(self) -> Dict:
        _status, payload = self._request("GET", "/healthz")
        return payload

    # ------------------------------------------------------------------ #
    def wait(self, job_id: str, timeout_s: float = 120.0, poll_s: float = 0.05) -> Dict:
        """Poll until the job is terminal; return its result record.

        Raises :class:`JobFailed` for ``failed``/``cancelled`` jobs and
        ``TimeoutError`` if the deadline passes first.  Polling backs off
        geometrically from ``poll_s`` to ~1s.
        """
        deadline = time.monotonic() + timeout_s
        delay = poll_s
        while True:
            job = self.status(job_id)
            state = job["state"]
            if state == "done":
                result = self.result(job_id)
                assert result is not None
                return result
            if state in ("failed", "cancelled"):
                raise JobFailed(job)
            if time.monotonic() >= deadline:
                raise TimeoutError(f"job {job_id} still {state} after {timeout_s:.1f}s")
            time.sleep(delay)
            delay = min(delay * 1.5, 1.0)

    def submit_and_wait(self, source: str, timeout_s: float = 120.0, **submit_kwargs) -> Tuple[Dict, Dict]:
        """Submit, wait, and return ``(acceptance payload, result record)``."""
        accepted = self.submit(source, **submit_kwargs)
        job_id = accepted["job"]["id"]
        return accepted, self.wait(job_id, timeout_s=timeout_s)

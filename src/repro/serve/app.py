"""``repro-serve``: the asyncio HTTP daemon that serves reconstructions.

The library already owns every expensive piece — a persistent
:class:`~repro.core.workerpool.WorkerPool`, a content-addressed
:class:`~repro.core.cache.ResultCache` with bitwise-verified hits, full
provenance on every run.  This module is the thin long-lived shell that
turns them into a service:

* **stdlib-only networking** — ``asyncio.start_server`` plus a minimal
  HTTP/1.1 request parser.  No framework, no dependency, one connection per
  request (``Connection: close``), JSON in and out.
* **cache-first admission** — a submission whose
  ``(source fingerprint, config, version)`` key (exactly
  :meth:`Session.cache_key`) hits the cache completes at admission, never
  touching the queue or the pool; identical *in-flight* requests collapse
  onto one computation through a single-flight table keyed the same way.
* **bounded fair queue** — :class:`~repro.serve.queue.FairPriorityQueue`;
  at capacity submissions get ``429`` with a ``Retry-After`` estimated from
  the recent run-latency window.
* **never block the event loop** — admission probes (fingerprint + cache
  load) run on a small admission executor, computations on a compute
  executor sized to ``workers``; the loop only routes, queues and accounts.
* **graceful drain** — SIGTERM/SIGINT flip the daemon into draining mode
  (submissions get 503), in-flight and queued jobs finish inside
  ``drain_timeout_s``, stragglers are failed loudly, and
  :func:`~repro.core.workerpool.shutdown_all` tears down pools and shared
  memory idempotently (atexit runs it again, by design).

Endpoints
---------
=====================  ======================================================
``POST /v1/jobs``       submit (``202``; ``429`` full; ``503`` draining)
``GET /v1/jobs/<id>``   job status
``GET /v1/jobs/<id>/result``  result record (``202`` while pending)
``DELETE /v1/jobs/<id>``      cancel a queued job
``GET /metrics``        queue/cache/single-flight/latency/pool snapshot
``GET /healthz``        liveness (``{"ok": true, ...}``)
=====================  ======================================================
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import math
import os
import signal
import threading
from collections import deque
from concurrent.futures import BrokenExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.cache import ResultCache, resolve_cache
from repro.core.session import RunResult, Session
from repro.core.workerpool import pools_snapshot, shutdown_all
from repro.serve.jobs import Job, JobState, parse_submission
from repro.serve.metrics import ServeMetrics
from repro.serve.queue import FairPriorityQueue, QueueFull
from repro.utils.logging import get_logger, request_context
from repro.utils.validation import ValidationError
from repro.utils.version import package_version

__all__ = ["ServeSettings", "ReproServer", "ServerHandle", "start_in_thread", "run_server"]

_LOG = get_logger(__name__)

#: Largest accepted request body (a submission is small JSON).
MAX_BODY_BYTES = 1 << 20

#: Terminal jobs remembered for status/result queries before eviction.
TERMINAL_JOBS_KEPT = 10_000


@dataclass
class ServeSettings:
    """Tuning knobs of one daemon instance (see README *Serving*)."""

    host: str = "127.0.0.1"
    port: int = 8750
    #: concurrent computations (compute-executor width)
    workers: int = 2
    #: bounded admission-queue depth (beyond it: 429 + Retry-After)
    queue_depth: int = 64
    #: default per-job wall-clock budget (a submission may override)
    job_timeout_s: float = 300.0
    #: re-runs granted when a worker process dies mid-job
    max_retries: int = 1
    #: budget for finishing queued + in-flight jobs on SIGTERM
    drain_timeout_s: float = 30.0
    #: Retry-After floor when the queue rejects (seconds)
    retry_after_s: float = 1.0
    #: ``cache=`` in :func:`~repro.core.cache.resolve_cache` form;
    #: ``True`` (default root) makes cache-first admission the default
    cache: object = True
    resolved_cache: Optional[ResultCache] = field(init=False, default=None)

    def __post_init__(self):
        if int(self.workers) < 1:
            raise ValidationError("workers must be >= 1")
        if int(self.queue_depth) < 1:
            raise ValidationError("queue_depth must be >= 1")
        if float(self.job_timeout_s) <= 0:
            raise ValidationError("job_timeout_s must be positive")
        if int(self.max_retries) < 0:
            raise ValidationError("max_retries must be >= 0")
        self.resolved_cache = resolve_cache(self.cache)


class ReproServer:
    """One serving daemon: HTTP front end, queue, executors, metrics."""

    def __init__(self, settings: Optional[ServeSettings] = None):
        self.settings = settings or ServeSettings()
        self.cache = self.settings.resolved_cache
        self.metrics = ServeMetrics()
        self._queue = FairPriorityQueue(self.settings.queue_depth)
        #: single-flight table: cache key -> the in-flight leader job
        self._inflight: Dict[str, Job] = {}
        self._jobs: Dict[str, Job] = {}
        self._terminal_order: "deque[str]" = deque()
        self._server: Optional[asyncio.AbstractServer] = None
        self._worker_tasks = []
        self._n_running = 0
        self._draining = False
        self._shutdown_event: Optional[asyncio.Event] = None
        # admission probes (fingerprint + cache load) must not wait behind
        # long computations, so they get their own tiny executor
        self._compute_executor = ThreadPoolExecutor(
            max_workers=self.settings.workers, thread_name_prefix="repro-serve-compute"
        )
        self._admission_executor = ThreadPoolExecutor(
            max_workers=2, thread_name_prefix="repro-serve-admit"
        )

    # ------------------------------------------------------------------ #
    # lifecycle
    @property
    def port(self) -> int:
        """The bound port (authoritative after :meth:`start` with port 0)."""
        if self._server is None or not self._server.sockets:
            return self.settings.port
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> "ReproServer":
        """Bind the listening socket and start the worker tasks."""
        self._shutdown_event = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.settings.host, port=self.settings.port
        )
        for _ in range(self.settings.workers):
            self._worker_tasks.append(asyncio.create_task(self._worker_loop()))
        _LOG.info(
            "repro-serve listening on http://%s:%d (workers=%d queue=%d cache=%s)",
            self.settings.host, self.port, self.settings.workers,
            self.settings.queue_depth,
            self.cache.root if self.cache is not None else "off",
        )
        return self

    def request_shutdown(self) -> None:
        """Flip into draining mode (idempotent; safe from signal handlers)."""
        if self._shutdown_event is not None and not self._shutdown_event.is_set():
            _LOG.info("repro-serve: shutdown requested, draining")
            self._draining = True
            self._shutdown_event.set()

    async def run(self, install_signal_handlers: bool = True) -> None:
        """Serve until SIGTERM/SIGINT (or :meth:`request_shutdown`), then drain."""
        await self.start()
        if install_signal_handlers:
            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_shutdown)
                except (NotImplementedError, RuntimeError):  # pragma: no cover
                    pass  # non-main thread / platform without loop signals
        await self._shutdown_event.wait()
        await self.drain()

    async def drain(self) -> None:
        """Finish queued + in-flight work, then tear everything down.

        Jobs still unfinished at ``drain_timeout_s`` are failed loudly
        ("server shutting down"), never silently dropped.  The final
        :func:`shutdown_all` is idempotent on purpose: the interpreter's
        atexit hooks run the same teardown again after SIGTERM-initiated
        exits, and both invocations must be safe.
        """
        self._draining = True
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.settings.drain_timeout_s
        while (len(self._queue) or self._n_running) and loop.time() < deadline:
            await asyncio.sleep(0.02)
        # past the deadline: fail whatever never got its turn
        while True:
            job = self._queue._pop_live()
            if job is None:
                break
            self._fail_job(job, "server shutting down before the job could run")
        for task in self._worker_tasks:
            task.cancel()
        await asyncio.gather(*self._worker_tasks, return_exceptions=True)
        self._worker_tasks.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._compute_executor.shutdown(wait=True, cancel_futures=True)
        self._admission_executor.shutdown(wait=True, cancel_futures=True)
        shutdown_all()
        _LOG.info("repro-serve: drained and shut down")

    # ------------------------------------------------------------------ #
    # HTTP front end (stdlib-only minimal HTTP/1.1)
    async def _handle_connection(self, reader, writer) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                status, payload, headers = 400, {"error": "malformed HTTP request"}, {}
            else:
                method, path, body = request
                status, payload, headers = await self._route(method, path, body)
        except _HttpError as exc:
            status, payload, headers = exc.status, {"error": exc.message}, {}
        except Exception as exc:  # a handler bug must not kill the daemon
            _LOG.exception("repro-serve: internal error handling request")
            status, payload, headers = 500, {"error": f"{type(exc).__name__}: {exc}"}, {}
        try:
            writer.write(_render_response(status, payload, headers))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):  # client went away mid-reply
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, BrokenPipeError):  # pragma: no cover
                pass

    @staticmethod
    async def _read_request(reader) -> Optional[Tuple[str, str, Optional[Dict]]]:
        """Parse request line + headers + JSON body; None on malformed framing."""
        try:
            request_line = await reader.readline()
        except (ValueError, ConnectionError):
            return None
        parts = request_line.decode("latin-1", "replace").split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return None
        method, path = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1", "replace").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return None
        if content_length > MAX_BODY_BYTES:
            # drain (bounded) before rejecting: closing with unread bytes in
            # the socket makes the kernel RST the connection, and the peer —
            # still mid-send — sees EPIPE instead of this 413
            remaining = min(content_length, 8 * MAX_BODY_BYTES)
            while remaining > 0:
                chunk = await reader.read(min(remaining, 1 << 16))
                if not chunk:
                    break
                remaining -= len(chunk)
            raise _HttpError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        body: Optional[Dict] = None
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise _HttpError(400, f"request body is not valid JSON: {exc}") from None
        return method, path, body

    async def _route(self, method: str, path: str, body) -> Tuple[int, Dict, Dict]:
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/v1/jobs":
            if method != "POST":
                raise _HttpError(405, "use POST to submit jobs")
            return await self._submit(body)
        if path.startswith("/v1/jobs/"):
            tail = path[len("/v1/jobs/"):]
            job_id, _, sub = tail.partition("/")
            job = self._jobs.get(job_id)
            if job is None:
                raise _HttpError(404, f"unknown job {job_id!r}")
            if sub == "" and method == "GET":
                return 200, {"job": job.status_dict()}, {}
            if sub == "" and method == "DELETE":
                return self._cancel(job)
            if sub == "result" and method == "GET":
                return self._result(job)
            raise _HttpError(405 if sub in ("", "result") else 404, "unsupported job operation")
        if path == "/metrics" and method == "GET":
            return 200, self._metrics_document(), {}
        if path == "/healthz" and method == "GET":
            return 200, {"ok": True, "draining": self._draining,
                         "version": package_version()}, {}
        raise _HttpError(404, f"no route for {method} {path}")

    # ------------------------------------------------------------------ #
    # admission: cache first, then single-flight, then the queue
    async def _submit(self, body) -> Tuple[int, Dict, Dict]:
        if self._draining:
            raise _HttpError(503, "server is draining; resubmit elsewhere")
        try:
            job = parse_submission(body)
        except ValidationError as exc:
            raise _HttpError(400, str(exc)) from None

        loop = asyncio.get_running_loop()
        if self.cache is not None:
            session = Session(config=job.config)
            context = contextvars.copy_context()
            job.key = await loop.run_in_executor(
                self._admission_executor, context.run, session.cache_key, job.source_path
            )
        if job.key is not None:
            outcome = await loop.run_in_executor(
                self._admission_executor, self._probe_cache, job
            )
            if outcome is not None:
                self._register(job)
                job.finish_ok(outcome, served="cache")
                self.metrics.inc("submitted")
                self.metrics.inc("cache_hits")
                self.metrics.inc("completed")
                self.metrics.record_latency("total", job.total_s)
                self._remember_terminal(job)
                _LOG.info("admitted %s from cache (key %s)", job.id, job.key[:12])
                return 202, {"job": job.status_dict(), "dedup": "hit"}, {}
            # no awaits between this check and registration below: the
            # single-flight decision is atomic on the event loop
            leader = self._inflight.get(job.key)
            if leader is not None:
                job.leader = leader
                leader.followers.append(job)
                self._register(job)
                self.metrics.inc("submitted")
                self.metrics.inc("collapsed")
                _LOG.info("collapsed %s onto in-flight %s", job.id, leader.id)
                return 202, {"job": job.status_dict(), "dedup": "collapsed"}, {}
        try:
            self._queue.put_nowait(job)
        except QueueFull:
            self.metrics.inc("rejected")
            retry_after = self._retry_after_estimate()
            return (
                429,
                {"error": f"queue at capacity ({self.settings.queue_depth})",
                 "retry_after_s": retry_after},
                {"Retry-After": str(retry_after)},
            )
        if job.key is not None:
            self._inflight[job.key] = job
        self._register(job)
        self.metrics.inc("submitted")
        return 202, {"job": job.status_dict(), "dedup": "scheduled"}, {}

    def _probe_cache(self, job: Job) -> Optional[Dict]:
        """Cache-load *job*'s result (worker thread); None on miss."""
        with request_context(job_id=job.id, client_id=job.client):
            run = self.cache.get(job.key)
            if run is None:
                return None
            return self._outcome_record(run, job)

    def _retry_after_estimate(self) -> int:
        """Seconds until a queue slot plausibly frees up.

        Little's-law estimate from the recent run-latency window: a full
        queue of D jobs over W workers drains in roughly ``D * mean_run / W``
        seconds; floored at the configured minimum so clients never busy-spin.
        """
        run_stats = self.metrics.latency["run"].snapshot()
        estimate = self.settings.retry_after_s
        if run_stats["mean_s"]:
            estimate = max(
                estimate,
                len(self._queue) * run_stats["mean_s"] / self.settings.workers,
            )
        return int(math.ceil(estimate))

    # ------------------------------------------------------------------ #
    # execution
    async def _worker_loop(self) -> None:
        while True:
            job = await self._queue.get()
            # no await between get() and mark_running(): cancellation of a
            # popped-but-unstarted job cannot interleave
            job.mark_running()
            self._n_running += 1
            try:
                await self._execute(job)
            finally:
                self._n_running -= 1

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        timeout = job.timeout_s or self.settings.job_timeout_s
        while True:
            job.attempts += 1
            context = contextvars.copy_context()
            future = loop.run_in_executor(
                self._compute_executor, context.run, self._compute, job
            )
            # asyncio.wait, not wait_for: a thread cannot be preempted, and
            # wait_for would block on the uncancellable future until the
            # computation ended anyway.  On timeout the job fails now and the
            # orphaned computation finishes in the background (its cache
            # store still lands, so a resubmit becomes a hit).
            try:
                done, _pending = await asyncio.wait({future}, timeout=timeout)
            except asyncio.CancelledError:
                self._fail_job(job, "server shutting down mid-job")
                raise
            if not done:
                self.metrics.inc("timeouts")
                future.add_done_callback(_log_orphaned_outcome)
                self._fail_job(job, f"timed out after {timeout:.1f}s")
                return
            try:
                # the future is in asyncio.wait's done set: result() returns
                # immediately, it cannot block the loop here
                outcome = done.pop().result()  # repro-lint: ignore[async-purity]
            except BrokenExecutor as exc:
                # a worker process died under the job; the pool respawns
                # itself, the job gets a bounded number of fresh attempts
                if job.attempts <= self.settings.max_retries:
                    self.metrics.inc("retries")
                    _LOG.warning(
                        "job %s lost a worker (%s); retry %d/%d",
                        job.id, type(exc).__name__, job.attempts, self.settings.max_retries,
                    )
                    continue
                self._fail_job(job, f"worker pool broke repeatedly: {exc}")
                return
            except asyncio.CancelledError:
                self._fail_job(job, "server shutting down mid-job")
                raise
            except Exception as exc:
                self._fail_job(job, f"{type(exc).__name__}: {exc}")
                return
            break
        self.metrics.inc("computed")
        self._finish_job(job, outcome)

    def _compute(self, job: Job) -> Dict:
        """One cold reconstruction + optional analysis (compute thread)."""
        with request_context(job_id=job.id, client_id=job.client):
            _LOG.debug("computing %s (%s)", job.id, job.source_path)
            session = Session(config=job.config)
            # admission already established the miss; run cold and store
            # under the precomputed key (the run_many idiom)
            run = session.run(job.source_path, cache=False)
            if job.key is not None and self.cache is not None:
                self.cache.put(job.key, run)
            return self._outcome_record(run, job)

    def _outcome_record(self, run: RunResult, job: Job) -> Dict:
        """The JSON-safe result record served to the client."""
        analysis = None
        if job.pipeline is not None:
            analysis = run._apply_analysis(job.pipeline)  # memoized when cache-bound
        return {
            "provenance": run.provenance(),
            "cache": None if run.cache_stats is None else run.cache_stats.to_dict(),
            "analysis": None if analysis is None else analysis.to_dict(),
        }

    # ------------------------------------------------------------------ #
    # terminal accounting (leader + collapsed followers)
    def _finish_job(self, job: Job, outcome: Dict) -> None:
        job.finish_ok(outcome, served="computed")
        self.metrics.inc("completed")
        self.metrics.record_job_latencies(job)
        self._settle(job)
        for follower in job.followers:
            follower.finish_ok(outcome, served="collapsed")
            self.metrics.inc("completed")
            self.metrics.record_latency("total", follower.total_s)
            self._remember_terminal(follower)
        _LOG.info(
            "job %s done in %.3fs (%d collapsed request(s) served)",
            job.id, job.run_s or 0.0, len(job.followers),
        )

    def _fail_job(self, job: Job, error: str) -> None:
        job.finish_error(error)
        self.metrics.inc("failed")
        self.metrics.record_job_latencies(job)
        self._settle(job)
        for follower in job.followers:
            follower.finish_error(f"collapsed onto {job.id}, which failed: {error}")
            self.metrics.inc("failed")
            self._remember_terminal(follower)
        _LOG.warning("job %s failed: %s", job.id, error)

    def _settle(self, job: Job) -> None:
        """Pop the single-flight entry and remember the terminal job."""
        if job.key is not None and self._inflight.get(job.key) is job:
            del self._inflight[job.key]
        self._remember_terminal(job)

    def _register(self, job: Job) -> None:
        self._jobs[job.id] = job

    def _remember_terminal(self, job: Job) -> None:
        """Bound the terminal-job memory of a long-lived daemon."""
        self._terminal_order.append(job.id)
        while len(self._terminal_order) > TERMINAL_JOBS_KEPT:
            evicted = self._terminal_order.popleft()
            old = self._jobs.get(evicted)
            if old is not None and old.state.is_terminal:
                del self._jobs[evicted]

    # ------------------------------------------------------------------ #
    # cancel / result / metrics
    def _cancel(self, job: Job) -> Tuple[int, Dict, Dict]:
        if job.state is JobState.QUEUED:
            if job.leader is not None:
                job.leader.followers.remove(job)
                job.cancel()
                self.metrics.inc("cancelled")
                self._remember_terminal(job)
                return 200, {"job": job.status_dict()}, {}
            if job.followers:
                raise _HttpError(
                    409, "other requests collapsed onto this computation; not cancellable"
                )
            job.cancel()
            self._queue.cancel(job)
            if job.key is not None and self._inflight.get(job.key) is job:
                del self._inflight[job.key]
            self.metrics.inc("cancelled")
            self._remember_terminal(job)
            return 200, {"job": job.status_dict()}, {}
        raise _HttpError(
            409,
            f"job is {job.state.value}; only queued jobs can be cancelled "
            "(running reconstructions are never preempted)",
        )

    @staticmethod
    def _result(job: Job) -> Tuple[int, Dict, Dict]:
        if job.state is JobState.DONE:
            return 200, {"job": job.status_dict(), "result": job.outcome}, {}
        if job.state.is_terminal:  # failed or cancelled
            raise _HttpError(409, f"job is {job.state.value}: {job.error or 'no result'}")
        return 202, {"job": job.status_dict()}, {}

    def _metrics_document(self) -> Dict:
        return self.metrics.to_dict(
            queue_snapshot=self._queue.snapshot(),
            inflight=self._n_running,
            cache_counters=self.cache.counters() if self.cache is not None else None,
            pools=pools_snapshot(),
            draining=self._draining,
            extra={
                "version": package_version(),
                "singleflight_keys": len(self._inflight),
                "cache_root": self.cache.root if self.cache is not None else None,
            },
        )


# --------------------------------------------------------------------------- #
# plumbing
def _log_orphaned_outcome(future) -> None:
    """Consume (and log) the eventual outcome of a timed-out computation."""
    exc = future.exception()
    if exc is not None:
        _LOG.warning("timed-out job's orphaned computation failed: %s", exc)
    else:
        _LOG.info("timed-out job's orphaned computation finished (result cached)")


class _HttpError(Exception):
    """Routed straight to an HTTP error response."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


def _render_response(status: int, payload: Dict, headers: Dict) -> bytes:
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Response')}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in headers.items())
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body


# --------------------------------------------------------------------------- #
# embedding helpers (tests, benchmarks, examples)
class ServerHandle:
    """A daemon running on a background thread, stoppable from the caller."""

    def __init__(self, server: ReproServer, loop, thread: threading.Thread):
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def base_url(self) -> str:
        return f"http://{self.server.settings.host}:{self.port}"

    def stop(self, timeout: float = 30.0) -> None:
        """Request a graceful drain and join the server thread (idempotent)."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self.server.request_shutdown)
        self._thread.join(timeout)
        if self._thread.is_alive():  # pragma: no cover - drain wedged
            raise RuntimeError("repro-serve thread did not stop in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_in_thread(settings: Optional[ServeSettings] = None, timeout: float = 15.0) -> ServerHandle:
    """Boot a daemon on a background thread; returns once it is listening.

    The embedded twin of :func:`run_server` — benchmarks, tests and
    examples drive a real HTTP daemon in-process (``port=0`` picks a free
    port; read it off ``handle.port``).  Signal handlers are not installed
    (they belong to the main thread); stop with :meth:`ServerHandle.stop`.
    """
    started = threading.Event()
    holder: Dict = {}

    def _runner() -> None:
        async def _main() -> None:
            server = ReproServer(settings)
            try:
                await server.start()
            except Exception as exc:
                holder["error"] = exc
                started.set()
                return
            holder["server"] = server
            holder["loop"] = asyncio.get_running_loop()
            started.set()
            await server._shutdown_event.wait()
            await server.drain()

        asyncio.run(_main())

    thread = threading.Thread(target=_runner, name="repro-serve", daemon=True)
    thread.start()
    if not started.wait(timeout):
        raise RuntimeError("repro-serve did not start in time")
    if "error" in holder:
        thread.join(timeout=5.0)
        raise holder["error"]
    return ServerHandle(holder["server"], holder["loop"], thread)


def run_server(settings: Optional[ServeSettings] = None) -> int:
    """Blocking daemon entry point (the ``repro-serve`` CLI body)."""
    # the daemon's pools/arenas are cleaned both by drain() and by atexit;
    # both paths must be (and are) idempotent
    asyncio.run(ReproServer(settings).run())
    return 0


def default_workers() -> int:
    """Compute-executor width when the CLI names none: one per CPU, min 2."""
    return max(2, min(4, os.cpu_count() or 1))

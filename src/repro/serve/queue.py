"""Bounded, fair, prioritized admission queue for the serve daemon.

Three properties the raw ``asyncio.PriorityQueue`` does not give:

**Bounded depth with loud rejection.**
    A serving process must shed load it cannot absorb; an unbounded queue
    converts overload into unbounded latency and memory.  :meth:`put_nowait`
    raises :class:`QueueFull` when the live depth is at capacity, and the
    HTTP layer turns that into ``429 Retry-After`` — backpressure the client
    can act on.

**Per-client fairness.**
    Jobs are ordered by ``(priority, client_rank, seq)`` where
    ``client_rank`` is the number of jobs the submitting client already had
    queued at submit time.  A client that dumps 50 jobs occupies ranks
    0–49; a second client's first job enters at rank 0 and is served ahead
    of the backlog — round-robin-ish interleaving without a scheduler
    thread, the classic fair-queueing trick of ranking by per-flow backlog.

**Cheap cancellation.**
    Cancelling a queued job just flips its state; the heap entry is lazily
    skipped at pop time (the standard heapq tombstone idiom), so cancel is
    O(1) and never reshuffles the heap.

Single event loop only: every method must be called from the loop thread
(the daemon's handlers and workers all live there), so no locks are needed —
the async mutual exclusion is the loop itself.
"""

from __future__ import annotations

import asyncio
import heapq
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.serve.jobs import Job, JobState

__all__ = ["QueueFull", "FairPriorityQueue"]


class QueueFull(Exception):
    """Raised by :meth:`FairPriorityQueue.put_nowait` at capacity."""


class FairPriorityQueue:
    """The bounded fair priority queue described in the module docstring.

    Lower ``priority`` values are served first (``0`` is the default;
    negative values jump the line, positive values yield it — ``nice``
    semantics).
    """

    def __init__(self, depth: int):
        if int(depth) < 1:
            raise ValueError("queue depth must be >= 1")
        self.depth = int(depth)
        self._heap: List[Tuple[Tuple[int, int, int], Job]] = []
        self._pending_per_client: Dict[str, int] = defaultdict(int)
        self._live = 0
        # created lazily on the loop: on 3.9 an Event binds its loop at
        # construction, and the queue is built before the daemon's loop runs;
        # the annotation is honest about that window — only _wakeup() may
        # touch this attribute, and it narrows the Optional away
        self._not_empty: Optional[asyncio.Event] = None
        #: lifetime counters (metrics)
        self.n_enqueued = 0
        self.n_rejected = 0

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        """Live (non-cancelled) queued jobs."""
        return self._live

    @property
    def full(self) -> bool:
        return self._live >= self.depth

    def put_nowait(self, job: Job) -> None:
        """Enqueue *job* or raise :class:`QueueFull` (the 429 path)."""
        if self._live >= self.depth:
            self.n_rejected += 1
            raise QueueFull(f"queue at capacity ({self.depth} jobs)")
        rank = self._pending_per_client[job.client]
        heapq.heappush(self._heap, ((job.priority, rank, job.seq), job))
        self._pending_per_client[job.client] += 1
        self._live += 1
        self.n_enqueued += 1
        self._wakeup().set()

    def _wakeup(self) -> asyncio.Event:
        event = self._not_empty
        if event is None:
            # loop-confined: every queue method runs on the event loop
            # thread (start_in_thread's worker *is* that thread), so the
            # lazy Event creation can never race another writer
            # repro-lint: ignore[thread-escape]
            event = self._not_empty = asyncio.Event()
        return event

    async def get(self) -> Job:
        """The next live job in ``(priority, fairness rank, seq)`` order."""
        while True:
            job = self._pop_live()
            if job is not None:
                return job
            event = self._wakeup()
            event.clear()
            await event.wait()

    def _pop_live(self):
        while self._heap:
            _key, job = heapq.heappop(self._heap)
            if job.state is not JobState.QUEUED:
                continue  # tombstone: cancelled while queued, already uncounted
            self._account_removed(job)
            return job
        return None

    def cancel(self, job: Job) -> None:
        """Tombstone a queued *job* (caller flips the job state)."""
        self._account_removed(job)

    def _account_removed(self, job: Job) -> None:
        # loop-confined (see _wakeup): get()/cancel() callers all run on
        # the event loop thread, never on pool workers
        # repro-lint: ignore[thread-escape]
        self._live -= 1
        remaining = self._pending_per_client[job.client] - 1
        if remaining > 0:
            # repro-lint: ignore[thread-escape]
            self._pending_per_client[job.client] = remaining
        else:
            # drop exhausted clients so the dict cannot grow with client churn
            self._pending_per_client.pop(job.client, None)

    def snapshot(self) -> Dict:
        """JSON-safe queue state for the ``/metrics`` endpoint."""
        return {
            "depth": self._live,
            "capacity": self.depth,
            "clients_waiting": len(self._pending_per_client),
            "n_enqueued": self.n_enqueued,
            "n_rejected": self.n_rejected,
        }

"""The data model of ``repro-lint``: findings, contexts, suppressions.

A **finding** is one violation of one rule at one source location.  Rules
produce findings with only the location and message filled in; the engine
stamps the rule id, severity and file path so a rule can never misreport
its own identity.

A **module context** wraps one parsed source file: the AST, the raw lines,
a lazily-built child→parent map (rules frequently need to ask "is this call
inside a ``with`` item / a ``try`` body / a function?") and the parsed
suppression table.

Suppressions use the comment syntax::

    shm = SharedMemory(create=True, size=n)  # repro-lint: ignore[resource-lifecycle]

    # repro-lint: ignore[async-purity]  (standalone: applies to the next line)
    outcome = done.pop().result()

``ignore`` with no bracket silences every rule on that line;
``ignore[a,b]`` silences exactly the named rules.  Comments are located
with :mod:`tokenize`, so the marker inside a string literal never
suppresses anything.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

__all__ = [
    "SEVERITIES",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "parse_suppressions",
]

#: Recognised severities, most severe first (report ordering + gating).
SEVERITIES = ("error", "warning", "info")

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_\-\s,]+)\])?"
)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    Rules construct findings with ``line``/``col``/``message`` (usually via
    :meth:`ModuleContext.finding`); the engine stamps ``rule``, ``severity``
    and ``path`` from the registry entry and the file being linted, and
    flips ``suppressed`` when a suppression comment covers the line.
    """

    message: str
    line: int = 0
    col: int = 0
    rule: str = ""
    severity: str = "error"
    path: str = ""
    suppressed: bool = False

    def stamped(self, *, rule: str, severity: str, path: str) -> "Finding":
        """A copy carrying the engine-assigned identity fields."""
        return replace(self, rule=rule, severity=severity, path=path)

    def sort_key(self) -> Tuple:
        return (self.path, self.line, self.col, self.rule, self.message)

    def to_dict(self) -> Dict:
        """JSON-safe record (the ``--format json`` findings schema)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "suppressed": self.suppressed,
        }

    def render(self) -> str:
        """One-line human rendering: ``path:line:col: severity[rule] message``."""
        location = f"{self.path}:{self.line}:{self.col}"
        tag = f"{self.severity}[{self.rule}]"
        note = " (suppressed)" if self.suppressed else ""
        return f"{location}: {tag}{note} {self.message}"


def parse_suppressions(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number → suppressed rule ids (``None`` means *all* rules).

    A suppression comment sharing a line with code covers that line; a
    standalone comment line covers the **next** line (the conventional
    place for a suppression that would not fit inline).  Tokenization
    failures (the engine reports syntax errors separately) yield an empty
    table rather than raising.
    """
    table: Dict[int, Optional[FrozenSet[str]]] = {}
    lines = source.splitlines()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return table
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(token.string)
        if match is None:
            continue
        names = match.group("rules")
        rules: Optional[FrozenSet[str]] = None
        if names is not None:
            rules = frozenset(part.strip() for part in names.split(",") if part.strip())
        line = token.start[0]
        text = lines[line - 1] if line - 1 < len(lines) else ""
        if text.lstrip().startswith("#"):
            line += 1  # standalone comment: covers the next line
        existing = table.get(line, frozenset())
        if rules is None or existing is None:
            table[line] = None
        else:
            table[line] = existing | rules
    return table


class ModuleContext:
    """One parsed source file handed to every module-scope rule."""

    def __init__(self, path: str, source: str, tree: ast.Module):
        self.path = path
        #: forward-slash path for rule path-matching, independent of OS
        self.posix_path = path.replace("\\", "/")
        self.source = source
        self.lines: List[str] = source.splitlines()
        self.tree = tree
        self.suppressions = parse_suppressions(source)
        self._parents: Optional[Dict[ast.AST, ast.AST]] = None
        self._imports: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------ #
    def finding(self, node: ast.AST, message: str) -> Finding:
        """A finding anchored at *node* (rule identity stamped by the engine)."""
        return Finding(
            message=message,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
        )

    def is_suppressed(self, line: int, rule: str) -> bool:
        """True when a suppression comment covers *rule* on *line*."""
        if line not in self.suppressions:
            return False
        rules = self.suppressions[line]
        return rules is None or rule in rules

    # ------------------------------------------------------------------ #
    @property
    def parents(self) -> Dict[ast.AST, ast.AST]:
        """Child → parent map over the whole tree (built once, lazily)."""
        if self._parents is None:
            self._parents = {}
            for parent in ast.walk(self.tree):
                for child in ast.iter_child_nodes(parent):
                    self._parents[child] = parent
        return self._parents

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's ancestors, nearest first, up to the module."""
        parents = self.parents
        current = parents.get(node)
        while current is not None:
            yield current
            current = parents.get(current)

    def enclosing_function(self, node: ast.AST):
        """The nearest enclosing function def, or ``None`` at module scope."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    # ------------------------------------------------------------------ #
    @property
    def imports(self) -> Dict[str, str]:
        """Local name → dotted origin for every module-level-visible import.

        ``import numpy as np`` maps ``np → numpy``; ``from time import
        sleep as snooze`` maps ``snooze → time.sleep``.  Imports anywhere
        in the file are collected (function-local imports included) — for
        lint purposes a name's origin is what matters, not its scope.
        """
        if self._imports is None:
            table: Dict[str, str] = {}
            for node in ast.walk(self.tree):
                if isinstance(node, ast.Import):
                    for alias in node.names:
                        local = alias.asname or alias.name.split(".")[0]
                        origin = alias.name if alias.asname else alias.name.split(".")[0]
                        table[local] = origin
                elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                    for alias in node.names:
                        if alias.name == "*":
                            continue
                        table[alias.asname or alias.name] = f"{node.module}.{alias.name}"
            self._imports = table
        return self._imports

    def dotted_name(self, node: ast.AST) -> Optional[str]:
        """Resolve a ``Name``/``Attribute`` chain to a dotted origin string.

        ``np.random.shuffle`` with ``import numpy as np`` resolves to
        ``numpy.random.shuffle``; a bare builtin like ``open`` resolves to
        ``"open"``.  Returns ``None`` for non-name expressions (calls,
        subscripts, ...).
        """
        parts: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = self.imports.get(current.id, current.id)
        parts.append(root)
        return ".".join(reversed(parts))


@dataclass
class ProjectContext:
    """What project-scope rules (``api-snapshot``) see: the whole lint run."""

    #: the paths handed to the engine, as given
    paths: List[str] = field(default_factory=list)
    #: every successfully parsed module in the run
    modules: List[ModuleContext] = field(default_factory=list)
    #: engine options relevant to project rules (e.g. ``snapshot_path``)
    options: Dict[str, object] = field(default_factory=dict)

"""``python -m repro.staticcheck`` — same body as the ``repro-lint`` entry."""

from repro.staticcheck.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

"""The ``repro-lint`` command line (also ``python -m repro.staticcheck``).

Usage patterns::

    repro-lint src                        # lint, text output, exit 1 on findings
    repro-lint src --format json          # machine-readable report (CI artifact)
    repro-lint src --snapshot api_snapshot.json   # + public-API drift gate
    repro-lint --write-snapshot           # regenerate api_snapshot.json
    repro-lint --list-rules               # the rule table
    repro-lint src --rules async-purity,resource-lifecycle

Exit codes: ``0`` clean, ``1`` at least one unsuppressed finding (or API
drift), ``2`` usage error.  The JSON document is stable and includes the
suppressed findings, so the CI artifact records what was waived as well as
what fired.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.staticcheck.apisnapshot import write_snapshot
from repro.staticcheck.engine import lint_paths
from repro.staticcheck.registry import rules as rule_registry
from repro.utils.validation import ValidationError

__all__ = ["main"]

#: conventional snapshot location (repo root / CWD)
DEFAULT_SNAPSHOT = "api_snapshot.json"


def _format_rule_table() -> str:
    infos = rule_registry()
    width = max(len(info.id) for info in infos)
    lines = [f"{'rule':<{width}}  severity  scope    description",
             f"{'-' * width}  --------  -------  -----------"]
    for info in infos:
        lines.append(
            f"{info.id:<{width}}  {info.severity:<8}  {info.scope:<7}  {info.description}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-invariant static analysis for the repro codebase: "
                    "registry contracts, async purity, resource lifecycles, "
                    "kernel determinism, type discipline and the public-API "
                    "snapshot.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files and/or directories to lint (e.g. src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json is the CI artifact schema)")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only the named rules (default: all registered)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rule table and exit")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="api_snapshot.json location; enables the "
                             "api-snapshot drift gate (default: used when "
                             f"./{DEFAULT_SNAPSHOT} exists)")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="skip the api-snapshot rule even if the default "
                             "snapshot file exists")
    parser.add_argument("--write-snapshot", action="store_true",
                        help="regenerate the API snapshot from the live "
                             "package and exit")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in text output")
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.format == "json":
            import json

            print(json.dumps([info.to_dict() for info in rule_registry()],
                             indent=2, sort_keys=True))
        else:
            print(_format_rule_table())
        return 0

    snapshot_path = args.snapshot or DEFAULT_SNAPSHOT
    if args.write_snapshot:
        surface = write_snapshot(snapshot_path)
        print(f"wrote {snapshot_path} ({len(surface['symbols'])} public symbols)")
        return 0

    if not args.paths:
        parser.error("no paths given (try: repro-lint src)")

    if args.no_snapshot:
        snapshot_arg = None
    elif args.snapshot is not None:
        snapshot_arg = args.snapshot
    else:
        import os

        snapshot_arg = DEFAULT_SNAPSHOT if os.path.isfile(DEFAULT_SNAPSHOT) else None

    rule_ids = None
    if args.rules is not None:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]

    try:
        report = lint_paths(args.paths, rule_ids=rule_ids, snapshot_path=snapshot_arg)
    except ValidationError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    return report.exit_code()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

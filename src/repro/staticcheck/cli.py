"""The ``repro-lint`` command line (also ``python -m repro.staticcheck``).

Usage patterns::

    repro-lint src                        # lint, text output, exit 1 on findings
    repro-lint src --format json          # machine-readable report (CI artifact)
    repro-lint src --snapshot api_snapshot.json   # + public-API drift gate
    repro-lint --write-snapshot           # regenerate api_snapshot.json
    repro-lint --write-callgraph          # regenerate callgraph.json
    repro-lint --list-rules               # the rule table
    repro-lint src --rules async-purity,resource-lifecycle
    repro-lint src --changed-only         # only files git says changed
    repro-lint src --no-memo              # bypass the per-file result memo

Exit codes: ``0`` clean, ``1`` at least one unsuppressed finding (or API
drift), ``2`` usage error.  The JSON document is stable and includes the
suppressed findings, so the CI artifact records what was waived as well as
what fired.

``--changed-only`` restricts the run to files ``git`` reports as changed
since ``--since`` (default ``HEAD``) plus untracked files, and runs only
**module-scope** rules — project rules (call-graph reachability, the API
snapshot) are whole-corpus analyses that a partial file list would
silently weaken, so they are skipped with a note rather than half-run.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import List, Optional, Sequence

from repro.staticcheck.apisnapshot import write_snapshot
from repro.staticcheck.engine import lint_paths
from repro.staticcheck.registry import rule_info, rules as rule_registry
from repro.utils.validation import ValidationError

__all__ = ["main"]

#: conventional snapshot location (repo root / CWD)
DEFAULT_SNAPSHOT = "api_snapshot.json"


def changed_python_files(paths: Sequence[str], since: str = "HEAD") -> List[str]:
    """``.py`` files under *paths* that git reports changed or untracked.

    Changed = ``git diff --name-only --diff-filter=ACMR <since>`` (added,
    copied, modified, renamed — deletions have nothing to lint) plus
    ``git ls-files --others --exclude-standard`` for new files not yet
    staged.  Raises :class:`ValidationError` when git is unavailable or
    *since* does not resolve.
    """
    commands = (
        ["git", "diff", "--name-only", "--diff-filter=ACMR", since],
        ["git", "ls-files", "--others", "--exclude-standard"],
    )
    names: List[str] = []
    for command in commands:
        try:
            result = subprocess.run(
                command, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            raise ValidationError(
                f"--changed-only needs a working git checkout: "
                f"`{' '.join(command)}` failed: {detail.strip()}"
            ) from None
        names.extend(line.strip() for line in result.stdout.splitlines())

    prefixes = [os.path.normpath(p) for p in paths]
    selected: List[str] = []
    for name in names:
        if not name.endswith(".py") or not os.path.isfile(name):
            continue
        normalized = os.path.normpath(name)
        for prefix in prefixes:
            if (prefix == "." or normalized == prefix
                    or normalized.startswith(prefix + os.sep)):
                if normalized not in selected:
                    selected.append(normalized)
                break
    return sorted(selected)


def _format_rule_table() -> str:
    infos = rule_registry()
    width = max(len(info.id) for info in infos)
    lines = [f"{'rule':<{width}}  severity  scope    description",
             f"{'-' * width}  --------  -------  -----------"]
    for info in infos:
        lines.append(
            f"{info.id:<{width}}  {info.severity:<8}  {info.scope:<7}  {info.description}"
        )
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of ``repro-lint``."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-invariant static analysis for the repro codebase: "
                    "registry contracts, async purity, resource lifecycles, "
                    "kernel determinism, type discipline and the public-API "
                    "snapshot.",
    )
    parser.add_argument("paths", nargs="*",
                        help="files and/or directories to lint (e.g. src)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="report format (json is the CI artifact schema)")
    parser.add_argument("--rules", default=None, metavar="ID[,ID...]",
                        help="run only the named rules (default: all registered)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rule table and exit")
    parser.add_argument("--snapshot", default=None, metavar="PATH",
                        help="api_snapshot.json location; enables the "
                             "api-snapshot drift gate (default: used when "
                             f"./{DEFAULT_SNAPSHOT} exists)")
    parser.add_argument("--no-snapshot", action="store_true",
                        help="skip the api-snapshot rule even if the default "
                             "snapshot file exists")
    parser.add_argument("--write-snapshot", action="store_true",
                        help="regenerate the API snapshot from the live "
                             "package and exit")
    parser.add_argument("--write-callgraph", nargs="?", const="callgraph.json",
                        default=None, metavar="PATH",
                        help="build the project call graph over the given "
                             "paths (default: src) and write it as "
                             "deterministic JSON, then exit")
    parser.add_argument("--changed-only", action="store_true",
                        help="lint only files git reports changed (plus "
                             "untracked); module-scope rules only")
    parser.add_argument("--since", default="HEAD", metavar="REF",
                        help="base revision for --changed-only (default: HEAD)")
    parser.add_argument("--no-memo", action="store_true",
                        help="disable the per-file lint result memo under "
                             "the shared cache root")
    parser.add_argument("--memo-root", default=None, metavar="DIR",
                        help="override the memo directory (default: "
                             "$REPRO_CACHE_DIR/lint)")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="include suppressed findings in text output")
    args = parser.parse_args(argv)

    if args.list_rules:
        if args.format == "json":
            import json

            print(json.dumps([info.to_dict() for info in rule_registry()],
                             indent=2, sort_keys=True))
        else:
            print(_format_rule_table())
        return 0

    snapshot_path = args.snapshot or DEFAULT_SNAPSHOT
    if args.write_snapshot:
        surface = write_snapshot(snapshot_path)
        print(f"wrote {snapshot_path} ({len(surface['symbols'])} public symbols)")
        return 0

    if args.write_callgraph is not None:
        from repro.staticcheck.callgraph import write_callgraph

        graph_paths = tuple(args.paths) if args.paths else ("src",)
        document = write_callgraph(args.write_callgraph, paths=graph_paths)
        summary = document["summary"]
        print(
            f"wrote {args.write_callgraph} "
            f"({summary['n_functions']} functions, {summary['n_edges']} edges, "
            f"{summary['n_submission_sites']} submission sites)"
        )
        return 0

    if not args.paths:
        parser.error("no paths given (try: repro-lint src)")

    if args.no_snapshot:
        snapshot_arg = None
    elif args.snapshot is not None:
        snapshot_arg = args.snapshot
    else:
        import os

        snapshot_arg = DEFAULT_SNAPSHOT if os.path.isfile(DEFAULT_SNAPSHOT) else None

    rule_ids = None
    if args.rules is not None:
        rule_ids = [part.strip() for part in args.rules.split(",") if part.strip()]

    lint_targets: Sequence[str] = args.paths
    try:
        if args.changed_only:
            lint_targets = changed_python_files(args.paths, since=args.since)
            if not lint_targets:
                print("repro-lint: no changed python files under "
                      + ", ".join(args.paths), file=sys.stderr)
                return 0
            # project rules analyse the whole corpus; running them over a
            # diff would silently weaken them, so drop them with a note
            candidates = rule_ids if rule_ids is not None else [
                info.id for info in rule_registry()
            ]
            skipped = [rid for rid in candidates
                       if rule_info(rid).scope == "project"]
            rule_ids = [rid for rid in candidates
                        if rule_info(rid).scope == "module"]
            if skipped:
                print("repro-lint: --changed-only skips project-scope "
                      "rule(s): " + ", ".join(sorted(skipped)),
                      file=sys.stderr)
            snapshot_arg = None

        memo = None
        if not args.no_memo:
            from repro.staticcheck.memo import LintMemo

            memo = LintMemo(root=args.memo_root)

        report = lint_paths(lint_targets, rule_ids=rule_ids,
                            snapshot_path=snapshot_arg, memo=memo)
    except ValidationError as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render_text(show_suppressed=args.show_suppressed))
    return report.exit_code()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())

"""``type-discipline``: no ``x: T = None`` smuggled past the type checker.

The pattern this rule exists for shipped in PR 7's queue::

    self._not_empty: "asyncio.Event" = None  # type: ignore[assignment]

The annotation promises an ``Event``, the value is ``None``, and the
``type: ignore`` makes the checker stop looking — so every later
``self._not_empty.wait()`` is unchecked against the ``None`` case.  The
honest spelling is a typed lazy initializer: annotate
``Optional[asyncio.Event]`` and narrow through an accessor that creates
the value on first use (see ``FairPriorityQueue._wakeup``).

Two shapes are flagged:

* an annotated assignment of ``None`` whose annotation is not an
  optional-ish type (``Optional[...]``, ``... | None``, ``Any``,
  ``object``), with or without the ignore comment;
* any assignment of ``None`` silenced with ``# type: ignore`` — silencing
  an assignment error instead of widening the annotation inverts the
  point of having annotations.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.model import Finding, ModuleContext
from repro.staticcheck.registry import register_rule

_OPTIONALISH = ("Optional", "None", "Any", "object")


def _annotation_text(ctx: ModuleContext, node: ast.AST) -> str:
    annotation = node
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value  # string annotation
    try:
        return ast.unparse(annotation)
    except Exception:  # pragma: no cover - unparse is total on valid trees
        return ""


def _allows_none(text: str) -> bool:
    return any(marker in text for marker in _OPTIONALISH)


def _line_has_ignore(ctx: ModuleContext, lineno: int) -> bool:
    line = ctx.lines[lineno - 1] if lineno - 1 < len(ctx.lines) else ""
    return "type: ignore" in line


@register_rule(
    "type-discipline",
    severity="error",
    description="None assigned to a non-Optional annotation (or silenced with "
                "type: ignore) — use a typed lazy initializer instead",
)
def check_type_discipline(ctx: ModuleContext) -> Iterator[Finding]:
    """Annotations must tell the truth about None."""
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AnnAssign):
            if not (isinstance(node.value, ast.Constant) and node.value.value is None):
                continue
            text = _annotation_text(ctx, node.annotation)
            if _allows_none(text):
                continue
            yield ctx.finding(
                node,
                f"annotation `{text}` assigned None"
                + (" and silenced with `type: ignore`"
                   if _line_has_ignore(ctx, node.lineno) else "")
                + "; declare it Optional[...] and narrow behind a typed "
                  "lazy initializer (the FairPriorityQueue._wakeup idiom)",
            )
        elif isinstance(node, ast.Assign):
            if not (isinstance(node.value, ast.Constant) and node.value.value is None):
                continue
            if _line_has_ignore(ctx, node.lineno):
                yield ctx.finding(
                    node,
                    "None assignment silenced with `type: ignore`; widen the "
                    "declared type to Optional[...] instead of blinding the "
                    "checker to every later use",
                )

"""``registry-contract``: registered ops and backends must honour the registry.

The registries (:mod:`repro.core.registry`, :mod:`repro.core.ops`) validate
what they can at import time — names, callables, duplicates.  What they
*cannot* see from a live object is how it was written, and three textual
contracts have each been broken at least once during growth:

* **module-top-level registration** — a ``@register_op`` inside a function
  or method re-registers on every call, which the duplicate guard turns
  into a crash on the second invocation (tests register-and-unregister on
  purpose; library code must not);
* **JSON-serializable keyword defaults** — ``OpInfo.parameters()`` feeds
  ``repro-analyze --list`` and provenance records, and a non-literal
  default (an object, a call, a module attribute) breaks the JSON document
  and hides the real default from introspection;
* **registry-expected arity** — per-run ops receive the stack as their
  first positional argument, reduce ops at least one collected sequence,
  and backends must be classes (the factory protocol).  Registering the
  wrong shape fails deep inside a pipeline instead of at import.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.model import Finding, ModuleContext
from repro.staticcheck.registry import register_rule

#: registrar name → what it must decorate
_REGISTRARS = {
    "register_op": "function",
    "register_reduce_op": "function",
    "register_backend": "class",
}

_JSON_CONST_TYPES = (str, int, float, bool, type(None))


def _registrar_name(decorator: ast.AST) -> Optional[str]:
    """The registrar a decorator resolves to, or ``None``."""
    target = decorator.func if isinstance(decorator, ast.Call) else decorator
    if isinstance(target, ast.Attribute):
        name = target.attr
    elif isinstance(target, ast.Name):
        name = target.id
    else:
        return None
    return name if name in _REGISTRARS else None


def _is_json_literal(node: ast.AST) -> bool:
    """True when *node* is a literal expression of strict JSON value types."""
    if isinstance(node, ast.Constant):
        return isinstance(node.value, _JSON_CONST_TYPES) and not isinstance(node.value, bytes)
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        return isinstance(node.operand, ast.Constant) and isinstance(
            node.operand.value, (int, float)
        )
    if isinstance(node, (ast.List, ast.Tuple)):
        return all(_is_json_literal(item) for item in node.elts)
    if isinstance(node, ast.Dict):
        return all(
            isinstance(key, ast.Constant) and isinstance(key.value, str)
            for key in node.keys
        ) and all(_is_json_literal(value) for value in node.values)
    return False


def _positional_params(args: ast.arguments):
    return list(getattr(args, "posonlyargs", [])) + list(args.args)


def _check_op_function(ctx: ModuleContext, node, registrar: str) -> Iterator[Finding]:
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        yield ctx.finding(
            node,
            f"@{registrar} must decorate a function, not a class "
            f"({node.name!r}); backends register classes, ops register functions",
        )
        return
    if isinstance(node, ast.AsyncFunctionDef):
        yield ctx.finding(
            node,
            f"@{registrar} op {node.name!r} must be a plain function: the "
            "execution engine calls ops synchronously on worker threads",
        )
    positional = _positional_params(node.args)
    if not positional:
        what = (
            "the depth-resolved stack" if registrar == "register_op"
            else "at least one collected batch input"
        )
        yield ctx.finding(
            node,
            f"@{registrar} op {node.name!r} takes no positional parameter; "
            f"the registry passes {what} as the first argument",
        )
    # keyword parameters = positional-with-default + kwonly-with-default
    defaulted = list(zip(
        [param.arg for param in positional[len(positional) - len(node.args.defaults):]],
        node.args.defaults,
    ))
    defaulted.extend(
        (param.arg, default)
        for param, default in zip(node.args.kwonlyargs, node.args.kw_defaults)
        if default is not None
    )
    for name, default in defaulted:
        if not _is_json_literal(default):
            yield ctx.finding(
                default,
                f"op {node.name!r} keyword default {name!r} must be a "
                "JSON-serializable literal (str/int/float/bool/None or "
                "lists/dicts of those): registry introspection and "
                "provenance records serialize defaults verbatim",
            )


def _check_backend_class(ctx: ModuleContext, node, registrar: str) -> Iterator[Finding]:
    if not isinstance(node, ast.ClassDef):
        yield ctx.finding(
            node,
            f"@{registrar} must decorate a class implementing the Backend "
            f"factory protocol, not a function ({node.name!r})",
        )


@register_rule(
    "registry-contract",
    severity="error",
    description="@register_op/@register_reduce_op/@register_backend targets must be "
                "top-level, correctly shaped, with JSON-literal keyword defaults",
)
def check_registry_contract(ctx: ModuleContext) -> Iterator[Finding]:
    """Registered ops/backends must satisfy the registry's textual contracts."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        registrars = [
            name for name in
            (_registrar_name(decorator) for decorator in node.decorator_list)
            if name is not None
        ]
        if not registrars:
            continue
        parent = ctx.parents.get(node)
        if not isinstance(parent, ast.Module):
            yield ctx.finding(
                node,
                f"{node.name!r} is registered inside a "
                f"{type(parent).__name__.lower()}; registrations must be "
                "module-top-level so they run exactly once at import time "
                "(the duplicate guard rejects re-registration)",
            )
        for registrar in registrars:
            if _REGISTRARS[registrar] == "function":
                yield from _check_op_function(ctx, node, registrar)
            else:
                yield from _check_backend_class(ctx, node, registrar)

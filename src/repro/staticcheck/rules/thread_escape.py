"""``thread-escape``: no unlocked shared-state writes on pool threads.

The whole-program companion to ``lock-discipline``.  Starting from every
**submission site** the call graph records (``pool.submit(fn)``,
``loop.run_in_executor(...)``, ``future.add_done_callback(fn)``,
``threading.Thread(target=fn)`` — including callables forwarded through a
parameter, which is how the analysisgraph ready-set scheduler and
``ThreadPool.submit`` hand work over), it computes the set of functions
that can execute on a thread other than the one that created the shared
state, and inside that set flags:

* writes to **module globals** — a ``global`` rebind, or an item/attribute
  store on a module-level binding (``_REGISTRY[key] = value``) — outside a
  lock region built from a module-level lock;
* writes to **attributes of shared objects** — instances of classes that
  own a ``threading.Lock``/``RLock`` — outside a lock region, whether
  through ``self`` or through a receiver whose class is known from
  annotations;
* **any** write reaching an event-loop-confined class
  (``FairPriorityQueue``): those classes are lock-free *by contract of
  never being touched off the loop thread*, so pool-reachability itself
  is the bug.

``__init__`` writes are exempt (construction precedes sharing).  Every
finding names the submitted callable and the submission site that makes
the code thread-reachable, so the report reads as a data-flow story, not
a style complaint.  Deliberate patterns (caller-holds-lock helpers,
pre-fork setup) are waived at the site with ``# repro-lint:
ignore[thread-escape]`` and a justification.
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Dict, Iterator, Optional, Set

from repro.staticcheck.callgraph import (
    CallGraph,
    SubmissionSite,
    graph_for_project,
)
from repro.staticcheck.model import Finding, ModuleContext, ProjectContext
from repro.staticcheck.registry import register_rule
from repro.staticcheck.rules._locks import (
    class_lock_attrs,
    collect_lock_aliases,
    global_declarations,
    in_lock_region,
    local_bindings,
    module_lock_names,
    module_mutable_names,
    written_names,
    written_self_fields,
)

#: classes that are lock-free because they live on one event loop only —
#: reachability from a pool thread is itself a contract violation
_LOOP_CONFINED = {"FairPriorityQueue"}


class _ModuleModel:
    """Per-module facts the sweep needs repeatedly (built once each)."""

    def __init__(self, ctx: ModuleContext):
        self.ctx = ctx
        self.locks = module_lock_names(ctx)
        self.mutables = module_mutable_names(ctx)


def _lock_attrs_for_class(graph: CallGraph, contexts: Dict[str, ModuleContext],
                          class_qual: Optional[str],
                          cache: Dict[str, Set[str]]) -> Set[str]:
    """Lock attributes of *class_qual*, resolved in its defining module.

    A lock-owning class necessarily assigns the lock in ``__init__``, so
    locating the class through any of its methods always finds the right
    :class:`ModuleContext` (a method-less class cannot own a lock).
    """
    if not class_qual:
        return set()
    if class_qual not in cache:
        attrs: Set[str] = set()
        record = graph.classes.get(class_qual)
        if record is not None and record.node is not None:
            for method_qual in record.methods.values():
                function = graph.functions.get(method_qual)
                if function is None:
                    continue
                ctx = contexts.get(function.path)
                if ctx is not None:
                    attrs = class_lock_attrs(ctx, record.node)
                break
        cache[class_qual] = attrs
    return cache[class_qual]


def _receiver_guarded(ctx: ModuleContext, anchor: ast.AST, receiver: str,
                      receiver_locks: Set[str]) -> bool:
    """Is *anchor* under ``with <receiver>.<lock>:`` for a known lock attr?"""
    chain = [anchor]
    chain.extend(ctx.ancestors(anchor))
    for ancestor in chain:
        if not isinstance(ancestor, (ast.With, ast.AsyncWith)):
            continue
        for item in ancestor.items:
            expr = item.context_expr
            if (
                isinstance(expr, ast.Attribute)
                and isinstance(expr.value, ast.Name)
                and expr.value.id == receiver
                and expr.attr in receiver_locks
            ):
                return True
    return False


def _escape_story(root: str, site: Optional[SubmissionSite]) -> str:
    if site is None:
        return f"reachable from pool-submitted callable `{root}`"
    return (
        f"reachable from `{root}` submitted to another thread via "
        f"{site.api} at {site.path}:{site.line}"
    )


@register_rule(
    "thread-escape",
    severity="error",
    scope="project",
    description="functions reachable from thread-pool submissions may not "
                "write shared state outside a lock region",
)
def check_thread_escape(project: ProjectContext) -> Iterator[Finding]:
    """Sweep the pool-reachable closure for unlocked shared-state writes."""
    graph = graph_for_project(project)
    contexts = {m.posix_path: m for m in project.modules}
    models: Dict[str, _ModuleModel] = {}
    class_locks: Dict[str, Set[str]] = {}
    site_by_callee: Dict[str, SubmissionSite] = {}
    for site in sorted(
        graph.submission_sites, key=lambda s: (s.path, s.line, s.caller)
    ):
        if site.callee is not None and site.callee not in site_by_callee:
            site_by_callee[site.callee] = site

    reached = graph.reachable(site_by_callee)
    for qual in sorted(reached):
        info = graph.functions[qual]
        node = graph.function_ast(qual)
        ctx = contexts.get(info.path)
        if node is None or ctx is None:
            continue
        if qual.endswith(".__init__"):
            continue  # construction precedes sharing
        if info.path not in models:
            models[info.path] = _ModuleModel(ctx)
        model = models[info.path]
        story = _escape_story(reached[qual], site_by_callee.get(reached[qual]))
        own_locks = _lock_attrs_for_class(
            graph, contexts, info.class_qualname, class_locks
        )
        aliases = collect_lock_aliases(node, own_locks, model.locks)
        local_types = graph.local_types(qual)
        locals_bound = local_bindings(node)
        globals_declared = global_declarations(node)

        # (a) writes through self, when the owning class is shared state
        if info.class_qualname is not None:
            class_name = info.class_qualname.split(".")[-1]
            loop_confined = class_name in _LOOP_CONFINED
            if own_locks or loop_confined:
                for field_name, anchor in written_self_fields(node):
                    if field_name in own_locks:
                        continue
                    if loop_confined:
                        yield replace(ctx.finding(
                            anchor,
                            f"`{qual}` mutates `self.{field_name}` of "
                            f"event-loop-confined {class_name} but is {story} "
                            "— loop-confined state must never be touched "
                            "from a pool thread",
                        ), path=ctx.path)
                        continue
                    if in_lock_region(ctx, anchor, own_locks, model.locks, aliases):
                        continue
                    held = " / ".join(f"self.{n}" for n in sorted(own_locks))
                    yield replace(ctx.finding(
                        anchor,
                        f"`{qual}` writes `self.{field_name}` without "
                        f"holding {held}, and is {story} — another thread "
                        "can observe or lose this write",
                    ), path=ctx.path)

        # (b) writes to attributes of typed shared receivers
        for child in ast.walk(node):
            targets = []
            if isinstance(child, ast.Assign):
                targets = list(child.targets)
            elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
                targets = [child.target]
            for target in targets:
                base = target
                if isinstance(base, ast.Subscript):
                    base = base.value
                if not (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id not in ("self", "cls")
                ):
                    continue
                receiver = base.value.id
                receiver_class = local_types.get(receiver)
                if receiver_class is None:
                    continue
                receiver_locks = _lock_attrs_for_class(
                    graph, contexts, receiver_class, class_locks
                )
                class_name = receiver_class.split(".")[-1]
                loop_confined = class_name in _LOOP_CONFINED
                if not receiver_locks and not loop_confined:
                    continue
                if loop_confined:
                    yield replace(ctx.finding(
                        child,
                        f"`{qual}` mutates `{receiver}.{base.attr}` of "
                        f"event-loop-confined {class_name} but is {story}",
                    ), path=ctx.path)
                    continue
                if _receiver_guarded(ctx, child, receiver, receiver_locks):
                    continue
                held = " / ".join(f"{receiver}.{n}" for n in sorted(receiver_locks))
                yield replace(ctx.finding(
                    child,
                    f"`{qual}` writes `{receiver}.{base.attr}` without "
                    f"holding {held}, and is {story}",
                ), path=ctx.path)

        # (c) module-global writes
        for name, how, anchor in written_names(node):
            is_global_rebind = how == "rebind" and name in globals_declared
            is_item_store = (
                how == "item"
                and name in model.mutables
                and name not in locals_bound
            )
            if not (is_global_rebind or is_item_store):
                continue
            if in_lock_region(ctx, anchor, set(), model.locks, aliases):
                continue
            verb = "rebinds global" if is_global_rebind else "mutates module-level"
            yield replace(ctx.finding(
                anchor,
                f"`{qual}` {verb} `{name}` outside a lock region, and is "
                f"{story} — guard it with a module-level lock or suppress "
                "with a justification",
            ), path=ctx.path)

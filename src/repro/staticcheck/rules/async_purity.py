"""``async-purity``: nothing may block the event loop inside ``async def``.

The serve daemon's whole design rests on one sentence from its module
docstring: *the loop only routes, queues and accounts*.  Admission probes
and computations go to executors; the handlers themselves must never
perform blocking work, because one blocked handler stalls every connected
client at once.  This rule enforces the known blocking families inside
``async def`` bodies:

* ``time.sleep`` (use ``asyncio.sleep``);
* synchronous file I/O via the builtin ``open`` (read on an executor);
* synchronous networking — ``http.client``, ``urllib.request.urlopen``,
  ``socket.create_connection`` and friends;
* subprocess and shell execution (``subprocess.run``, ``os.system``, ...);
* ``Future.result()`` / ``Executor.submit(...).result()`` without an
  ``await`` — the one legitimate case (reading a future that
  ``asyncio.wait`` already reported done) carries an explicit suppression
  in :mod:`repro.serve.app`, which is the point: blocking on the loop is
  always a reviewed decision, never an accident.

Nested ``def``s inside an async body are skipped (they only *define*
code), and nested ``async def``s are visited as their own async contexts.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.staticcheck.model import Finding, ModuleContext
from repro.staticcheck.registry import register_rule

#: dotted origin → why it blocks / what to do instead
_BLOCKING_CALLS = {
    "time.sleep": "blocks the loop; use `await asyncio.sleep(...)`",
    "open": "synchronous file I/O blocks the loop; run it on an executor",
    "io.open": "synchronous file I/O blocks the loop; run it on an executor",
    "urllib.request.urlopen": "synchronous HTTP blocks the loop; use an executor",
    "socket.create_connection": "synchronous connect blocks the loop",
    "socket.getaddrinfo": "synchronous DNS resolution blocks the loop",
    "subprocess.run": "blocks the loop; use asyncio.create_subprocess_exec",
    "subprocess.call": "blocks the loop; use asyncio.create_subprocess_exec",
    "subprocess.check_call": "blocks the loop; use asyncio.create_subprocess_exec",
    "subprocess.check_output": "blocks the loop; use asyncio.create_subprocess_exec",
    "os.system": "blocks the loop; use asyncio.create_subprocess_shell",
    "os.wait": "blocks the loop",
}

#: any call resolving under these prefixes is synchronous networking
_BLOCKING_PREFIXES = ("http.client.",)


def _async_body_nodes(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk the async body without descending into nested function defs."""
    stack = list(func.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue  # separate execution context (nested async defs are
            # visited by the outer walk as their own contexts)
        yield node
        stack.extend(ast.iter_child_nodes(node))


@register_rule(
    "async-purity",
    severity="error",
    description="no blocking calls (sleep, sync I/O, http.client, "
                "Future.result without await) inside async def bodies",
)
def check_async_purity(ctx: ModuleContext) -> Iterator[Finding]:
    """Async handlers must not block the event loop."""
    for func in ast.walk(ctx.tree):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for node in _async_body_nodes(func):
            if not isinstance(node, ast.Call):
                continue
            dotted = ctx.dotted_name(node.func)
            if dotted is not None:
                reason = _BLOCKING_CALLS.get(dotted)
                if reason is None and any(
                    dotted.startswith(prefix) for prefix in _BLOCKING_PREFIXES
                ):
                    reason = "synchronous networking blocks the loop; use an executor"
                if reason is not None:
                    yield ctx.finding(
                        node,
                        f"blocking call `{dotted}` inside `async def "
                        f"{func.name}`: {reason}",
                    )
                    continue
            # method calls: flag zero-argument .result() — an Executor /
            # concurrent.futures Future read that parks the whole loop
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "result"
                and not node.args
                and not node.keywords
            ):
                yield ctx.finding(
                    node,
                    f"`.result()` inside `async def {func.name}` blocks the "
                    "event loop until the future resolves; await the future "
                    "(or prove it is already done and suppress)",
                )

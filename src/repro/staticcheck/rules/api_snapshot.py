"""``api-snapshot``: the public surface of ``repro`` may not drift silently.

Project-scope rule (runs once per lint invocation, not per file).  It
introspects the live package — everything in ``repro.__all__`` plus
``repro.open`` — and compares kinds, signatures, public methods,
properties and deprecation status against the checked-in
``api_snapshot.json``.  Every mismatch becomes one gating finding.

A finding here is a forced declaration, not a prohibition: either the
surface change was accidental (revert it) or intentional (run
``repro-lint --write-snapshot`` and commit the regenerated snapshot in the
same change, which makes the API delta reviewable as a diff).

The rule only runs when the engine was given a snapshot path — fixture
runs in the test suite lint loose files with no package surface in play.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.apisnapshot import check_snapshot
from repro.staticcheck.model import Finding, ProjectContext
from repro.staticcheck.registry import register_rule


@register_rule(
    "api-snapshot",
    severity="error",
    scope="project",
    description="the public surface of repro must match the checked-in "
                "api_snapshot.json (regenerate with --write-snapshot)",
)
def check_api_snapshot(project: ProjectContext) -> Iterator[Finding]:
    """Undeclared public-API drift fails the lint run."""
    snapshot_path = project.options.get("snapshot_path")
    if not snapshot_path:
        return
    drifts, _present = check_snapshot(str(snapshot_path))
    for message in drifts:
        yield Finding(message=message, line=1, col=0, path=str(snapshot_path))

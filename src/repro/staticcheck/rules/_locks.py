"""Shared lock-analysis helpers for the concurrency rules.

Both ``lock-discipline`` (per-class, module scope) and ``thread-escape``
(whole-program, project scope) need the same primitives: which attributes
of a class are locks, which module-level names are locks, which local
names alias a lock, whether a statement sits inside a lock-guarded
region, and which ``self`` field a statement mutates.  Keeping them here
means the two rules can never disagree about what "under the lock" means.

A *lock region* is recognized in the two sanctioned shapes::

    with self._lock:              # (a) context-manager form
        self.n_hits += 1

    self._lock.acquire()          # (b) explicit acquire/try/finally form
    try:
        self.n_hits += 1
    finally:
        self._lock.release()

Form (b) is matched structurally: a ``try`` whose immediately preceding
sibling statement is ``<lock>.acquire(...)``.  Anything cleverer (lock
handed through a helper, caller-holds-lock contracts) is exactly what the
at-site ``# repro-lint: ignore[...]`` suppression with a justification is
for.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.staticcheck.model import ModuleContext

__all__ = [
    "class_guard_map",
    "class_lock_attrs",
    "collect_lock_aliases",
    "global_declarations",
    "in_lock_region",
    "is_lock_factory",
    "iter_class_defs",
    "iter_methods",
    "local_bindings",
    "module_lock_names",
    "module_mutable_names",
    "written_names",
    "written_self_fields",
]

#: dotted callables whose result is a mutual-exclusion lock
_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "multiprocessing.Lock",
    "multiprocessing.RLock",
}


def is_lock_factory(ctx: ModuleContext, node: ast.AST) -> bool:
    """True when *node* is a call producing a lock (``threading.Lock()``)."""
    if not isinstance(node, ast.Call):
        return False
    dotted = ctx.dotted_name(node.func)
    return dotted in _LOCK_FACTORIES


def iter_class_defs(tree: ast.AST) -> Iterator[ast.ClassDef]:
    """Every class definition in the module, outermost first."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def iter_methods(class_node: ast.ClassDef) -> Iterator[ast.AST]:
    """Direct function children of a class body (its methods)."""
    for child in class_node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield child


def class_lock_attrs(ctx: ModuleContext, class_node: ast.ClassDef) -> Set[str]:
    """Names of ``self.X`` attributes assigned a lock in ``__init__``."""
    attrs: Set[str] = set()
    for method in iter_methods(class_node):
        if method.name != "__init__":
            continue
        for node in ast.walk(method):
            target: Optional[ast.AST] = None
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            elif isinstance(node, ast.AnnAssign):
                target, value = node.target, node.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and value is not None
                and is_lock_factory(ctx, value)
            ):
                attrs.add(target.attr)
    return attrs


def module_lock_names(ctx: ModuleContext) -> Set[str]:
    """Module-level names bound to a lock (``_shared_lock = threading.Lock()``)."""
    names: Set[str] = set()
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign) and is_lock_factory(ctx, node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and node.value is not None
            and is_lock_factory(ctx, node.value)
        ):
            names.add(node.target.id)
    return names


def module_mutable_names(ctx: ModuleContext) -> Set[str]:
    """Module-level assigned names (the globals a thread could stomp on).

    Imports, defs and classes are excluded — rebinding those from a pool
    thread would be caught as a plain global write anyway, and the set
    here feeds subscript/attribute-store detection (``_REGISTRY[k] = v``).
    """
    names: Set[str] = set()
    for node in ctx.tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names - module_lock_names(ctx)


def collect_lock_aliases(func_node: ast.AST, lock_attrs: Set[str],
                         module_locks: Set[str]) -> Set[str]:
    """Local names aliasing a lock (``lock = self._lock`` / ``lk = _big_lock``)."""
    aliases: Set[str] = set()
    for node in ast.walk(func_node):
        if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
            continue
        target = node.targets[0]
        if not isinstance(target, ast.Name):
            continue
        if _is_lock_expr(node.value, lock_attrs, module_locks, set()):
            aliases.add(target.id)
    return aliases


def _is_lock_expr(expr: ast.AST, lock_attrs: Set[str],
                  module_locks: Set[str], aliases: Set[str]) -> bool:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id in ("self", "cls")
        and expr.attr in lock_attrs
    ):
        return True
    if isinstance(expr, ast.Name) and (
        expr.id in module_locks or expr.id in aliases
    ):
        return True
    return False


def _preceding_sibling(ctx: ModuleContext, node: ast.AST) -> Optional[ast.AST]:
    parent = ctx.parents.get(node)
    if parent is None:
        return None
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(parent, field_name, None)
        if isinstance(block, list) and node in block:
            index = block.index(node)
            return block[index - 1] if index > 0 else None
    return None


def in_lock_region(ctx: ModuleContext, node: ast.AST, lock_attrs: Set[str],
                   module_locks: Set[str], aliases: Set[str]) -> bool:
    """True when *node* executes under one of the recognized lock shapes."""
    chain: List[ast.AST] = [node]
    chain.extend(ctx.ancestors(node))
    for ancestor in chain:
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                if _is_lock_expr(item.context_expr, lock_attrs, module_locks, aliases):
                    return True
        elif isinstance(ancestor, ast.Try):
            previous = _preceding_sibling(ctx, ancestor)
            if (
                isinstance(previous, ast.Expr)
                and isinstance(previous.value, ast.Call)
                and isinstance(previous.value.func, ast.Attribute)
                and previous.value.func.attr == "acquire"
                and _is_lock_expr(
                    previous.value.func.value, lock_attrs, module_locks, aliases
                )
            ):
                return True
    return False


def written_self_fields(node: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """``(field, anchor)`` for every ``self.X`` mutation in *node*'s subtree.

    Covers plain/augmented/annotated assignment, ``del``, and item stores
    through one subscript level (``self.X[k] = v`` mutates field ``X``).
    """
    for child in ast.walk(node):
        targets: List[ast.AST] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        elif isinstance(child, ast.Delete):
            targets = list(child.targets)
        for target in targets:
            base = target
            if isinstance(base, ast.Subscript):
                base = base.value
            if (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "self"
            ):
                yield base.attr, child


def written_names(node: ast.AST) -> Iterator[Tuple[str, str, ast.AST]]:
    """``(name, how, anchor)`` for name-rooted mutations in *node*'s subtree.

    ``how`` is ``"rebind"`` for a plain name target and ``"item"`` for a
    subscript/attribute store rooted at the name.  ``self`` roots are the
    business of :func:`written_self_fields` and are skipped here.
    """
    for child in ast.walk(node):
        targets: List[ast.AST] = []
        if isinstance(child, ast.Assign):
            targets = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            targets = [child.target]
        elif isinstance(child, ast.Delete):
            targets = list(child.targets)
        for target in targets:
            if isinstance(target, ast.Name):
                yield target.id, "rebind", child
            elif isinstance(target, (ast.Subscript, ast.Attribute)):
                base = target
                while isinstance(base, (ast.Subscript, ast.Attribute)):
                    base = base.value  # type: ignore[assignment]
                if isinstance(base, ast.Name) and base.id != "self":
                    yield base.id, "item", child


def global_declarations(func_node: ast.AST) -> Set[str]:
    """Names the function explicitly declares ``global``."""
    names: Set[str] = set()
    for child in ast.walk(func_node):
        if isinstance(child, ast.Global):
            names.update(child.names)
    return names


def local_bindings(func_node: ast.AST) -> Set[str]:
    """Names bound locally (params + plain assignments + for/with targets)."""
    names: Set[str] = set()
    args = getattr(func_node, "args", None)
    if args is not None:
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            names.add(arg.arg)
        if args.vararg is not None:
            names.add(args.vararg.arg)
        if args.kwarg is not None:
            names.add(args.kwarg.arg)
    declared_global = global_declarations(func_node)
    for child in ast.walk(func_node):
        found: List[ast.AST] = []
        if isinstance(child, ast.Assign):
            found = list(child.targets)
        elif isinstance(child, (ast.AugAssign, ast.AnnAssign)):
            found = [child.target]
        elif isinstance(child, (ast.For, ast.AsyncFor)):
            found = [child.target]
        elif isinstance(child, (ast.With, ast.AsyncWith)):
            found = [
                item.optional_vars for item in child.items
                if item.optional_vars is not None
            ]
        for target in found:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    names.add(name_node.id)
    return names - declared_global


def class_guard_map(ctx: ModuleContext,
                    class_node: ast.ClassDef) -> Dict[str, object]:
    """The per-class lock model both concurrency rules consume.

    Returns ``{"locks": set, "guarded": {field: first-guarding-method},
    "writes": [(method, field, anchor, guarded)]}`` where ``writes``
    excludes ``__init__`` (construction happens before sharing) and the
    lock attributes themselves.
    """
    locks = class_lock_attrs(ctx, class_node)
    module_locks = module_lock_names(ctx)
    guarded: Dict[str, str] = {}
    writes: List[Tuple[ast.AST, str, ast.AST, bool]] = []
    if not locks:
        return {"locks": locks, "guarded": guarded, "writes": writes}
    for method in iter_methods(class_node):
        aliases = collect_lock_aliases(method, locks, module_locks)
        for field_name, anchor in written_self_fields(method):
            if field_name in locks:
                continue
            is_guarded = in_lock_region(ctx, anchor, locks, module_locks, aliases)
            if method.name == "__init__":
                continue
            writes.append((method, field_name, anchor, is_guarded))
            if is_guarded and field_name not in guarded:
                guarded[field_name] = method.name
    return {"locks": locks, "guarded": guarded, "writes": writes}

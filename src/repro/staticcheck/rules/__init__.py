"""Built-in lint rules, registered on import (mirrors ``core.backends``).

Each module registers one rule grounded in a real defect class from this
repository's history; see the individual modules and the README's
*Static analysis & code contracts* table.
"""

from repro.staticcheck.rules import (  # noqa: F401  (import = registration)
    api_snapshot,
    async_purity,
    kernel_determinism,
    lock_discipline,
    registry_contract,
    resource_lifecycle,
    thread_escape,
    type_discipline,
)

"""``lock-discipline``: a class that owns a lock must use it consistently.

The repository's shared-state classes (``ResultCache``, ``WorkerPool``,
``ThreadPool``, ``SlabArena``, ``LatencySeries`` ...) all follow one
convention: a ``threading.Lock``/``RLock`` created in ``__init__`` guards
the fields that cross threads.  The subtle failure mode is *partial*
discipline — a field mutated under the lock in one method and bare in
another, which is exactly how the ``n_submitted`` / cache-counter races
entered this codebase.

The guarded set is **inferred, not declared**: any ``self.X`` mutated
inside a lock region in at least one method (``__init__`` aside) is
treated as lock-guarded, and every other mutation of it must also hold
the lock.  Writes in ``__init__`` are exempt — construction happens
before the instance can be shared.  Deliberate lock-free patterns
(single-consumer handoffs, monotonic flags) are waived at the site with
``# repro-lint: ignore[lock-discipline]`` plus a one-line justification.
"""

from __future__ import annotations

from typing import Iterator

from repro.staticcheck.model import Finding, ModuleContext
from repro.staticcheck.registry import register_rule
from repro.staticcheck.rules._locks import class_guard_map, iter_class_defs


@register_rule(
    "lock-discipline",
    severity="error",
    description="fields a lock-owning class guards in one method must be "
                "guarded in every method",
)
def check_lock_discipline(ctx: ModuleContext) -> Iterator[Finding]:
    """Every mutation of an inferred lock-guarded field must hold the lock."""
    for class_node in iter_class_defs(ctx.tree):
        model = class_guard_map(ctx, class_node)
        guarded = model["guarded"]
        if not guarded:
            continue
        lock_names = " / ".join(f"self.{name}" for name in sorted(model["locks"]))
        for method, field_name, anchor, is_guarded in model["writes"]:
            if is_guarded or field_name not in guarded:
                continue
            yield ctx.finding(
                anchor,
                f"`self.{field_name}` of {class_node.name} is lock-guarded "
                f"(held in `{guarded[field_name]}`) but `{method.name}` "
                f"mutates it without holding {lock_names} — wrap the write "
                "in the lock, or suppress with a justification if the "
                "pattern is deliberately lock-free",
            )

"""``resource-lifecycle``: acquired segments, pools and executors must release.

PR 5 shipped a whole satellite ("/dev/shm leak sweeps") because abandoned
``SharedMemory`` segments outlived the process: a crashed run or a
forgotten ``close()`` left real files in ``/dev/shm`` until reboot.
Executors are the same class of bug with threads instead of bytes.  The
resulting house style, now enforced:

an acquisition of ``SharedMemory`` / ``SlabArena`` / ``WorkerPool`` /
``ThreadPoolExecutor`` / ``ProcessPoolExecutor`` must be one of

* the context expression of a ``with`` statement (directly, or the bound
  variable is later used as one);
* released in a ``try``/``finally`` — either the acquisition sits inside a
  ``try`` with a ``finally``, or a later ``try`` in the same function
  releases the bound name (``close``/``shutdown``/``release``/``unlink``/
  ``terminate``/``join``) in its ``finally``;
* assigned to an attribute (``self._executor = ...``) — the owner object's
  lifecycle manages it;
* returned directly — the caller owns it (factory functions).

Deliberate exceptions exist (the process-lifetime shared pool, arena
segments swept by the atexit hook) and carry explicit suppressions at the
acquisition site — which is exactly where a reviewer wants to read the
justification.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.model import Finding, ModuleContext
from repro.staticcheck.registry import register_rule

_RESOURCE_TYPES = {
    "SharedMemory", "SlabArena", "WorkerPool",
    "ThreadPoolExecutor", "ProcessPoolExecutor",
}

_RELEASE_METHODS = {"close", "shutdown", "release", "unlink", "terminate", "join"}

#: callables that adopt a resource's lifecycle when it is passed straight in
_ADOPTING_CALLS = {"enter_context", "push", "callback", "closing"}


def _resource_name(ctx: ModuleContext, call: ast.Call) -> Optional[str]:
    target = call.func
    name = target.attr if isinstance(target, ast.Attribute) else (
        target.id if isinstance(target, ast.Name) else None
    )
    return name if name in _RESOURCE_TYPES else None


def _nearest_statement(ctx: ModuleContext, node: ast.AST) -> Optional[ast.stmt]:
    current: Optional[ast.AST] = node
    while current is not None and not isinstance(current, ast.stmt):
        current = ctx.parents.get(current)
    return current


def _inside_with_item(ctx: ModuleContext, call: ast.Call) -> bool:
    current: ast.AST = call
    for ancestor in ctx.ancestors(call):
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expr = item.context_expr
                if call is expr or any(n is call for n in ast.walk(expr)):
                    return True
        current = ancestor
        if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
            break
    return False


def _inside_try_finally(ctx: ModuleContext, node: ast.AST) -> bool:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.Try) and ancestor.finalbody:
            return True
    return False


def _scope_of(ctx: ModuleContext, node: ast.AST) -> ast.AST:
    return ctx.enclosing_function(node) or ctx.tree


def _released_later(ctx: ModuleContext, call: ast.Call, name: str) -> bool:
    """The bound *name* is with-managed or finally-released in this scope."""
    scope = _scope_of(ctx, call)
    for node in ast.walk(scope):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                expr = item.context_expr
                if isinstance(expr, ast.Name) and expr.id == name:
                    return True
        if isinstance(node, ast.Try) and node.finalbody:
            for final_node in node.finalbody:
                for inner in ast.walk(final_node):
                    if (
                        isinstance(inner, ast.Call)
                        and isinstance(inner.func, ast.Attribute)
                        and inner.func.attr in _RELEASE_METHODS
                        and isinstance(inner.func.value, ast.Name)
                        and inner.func.value.id == name
                    ):
                        return True
    return False


@register_rule(
    "resource-lifecycle",
    severity="error",
    description="SharedMemory/SlabArena/WorkerPool/Executor acquisitions must be "
                "released via context manager or try/finally on every path",
)
def check_resource_lifecycle(ctx: ModuleContext) -> Iterator[Finding]:
    """Leak-prone acquisitions need a guaranteed release path."""
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        resource = _resource_name(ctx, node)
        if resource is None:
            continue
        if _inside_with_item(ctx, node):
            continue
        statement = _nearest_statement(ctx, node)
        if isinstance(statement, ast.Return):
            continue  # factory: the caller owns the lifecycle
        parent = ctx.parents.get(node)
        if (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Attribute)
            and parent.func.attr in _ADOPTING_CALLS
        ):
            continue  # ExitStack.enter_context(...) and friends adopt it
        if isinstance(statement, (ast.Assign, ast.AnnAssign)):
            targets = statement.targets if isinstance(statement, ast.Assign) else [statement.target]
            if any(isinstance(target, ast.Attribute) for target in targets):
                continue  # owner-managed: self._pool = WorkerPool(...)
            bound = [t.id for t in targets if isinstance(t, ast.Name)]
            if _inside_try_finally(ctx, statement):
                continue
            if any(_released_later(ctx, node, name) for name in bound):
                continue
        yield ctx.finding(
            node,
            f"{resource} acquired without a context manager or try/finally "
            "release on every path — leaked segments/executors outlive the "
            "run (the PR 5 /dev/shm leak class); wrap in `with`, release in "
            "a `finally`, or suppress with a justification if an atexit "
            "sweep owns it",
        )

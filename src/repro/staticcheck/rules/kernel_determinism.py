"""``kernel-determinism``: numerical kernels must be bitwise-reproducible.

Every benchmark gate in this repository (streamed-vs-in-memory, cache
hits, fused-vs-scalar kernels, linear-vs-DAG analysis) asserts *bitwise*
identity, and the content-addressed cache serves results keyed on inputs
alone — one hidden source of nondeterminism in a kernel silently poisons
all of it.  Modules under ``core/kernels`` and
``analysisgraph/science_ops`` (plus the Zernike basis they share) may not:

* read clocks (``time.time``/``perf_counter``/``datetime.now`` ...) —
  timing lives in :mod:`repro.perf`, outside the numerical path;
* draw randomness without explicit seed plumbing — ``random.*`` and
  ``numpy.random.*`` are banned except ``numpy.random.default_rng(seed)``
  called with an explicit seed argument;
* read ambient configuration (``os.environ`` / ``os.getenv``) — kernel
  behaviour must be a function of its arguments, never of the shell;
* iterate a ``set`` (literal, comprehension or ``set()``/``frozenset()``
  call) in a loop or comprehension — set order varies with hash
  randomization, and feeding unordered elements into float accumulation
  changes the rounding sequence from run to run.

The rule is **interprocedural**: via the project call graph, every
function *reachable* from a kernel-module function is held to the
clock/RNG/env contract too, wherever it is defined — a helper in
``utils`` that reads ``os.environ`` poisons the kernel that calls it just
as surely as an inline read would.  (The set-iteration check stays
module-local: outside the kernels, iteration order only matters when the
result feeds a kernel accumulation, which the reachable clock/RNG/env
sweep does not model.)
"""

from __future__ import annotations

import ast
from dataclasses import replace
from typing import Iterable, Iterator, Optional

from repro.staticcheck.callgraph import graph_for_project
from repro.staticcheck.model import Finding, ModuleContext, ProjectContext
from repro.staticcheck.registry import register_rule

#: path fragments selecting the modules this rule governs
_TARGET_FRAGMENTS = (
    "core/kernels",
    "analysisgraph/science_ops",
    "analysisgraph/zernike",
)

_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
}

_ENV_READS = {"os.environ", "os.getenv"}


def _is_target_path(posix_path: str) -> bool:
    return any(fragment in posix_path for fragment in _TARGET_FRAGMENTS)


def _set_expression(ctx: ModuleContext, node: ast.AST) -> Optional[str]:
    """A human name for *node* when it produces a set, else ``None``."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        dotted = ctx.dotted_name(node.func)
        if dotted in ("set", "frozenset"):
            return f"a {dotted}() call"
    return None


def _own_subtree(root: ast.AST) -> Iterator[ast.AST]:
    """*root* and its descendants, minus nested def/class scopes.

    Used for the interprocedural sweep, where nested defs are distinct
    call-graph nodes scanned on their own when reachable.
    """
    yield root
    queue = list(ast.iter_child_nodes(root))
    while queue:
        node = queue.pop(0)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        yield node
        queue.extend(ast.iter_child_nodes(node))


def _scan(ctx: ModuleContext, nodes: Iterable[ast.AST], *,
          include_sets: bool, suffix: str = "") -> Iterator[Finding]:
    """The determinism checks over an iterable of AST nodes."""
    for node in nodes:
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = ctx.dotted_name(node)
            if dotted in _ENV_READS:
                parent = ctx.parents.get(node)
                if isinstance(parent, ast.Attribute):
                    continue  # inner segment of a longer chain, handled there
                yield ctx.finding(
                    node,
                    f"`{dotted}` read inside a deterministic kernel path: "
                    "kernel behaviour must depend only on explicit arguments, "
                    f"never on ambient environment{suffix}",
                )
        if isinstance(node, ast.Call):
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _CLOCK_CALLS:
                yield ctx.finding(
                    node,
                    f"clock read `{dotted}` inside a deterministic kernel "
                    "path; timing belongs in repro.perf, outside the "
                    f"numerical path{suffix}",
                )
            elif dotted == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        node,
                        "`numpy.random.default_rng()` without an explicit "
                        "seed argument: entropy-seeded RNGs break bitwise "
                        f"reproducibility — plumb the seed through the config{suffix}",
                    )
            elif dotted.startswith("numpy.random.") or dotted == "random" or dotted.startswith("random."):
                yield ctx.finding(
                    node,
                    f"`{dotted}` inside a deterministic kernel path; the "
                    "only sanctioned randomness is numpy.random.default_rng "
                    f"with an explicitly plumbed seed{suffix}",
                )
        if not include_sets:
            continue
        iter_sources = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_sources.append(node.iter)
        elif isinstance(node, ast.comprehension):
            iter_sources.append(node.iter)
        for source in iter_sources:
            described = _set_expression(ctx, source)
            if described is not None:
                yield ctx.finding(
                    source,
                    f"iterating {described} in a kernel module: set order "
                    "varies with hash randomization, so float accumulation "
                    "over it is not bitwise-reproducible — sort it or use a "
                    "tuple/list",
                )


@register_rule(
    "kernel-determinism",
    severity="error",
    scope="project",
    description="kernel/science-op modules — and everything reachable from "
                "them — may not read clocks, env vars, unseeded RNGs, or "
                "iterate sets into accumulations",
)
def check_kernel_determinism(project: ProjectContext) -> Iterator[Finding]:
    """Numerical kernels must be pure functions of their arguments."""
    # pass 1: the kernel modules themselves, checked in full
    for ctx in project.modules:
        if not _is_target_path(ctx.posix_path):
            continue
        for finding in _scan(ctx, ast.walk(ctx.tree), include_sets=True):
            yield replace(finding, path=ctx.path)

    # pass 2: everything the kernels reach, wherever it is defined
    graph = graph_for_project(project)
    contexts = {m.posix_path: m for m in project.modules}
    roots = [
        qual for qual, info in sorted(graph.functions.items())
        if _is_target_path(info.path)
    ]
    reached = graph.reachable(roots)
    for qual in sorted(reached):
        info = graph.functions[qual]
        if _is_target_path(info.path):
            continue  # covered by pass 1
        ctx = contexts.get(info.path)
        node = graph.function_ast(qual)
        if ctx is None or node is None:
            continue
        suffix = f" (reachable from kernel entry `{reached[qual]}`)"
        for finding in _scan(
            ctx, _own_subtree(node), include_sets=False, suffix=suffix
        ):
            yield replace(finding, path=ctx.path)

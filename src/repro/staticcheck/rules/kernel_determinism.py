"""``kernel-determinism``: numerical kernels must be bitwise-reproducible.

Every benchmark gate in this repository (streamed-vs-in-memory, cache
hits, fused-vs-scalar kernels, linear-vs-DAG analysis) asserts *bitwise*
identity, and the content-addressed cache serves results keyed on inputs
alone — one hidden source of nondeterminism in a kernel silently poisons
all of it.  Modules under ``core/kernels`` and
``analysisgraph/science_ops`` (plus the Zernike basis they share) may not:

* read clocks (``time.time``/``perf_counter``/``datetime.now`` ...) —
  timing lives in :mod:`repro.perf`, outside the numerical path;
* draw randomness without explicit seed plumbing — ``random.*`` and
  ``numpy.random.*`` are banned except ``numpy.random.default_rng(seed)``
  called with an explicit seed argument;
* read ambient configuration (``os.environ`` / ``os.getenv``) — kernel
  behaviour must be a function of its arguments, never of the shell;
* iterate a ``set`` (literal, comprehension or ``set()``/``frozenset()``
  call) in a loop or comprehension — set order varies with hash
  randomization, and feeding unordered elements into float accumulation
  changes the rounding sequence from run to run.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.staticcheck.model import Finding, ModuleContext
from repro.staticcheck.registry import register_rule

#: path fragments selecting the modules this rule governs
_TARGET_FRAGMENTS = (
    "core/kernels",
    "analysisgraph/science_ops",
    "analysisgraph/zernike",
)

_CLOCK_CALLS = {
    "time.time", "time.time_ns", "time.perf_counter", "time.perf_counter_ns",
    "time.monotonic", "time.monotonic_ns", "time.process_time",
    "datetime.datetime.now", "datetime.datetime.utcnow", "datetime.datetime.today",
    "datetime.date.today",
}

_ENV_READS = {"os.environ", "os.getenv"}


def _is_target_module(ctx: ModuleContext) -> bool:
    path = ctx.posix_path
    return any(fragment in path for fragment in _TARGET_FRAGMENTS)


def _set_expression(ctx: ModuleContext, node: ast.AST) -> Optional[str]:
    """A human name for *node* when it produces a set, else ``None``."""
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if isinstance(node, ast.Call):
        dotted = ctx.dotted_name(node.func)
        if dotted in ("set", "frozenset"):
            return f"a {dotted}() call"
    return None


@register_rule(
    "kernel-determinism",
    severity="error",
    description="kernel/science-op modules may not read clocks, env vars, "
                "unseeded RNGs, or iterate sets into accumulations",
)
def check_kernel_determinism(ctx: ModuleContext) -> Iterator[Finding]:
    """Numerical kernels must be pure functions of their arguments."""
    if not _is_target_module(ctx):
        return
    for node in ast.walk(ctx.tree):
        if isinstance(node, (ast.Name, ast.Attribute)):
            dotted = ctx.dotted_name(node)
            if dotted in _ENV_READS:
                parent = ctx.parents.get(node)
                if isinstance(parent, ast.Attribute):
                    continue  # inner segment of a longer chain, handled there
                yield ctx.finding(
                    node,
                    f"`{dotted}` read inside a deterministic kernel module: "
                    "kernel behaviour must depend only on explicit arguments, "
                    "never on ambient environment",
                )
        if isinstance(node, ast.Call):
            dotted = ctx.dotted_name(node.func)
            if dotted is None:
                continue
            if dotted in _CLOCK_CALLS:
                yield ctx.finding(
                    node,
                    f"clock read `{dotted}` inside a deterministic kernel "
                    "module; timing belongs in repro.perf, outside the "
                    "numerical path",
                )
            elif dotted == "numpy.random.default_rng":
                if not node.args and not node.keywords:
                    yield ctx.finding(
                        node,
                        "`numpy.random.default_rng()` without an explicit "
                        "seed argument: entropy-seeded RNGs break bitwise "
                        "reproducibility — plumb the seed through the config",
                    )
            elif dotted.startswith("numpy.random.") or dotted == "random" or dotted.startswith("random."):
                yield ctx.finding(
                    node,
                    f"`{dotted}` inside a deterministic kernel module; the "
                    "only sanctioned randomness is numpy.random.default_rng "
                    "with an explicitly plumbed seed",
                )
        iter_sources = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_sources.append(node.iter)
        elif isinstance(node, ast.comprehension):
            iter_sources.append(node.iter)
        for source in iter_sources:
            described = _set_expression(ctx, source)
            if described is not None:
                yield ctx.finding(
                    source,
                    f"iterating {described} in a kernel module: set order "
                    "varies with hash randomization, so float accumulation "
                    "over it is not bitwise-reproducible — sort it or use a "
                    "tuple/list",
                )

"""Runtime race sanitizer: the dynamic companion to ``thread-escape``.

The static rule proves that pool-reachable code *syntactically* guards its
shared writes; this module checks the same contract *at runtime* while the
real test suites exercise the threaded executor, the analysis graph and
the serve daemon.  Enable it with ``REPRO_RACE_SANITIZER=1`` — the pytest
hook in the repository ``conftest.py`` then calls :func:`install`, and an
autouse fixture fails any test during which an unsynchronized cross-thread
write was observed.

How it works
------------

:func:`instrument_class` rewires a lock-owning class:

* the instance's lock attribute (``self._lock`` by default) is replaced
  after ``__init__`` with a :class:`TrackedLock` proxy that remembers
  which thread currently holds it (reentrantly, with a depth counter);
* every assignment to a *guarded field* goes through a wrapped
  ``__setattr__`` that records ``(class, field, instance, thread,
  lock-held?)`` with the global :class:`RaceRecorder`;
* dict-valued guarded fields (e.g. ``ServeMetrics.counts``) are wrapped
  in a :class:`TrackedDict` so item stores are recorded too — ``+=`` on
  a dict entry is exactly the read-modify-write the static rule hunts.

A **violation** is a ``(class, field, instance)`` triple written *without
the lock held* from two or more distinct threads.  Single-threaded
unlocked writes are legal (construction, single-owner phases); the
sanitizer only fires when the race is demonstrated, which keeps it free
of false positives on loop-confined state like ``FairPriorityQueue``.

Writes made during ``__init__`` are never recorded: construction
precedes sharing, the same exemption the static rules grant.
"""

from __future__ import annotations

import functools
import os
import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Type

__all__ = [
    "RaceViolation",
    "RaceRecorder",
    "TrackedLock",
    "TrackedDict",
    "enabled",
    "instrument_class",
    "install",
    "drain",
    "recorder",
]

#: Environment flag that turns the sanitizer lane on.
ENV_FLAG = "REPRO_RACE_SANITIZER"

#: Marker attribute set on classes that have already been instrumented.
_INSTRUMENTED = "_race_sanitizer_instrumented"

#: Instance attribute flipped once ``__init__`` finishes — writes before
#: it are construction, not sharing.
_READY = "_race_sanitizer_ready"


def enabled() -> bool:
    """``True`` when the sanitizer lane is switched on via the environment."""
    return os.environ.get(ENV_FLAG, "") == "1"


# --------------------------------------------------------------------------- #
# recording
@dataclass(frozen=True)
class RaceViolation:
    """One guarded field written unlocked from two or more threads."""

    class_name: str
    field_name: str
    instance_id: int
    threads: Tuple[int, ...]
    n_writes: int

    def render(self) -> str:
        return (
            f"{self.class_name}.{self.field_name} (instance 0x{self.instance_id:x}) "
            f"written without its lock from {len(self.threads)} threads "
            f"({self.n_writes} unlocked write(s) total)"
        )


@dataclass
class _WriteLog:
    threads: Set[int] = field(default_factory=set)
    n_writes: int = 0


class RaceRecorder:
    """Thread-safe ledger of unlocked writes to guarded fields."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._unlocked: Dict[Tuple[str, str, int], _WriteLog] = {}

    def record(self, class_name: str, field_name: str, instance_id: int,
               locked: bool) -> None:
        if locked:
            return
        ident = threading.get_ident()
        key = (class_name, field_name, instance_id)
        with self._lock:
            log = self._unlocked.setdefault(key, _WriteLog())
            log.threads.add(ident)
            log.n_writes += 1

    def drain(self) -> List[RaceViolation]:
        """Violations observed since the last drain, clearing the ledger."""
        with self._lock:
            entries = self._unlocked
            self._unlocked = {}
        violations = [
            RaceViolation(
                class_name=cls, field_name=fld, instance_id=iid,
                threads=tuple(sorted(log.threads)), n_writes=log.n_writes,
            )
            for (cls, fld, iid), log in sorted(entries.items())
            if len(log.threads) >= 2
        ]
        return violations


_RECORDER = RaceRecorder()


def recorder() -> RaceRecorder:
    """The process-global recorder (one ledger per interpreter)."""
    return _RECORDER


def drain() -> List[RaceViolation]:
    """Drain the global recorder (per-test semantics in the pytest lane)."""
    return _RECORDER.drain()


# --------------------------------------------------------------------------- #
# tracked primitives
class TrackedLock:
    """A lock proxy that remembers its current owner thread.

    Wraps either a ``threading.Lock`` or ``threading.RLock``; re-entrant
    acquisition is handled with a depth counter so ``held_by_me`` stays
    correct for RLocks.  Owner bookkeeping happens *inside* the critical
    section (set after acquire succeeds, cleared before the final
    release), so it is itself race-free.
    """

    def __init__(self, inner) -> None:
        self._inner = inner
        self._owner: Optional[int] = None
        self._depth = 0

    def acquire(self, *args, **kwargs) -> bool:
        got = self._inner.acquire(*args, **kwargs)
        if got:
            self._owner = threading.get_ident()
            self._depth += 1
        return got

    def release(self) -> None:
        self._depth -= 1
        if self._depth <= 0:
            self._owner = None
            self._depth = 0
        self._inner.release()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc) -> None:
        self.release()

    def locked(self) -> bool:
        return bool(self._inner.locked()) if hasattr(self._inner, "locked") else (
            self._owner is not None
        )

    def held_by_me(self) -> bool:
        return self._owner == threading.get_ident()


class TrackedDict(dict):
    """A dict whose item stores are reported to the race recorder.

    Used for dict-valued guarded fields: ``self.counts[name] += by`` never
    triggers ``__setattr__`` on the owner, but it does call ``__setitem__``
    here.  Reads stay native-speed; only mutations pay the bookkeeping.
    """

    __slots__ = ("_race_class", "_race_field", "_race_owner_id", "_race_lock_ref")

    def __init__(self, data, class_name: str, field_name: str,
                 owner_id: int, lock_ref) -> None:
        super().__init__(data)
        self._race_class = class_name
        self._race_field = field_name
        self._race_owner_id = owner_id
        self._race_lock_ref = lock_ref  # zero-arg callable -> TrackedLock|None

    def _record(self) -> None:
        lock = self._race_lock_ref()
        locked = isinstance(lock, TrackedLock) and lock.held_by_me()
        _RECORDER.record(self._race_class, self._race_field,
                         self._race_owner_id, locked)

    def __setitem__(self, key, value) -> None:
        self._record()
        super().__setitem__(key, value)

    def __delitem__(self, key) -> None:
        self._record()
        super().__delitem__(key)

    def pop(self, *args):
        self._record()
        return super().pop(*args)

    def update(self, *args, **kwargs) -> None:
        self._record()
        super().update(*args, **kwargs)

    def setdefault(self, key, default=None):
        self._record()
        return super().setdefault(key, default)

    def clear(self) -> None:
        self._record()
        super().clear()


# --------------------------------------------------------------------------- #
# instrumentation
def instrument_class(cls: Type, fields: Sequence[str],
                     lock_attr: str = "_lock") -> Type:
    """Rewire *cls* so writes to *fields* are checked against *lock_attr*.

    Idempotent: instrumenting the same class twice is a no-op.  The class
    is modified in place (``__init__`` and ``__setattr__`` wrapped) and
    returned, so it can be used as a decorator in fixtures.
    """
    if getattr(cls, _INSTRUMENTED, False):
        return cls

    guarded = tuple(fields)
    class_name = cls.__name__
    original_init = cls.__init__
    original_setattr = cls.__setattr__

    def _lock_of(instance) -> Optional[TrackedLock]:
        lock = getattr(instance, lock_attr, None)
        return lock if isinstance(lock, TrackedLock) else None

    def _wrap_dict_fields(instance) -> None:
        for name in guarded:
            value = instance.__dict__.get(name)
            if isinstance(value, dict) and not isinstance(value, TrackedDict):
                tracked = TrackedDict(
                    value, class_name, name, id(instance),
                    functools.partial(_lock_of, instance),
                )
                object.__setattr__(instance, name, tracked)

    @functools.wraps(original_init)
    def __init__(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        inner = getattr(self, lock_attr, None)
        if inner is not None and not isinstance(inner, TrackedLock):
            object.__setattr__(self, lock_attr, TrackedLock(inner))
        _wrap_dict_fields(self)
        object.__setattr__(self, _READY, True)

    def __setattr__(self, name, value):
        if name in guarded and getattr(self, _READY, False):
            lock = _lock_of(self)
            locked = lock is not None and lock.held_by_me()
            _RECORDER.record(class_name, name, id(self), locked)
            if isinstance(value, dict) and not isinstance(value, TrackedDict):
                value = TrackedDict(
                    value, class_name, name, id(self),
                    functools.partial(_lock_of, self),
                )
        original_setattr(self, name, value)

    cls.__init__ = __init__
    cls.__setattr__ = __setattr__
    setattr(cls, _INSTRUMENTED, True)
    return cls


#: ``(module, class, guarded fields, lock attribute)`` — the lock-owning
#: shared classes the static rules reason about.  Grown alongside them.
_TARGETS: Tuple[Tuple[str, str, Tuple[str, ...], str], ...] = (
    ("repro.core.cache", "ResultCache",
     ("n_hits", "n_misses", "n_stores", "n_repaired"), "_lock"),
    ("repro.serve.metrics", "ServeMetrics", ("counts",), "_lock"),
    ("repro.core.workerpool", "WorkerPool", ("n_submitted",), "_lock"),
    ("repro.core.workerpool", "ThreadPool", ("n_submitted",), "_lock"),
)


def install() -> List[str]:
    """Instrument every known lock-owning shared class; return their names.

    Called from ``conftest.pytest_configure`` when ``REPRO_RACE_SANITIZER=1``.
    Import errors are propagated: a target class that cannot be imported
    means the sanitizer lane is not covering what it claims to cover.
    """
    import importlib

    instrumented: List[str] = []
    for module_name, class_name, fields, lock_attr in _TARGETS:
        module = importlib.import_module(module_name)
        cls = getattr(module, class_name)
        instrument_class(cls, fields, lock_attr=lock_attr)
        instrumented.append(f"{module_name}.{class_name}")
    return instrumented

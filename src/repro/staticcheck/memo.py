"""Per-file lint memoization under the shared cache root.

Linting is pure: module-scope findings are a function of (file content,
rule implementations, tool version) and nothing else.  That makes them
cacheable with exactly the content-addressed discipline
:class:`repro.core.cache.ResultCache` applies to reconstructions — the
memo lives beside it under ``default_cache_root()/lint`` and keys on a
digest of the source bytes plus a fingerprint of every module rule in the
run (*the rule function's own source*, so editing a rule invalidates its
memo entries without any manual version bump).

Only **module-scope** results are memoized: project rules reason over the
whole corpus, so their findings are not a per-file function.  Stored
findings are path-stripped — the same bytes at a new path (a file moved,
a worktree checked out elsewhere) re-use the entry, and the engine stamps
the current path back on at load.

Entries are tiny JSON documents sharded two-level like every other cache
in this repository (``lint/ab/abcdef....json``).  A corrupt or unreadable
entry is treated as a miss, never an error — the memo is an accelerator,
not a source of truth.
"""

from __future__ import annotations

import hashlib
import inspect
import json
import os
import tempfile
from dataclasses import replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.cache import default_cache_root
from repro.staticcheck.model import Finding
from repro.utils.version import package_version

__all__ = ["LintMemo", "default_memo_root"]

#: Bumped when the stored schema changes (invalidates every entry).
MEMO_FORMAT = 1


def default_memo_root() -> str:
    """``$REPRO_CACHE_DIR/lint`` (or the ``~/.cache/repro`` fallback)."""
    return os.path.join(default_cache_root(), "lint")


def _rule_fingerprint(info) -> str:
    """A digest that changes whenever the rule's behaviour could.

    The rule function's own source is the fingerprint — editing a rule
    invalidates its memo entries immediately, with no version bump or
    cache flush.  When the source is unavailable (REPL-defined test
    rules), fall back to identity + version, which is strictly safe for
    built-ins and merely conservative for ephemeral rules.
    """
    try:
        body = inspect.getsource(info.func)
    except (OSError, TypeError):
        body = f"{info.module}:{package_version()}"
    payload = f"{info.id}:{info.severity}:{info.scope}\n{body}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class LintMemo:
    """Content-addressed store of per-file module-rule lint results."""

    def __init__(self, root: Optional[str] = None):
        self.root = root or default_memo_root()
        self.n_hits = 0
        self.n_misses = 0
        self.n_stores = 0
        self._fingerprints: Dict[str, str] = {}

    # ------------------------------------------------------------------ #
    def key(self, source: str, module_rules: Sequence) -> str:
        """The entry key for *source* linted by *module_rules*."""
        digest = hashlib.sha256()
        digest.update(f"repro-lint-memo format={MEMO_FORMAT}\n".encode("utf-8"))
        for info in sorted(module_rules, key=lambda info: info.id):
            fingerprint = self._fingerprints.get(info.id)
            if fingerprint is None:
                fingerprint = _rule_fingerprint(info)
                self._fingerprints[info.id] = fingerprint
            digest.update(f"rule {info.id} {fingerprint}\n".encode("utf-8"))
        digest.update(b"--\n")
        digest.update(source.encode("utf-8"))
        return digest.hexdigest()

    def _entry_path(self, key: str) -> str:
        return os.path.join(self.root, key[:2], f"{key}.json")

    # ------------------------------------------------------------------ #
    def load(self, key: str) -> Optional[Tuple[List[Finding], List[Finding]]]:
        """``(findings, suppressed)`` for *key*, or ``None`` on a miss.

        Returned findings are path-stripped (``path=""``); the caller
        stamps the current path.  Any read/parse problem is a miss.
        """
        try:
            with open(self._entry_path(key), "r", encoding="utf-8") as handle:
                document = json.load(handle)
            findings = [self._finding(record) for record in document["findings"]]
            suppressed = [self._finding(record) for record in document["suppressed"]]
        except (OSError, ValueError, KeyError, TypeError):
            self.n_misses += 1
            return None
        self.n_hits += 1
        return findings, suppressed

    def store(self, key: str, findings: Sequence[Finding],
              suppressed: Sequence[Finding]) -> None:
        """Persist one file's module-rule results (atomic rename write)."""
        entry_path = self._entry_path(key)
        document = {
            "format": MEMO_FORMAT,
            "version": package_version(),
            "findings": [self._record(f) for f in findings],
            "suppressed": [self._record(f) for f in suppressed],
        }
        try:
            os.makedirs(os.path.dirname(entry_path), exist_ok=True)
            fd, temp_path = tempfile.mkstemp(
                dir=os.path.dirname(entry_path), suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(document, handle, sort_keys=True)
            os.replace(temp_path, entry_path)
        except OSError:
            return  # read-only cache dir: the memo silently degrades to off
        self.n_stores += 1

    # ------------------------------------------------------------------ #
    @staticmethod
    def _record(finding: Finding) -> Dict:
        record = finding.to_dict()
        record.pop("path", None)  # path-stripped: content-addressed, not located
        return record

    @staticmethod
    def _finding(record: Dict) -> Finding:
        return Finding(
            message=str(record["message"]),
            line=int(record["line"]),
            col=int(record["col"]),
            rule=str(record["rule"]),
            severity=str(record["severity"]),
            suppressed=bool(record.get("suppressed", False)),
        )

    def counters(self) -> Dict[str, int]:
        return {
            "n_hits": self.n_hits,
            "n_misses": self.n_misses,
            "n_stores": self.n_stores,
        }


def _restamp(findings: Sequence[Finding], path: str) -> List[Finding]:
    """Stamp *path* onto path-stripped memo findings (engine helper)."""
    return [replace(finding, path=path) for finding in findings]

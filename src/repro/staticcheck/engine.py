"""The lint engine: walk files, parse, run rules, apply suppressions.

:func:`lint_paths` is the one entry point — the CLI, the CI job and the
test suite all route through it, so they can never disagree about what a
"clean" run means::

    from repro.staticcheck import lint_paths

    report = lint_paths(["src"], snapshot_path="api_snapshot.json")
    print(report.render_text())
    raise SystemExit(report.exit_code())

The report separates **unsuppressed** findings (which gate: any of them
makes :meth:`LintReport.exit_code` nonzero) from **suppressed** ones
(visible in the JSON record so a suppression can never silently hide —
CI artifacts show exactly what was waived and where) and **parse errors**
(a file the linter cannot read is a finding, not an excuse).
"""

from __future__ import annotations

import ast
import json
import os
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence

from repro.staticcheck.model import Finding, ModuleContext, ProjectContext
from repro.staticcheck.registry import available_rules, rule_info
from repro.utils.validation import ValidationError
from repro.utils.version import package_version

__all__ = ["LintReport", "lint_paths", "iter_python_files"]

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".ruff_cache", ".mypy_cache", ".pytest_cache"}


def iter_python_files(paths: Sequence[str]) -> List[str]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                for name in sorted(filenames):
                    if name.endswith(".py"):
                        found.append(os.path.join(dirpath, name))
        elif os.path.isfile(path):
            found.append(path)
        else:
            raise ValidationError(f"no such file or directory: {path!r}")
    seen = set()
    unique = []
    for path in found:
        if path not in seen:
            seen.add(path)
            unique.append(path)
    return unique


@dataclass
class LintReport:
    """Everything one lint invocation learned."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    parse_errors: List[Finding] = field(default_factory=list)
    rule_ids: List[str] = field(default_factory=list)
    n_files: int = 0

    # ------------------------------------------------------------------ #
    @property
    def gating(self) -> List[Finding]:
        """Findings that fail the run: every unsuppressed one, parse errors included."""
        return sorted(self.parse_errors + self.findings, key=Finding.sort_key)

    def counts_by_severity(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for finding in self.gating:
            counts[finding.severity] = counts.get(finding.severity, 0) + 1
        return counts

    def exit_code(self) -> int:
        """``0`` clean, ``1`` any unsuppressed finding (the CI gate)."""
        return 1 if self.gating else 0

    # ------------------------------------------------------------------ #
    def to_dict(self) -> Dict:
        """The ``--format json`` document (stable schema, sorted findings)."""
        return {
            "tool": "repro-lint",
            "version": package_version(),
            "rules": list(self.rule_ids),
            "n_files": self.n_files,
            "summary": {
                "gating": len(self.gating),
                "suppressed": len(self.suppressed),
                "parse_errors": len(self.parse_errors),
                "by_severity": self.counts_by_severity(),
            },
            "findings": [f.to_dict() for f in self.gating],
            "suppressed_findings": [
                f.to_dict() for f in sorted(self.suppressed, key=Finding.sort_key)
            ],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def render_text(self, show_suppressed: bool = False) -> str:
        """Human rendering: one line per finding plus a summary line."""
        lines = [finding.render() for finding in self.gating]
        if show_suppressed:
            lines.extend(f.render() for f in sorted(self.suppressed, key=Finding.sort_key))
        counts = self.counts_by_severity()
        summary = ", ".join(f"{counts[s]} {s}(s)" for s in sorted(counts)) or "clean"
        lines.append(
            f"repro-lint: {summary} in {self.n_files} file(s) "
            f"({len(self.suppressed)} suppressed)"
        )
        return "\n".join(lines)


def _select_rules(rule_ids: Optional[Iterable[str]]):
    if rule_ids is None:
        return [rule_info(rule_id) for rule_id in available_rules()]
    return [rule_info(rule_id) for rule_id in rule_ids]


def lint_paths(
    paths: Sequence[str],
    rule_ids: Optional[Iterable[str]] = None,
    snapshot_path: Optional[str] = None,
) -> LintReport:
    """Lint *paths* (files and/or directories) and return the report.

    ``rule_ids`` restricts the run to the named rules (default: every
    registered rule); unknown ids fail fast with a did-you-mean, exactly
    like unknown backends.  ``snapshot_path`` feeds project-scope rules —
    the ``api-snapshot`` rule is skipped when it is ``None`` (module-scope
    fixture runs in the test suite) and enforced when given (the CI gate).
    """
    infos = _select_rules(rule_ids)
    report = LintReport(rule_ids=[info.id for info in infos])
    module_rules = [info for info in infos if info.scope == "module"]
    project_rules = [info for info in infos if info.scope == "project"]

    contexts: List[ModuleContext] = []
    for path in iter_python_files(paths):
        report.n_files += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            tree = ast.parse(source, filename=path)
        except (SyntaxError, UnicodeDecodeError, OSError) as exc:
            line = getattr(exc, "lineno", 0) or 0
            report.parse_errors.append(Finding(
                message=f"cannot parse: {exc}", line=line, col=0,
                rule="parse-error", severity="error", path=path,
            ))
            continue
        context = ModuleContext(path=path, source=source, tree=tree)
        contexts.append(context)
        for info in module_rules:
            for draft in info.func(context):
                finding = draft.stamped(
                    rule=info.id, severity=info.severity, path=path
                )
                if context.is_suppressed(finding.line, info.id):
                    report.suppressed.append(replace(finding, suppressed=True))
                else:
                    report.findings.append(finding)

    if project_rules:
        project = ProjectContext(
            paths=list(paths),
            modules=contexts,
            options={"snapshot_path": snapshot_path},
        )
        for info in project_rules:
            for draft in info.func(project):
                report.findings.append(
                    draft.stamped(
                        rule=info.id, severity=info.severity,
                        path=draft.path or (snapshot_path or ""),
                    )
                )

    report.findings.sort(key=Finding.sort_key)
    return report
